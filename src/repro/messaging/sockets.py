"""In-process socket patterns with ZeroMQ semantics.

A :class:`Context` owns named endpoints; sockets ``bind`` or ``connect`` to
endpoint addresses (``"inproc://name"`` style strings). Implemented
patterns:

``REQ``/``REP``
    Lock-step request/reply with state checking (send-recv alternation
    enforced, as in ZeroMQ).
``PUSH``/``PULL``
    Pipeline distribution: PUSH round-robins messages across connected
    PULL peers; PULL fair-queues across connected PUSH peers.
``ROUTER``/``DEALER``
    Asynchronous addressed messaging: ROUTER prepends the sender identity
    on receive and routes on the leading identity frame on send; DEALER
    round-robins outgoing messages and fair-queues replies.

Messages optionally traverse a :class:`~repro.sim.latency.NetworkLink`,
charging transfer time to the shared clock. Delivery is synchronous (the
message lands in the peer's inbox immediately in program order), which is
sufficient because all components already run under one event-driven
driver.
"""

from __future__ import annotations

import itertools
from collections import deque
from enum import Enum
from typing import Deque

from repro.messaging.frames import Frame, Message
from repro.sim.clock import VirtualClock
from repro.sim.latency import NetworkLink


class SocketError(RuntimeError):
    """Base class for socket failures."""


class AgainError(SocketError):
    """Raised by non-blocking receive when no message is available (EAGAIN)."""


class StateError(SocketError):
    """Raised when a REQ/REP socket is used out of lock-step order (EFSM)."""


class SocketType(Enum):
    REQ = "REQ"
    REP = "REP"
    PUSH = "PUSH"
    PULL = "PULL"
    ROUTER = "ROUTER"
    DEALER = "DEALER"


#: Which socket types may talk to each other.
_COMPATIBLE = {
    SocketType.REQ: {SocketType.REP, SocketType.ROUTER},
    SocketType.REP: {SocketType.REQ, SocketType.DEALER},
    SocketType.PUSH: {SocketType.PULL},
    SocketType.PULL: {SocketType.PUSH},
    SocketType.ROUTER: {SocketType.REQ, SocketType.DEALER, SocketType.ROUTER},
    SocketType.DEALER: {SocketType.REP, SocketType.ROUTER, SocketType.DEALER},
}


class Context:
    """Socket factory and endpoint namespace (one per simulated deployment)."""

    def __init__(self, clock: VirtualClock | None = None) -> None:
        self.clock = clock or VirtualClock()
        self._bound: dict[str, Socket] = {}
        self._id_counter = itertools.count(1)

    def socket(self, sock_type: SocketType, identity: bytes | None = None) -> "Socket":
        if identity is None:
            identity = f"sock-{next(self._id_counter)}".encode()
        return Socket(self, sock_type, identity)

    def _register_bind(self, address: str, socket: "Socket") -> None:
        if address in self._bound:
            raise SocketError(f"address already bound: {address}")
        self._bound[address] = socket

    def _release_bind(self, address: str) -> None:
        self._bound.pop(address, None)

    def _lookup(self, address: str) -> "Socket":
        try:
            return self._bound[address]
        except KeyError:
            raise SocketError(f"no socket bound at {address}") from None


class Socket:
    """A single socket; see module docstring for pattern semantics."""

    def __init__(self, context: Context, sock_type: SocketType, identity: bytes) -> None:
        self.context = context
        self.type = sock_type
        self.identity = identity
        self.closed = False
        self._bound_address: str | None = None
        self._peers: list[Socket] = []
        self._rr = 0  # round-robin cursor for PUSH / DEALER / REQ fan-out
        self._inbox: Deque[Message] = deque()
        # REQ/REP lock-step state: what operation is legal next.
        self._await_reply = False  # REQ: sent, waiting for reply
        self._pending_reply_to: bytes | None = None  # REP: identity to answer
        self.link: NetworkLink | None = None
        self.messages_sent = 0
        self.messages_received = 0

    # -- connection management -------------------------------------------------
    def bind(self, address: str) -> "Socket":
        if self.closed:
            raise SocketError("socket is closed")
        self.context._register_bind(address, self)
        self._bound_address = address
        return self

    def connect(self, address: str) -> "Socket":
        if self.closed:
            raise SocketError("socket is closed")
        peer = self.context._lookup(address)
        if peer.type not in _COMPATIBLE[self.type]:
            raise SocketError(
                f"{self.type.value} cannot connect to {peer.type.value}"
            )
        self._peers.append(peer)
        peer._peers.append(self)
        return self

    def disconnect(self, peer: "Socket") -> None:
        if peer in self._peers:
            self._peers.remove(peer)
        if self in peer._peers:
            peer._peers.remove(self)

    def close(self) -> None:
        if self._bound_address is not None:
            self.context._release_bind(self._bound_address)
            self._bound_address = None
        for peer in list(self._peers):
            self.disconnect(peer)
        self.closed = True

    # -- helpers ----------------------------------------------------------------
    def _live_peers(self) -> list["Socket"]:
        return [p for p in self._peers if not p.closed]

    def _next_peer(self) -> "Socket":
        peers = self._live_peers()
        if not peers:
            raise SocketError(f"{self.type.value} socket has no connected peers")
        peer = peers[self._rr % len(peers)]
        self._rr += 1
        return peer

    def _deliver(self, peer: "Socket", message: Message) -> None:
        """Transfer a message into ``peer``'s inbox, charging link latency."""
        if self.link is not None:
            self.link.charge_send(self.context.clock, message.nbytes)
        peer._inbox.append(message)
        self.messages_sent += 1

    # -- send -------------------------------------------------------------------
    def send(self, message: Message | bytes | list[bytes]) -> None:
        if self.closed:
            raise SocketError("socket is closed")
        msg = _as_message(message)
        if self.type is SocketType.REQ:
            if self._await_reply:
                raise StateError("REQ socket must recv a reply before sending again")
            peer = self._next_peer()
            if peer.type is SocketType.REP:
                out = msg.push_front(Frame(self.identity))
            else:  # ROUTER: identity + empty delimiter envelope
                out = msg.wrap(self.identity)
            self._deliver(peer, out)
            self._await_reply = True
        elif self.type is SocketType.REP:
            if self._pending_reply_to is None:
                raise StateError("REP socket must recv a request before sending")
            target_id = self._pending_reply_to
            peer = self._find_peer_by_identity(target_id)
            self._deliver(peer, msg)
            self._pending_reply_to = None
        elif self.type in (SocketType.PUSH, SocketType.DEALER):
            peer = self._next_peer()
            out = msg
            if peer.type is SocketType.ROUTER:
                out = msg.push_front(Frame(self.identity))
            self._deliver(peer, out)
        elif self.type is SocketType.ROUTER:
            # First frame addresses the destination peer.
            if len(msg) < 2:
                raise SocketError("ROUTER send requires [identity, ...payload]")
            identity, payload = msg.pop_front()
            peer = self._find_peer_by_identity(identity.data)
            self._deliver(peer, payload)
        else:  # PULL
            raise SocketError("PULL sockets cannot send")

    def _find_peer_by_identity(self, identity: bytes) -> "Socket":
        for p in self._live_peers():
            if p.identity == identity:
                return p
        raise SocketError(f"no connected peer with identity {identity!r}")

    # -- receive ----------------------------------------------------------------
    def recv(self) -> Message:
        if self.closed:
            raise SocketError("socket is closed")
        if self.type is SocketType.REQ and not self._await_reply:
            raise StateError("REQ socket must send before receiving")
        if self.type is SocketType.PUSH:
            raise SocketError("PUSH sockets cannot receive")
        if not self._inbox:
            raise AgainError("no message available")
        msg = self._inbox.popleft()
        self.messages_received += 1
        if self.type is SocketType.REQ:
            self._await_reply = False
            return msg
        if self.type is SocketType.REP:
            identity, payload = msg.pop_front()
            self._pending_reply_to = identity.data
            return payload
        return msg

    def poll(self) -> bool:
        """True if a message is waiting."""
        return bool(self._inbox)

    @property
    def pending(self) -> int:
        return len(self._inbox)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Socket({self.type.value}, id={self.identity!r}, pending={self.pending})"


def _as_message(message: Message | bytes | list[bytes]) -> Message:
    if isinstance(message, Message):
        return message
    if isinstance(message, (bytes, bytearray)):
        return Message.of(bytes(message))
    return Message.from_parts(message)
