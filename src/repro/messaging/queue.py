"""Reliable task queue with acknowledgements and redelivery.

The paper (SS IV-A) says the ZeroMQ queue "provides a reliable messaging
model that ensures tasks are received and executed". This module implements
that contract explicitly:

* producers :meth:`TaskQueue.put` messages;
* consumers :meth:`TaskQueue.claim` a message, which makes it *in flight*
  with a visibility timeout;
* consumers must :meth:`TaskQueue.ack` within the timeout or the message is
  redelivered (to any consumer) by :meth:`TaskQueue.expire_inflight`;
* :meth:`TaskQueue.nack` returns a message to the queue immediately (used
  on worker failure).

Redelivery count is tracked so failure-injection tests can assert
at-least-once semantics.

The queue can optionally journal every mutation to a write-ahead log
(:meth:`TaskQueue.attach_journal`): one record per public operation,
appended duck-typed so this module never imports the durability
package. :meth:`TaskQueue.dump_state` / :meth:`TaskQueue.load_state`
are the introspection/rehydration pair crash recovery builds on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.sim.clock import VirtualClock


class QueueEmpty(Exception):
    """Raised by ``claim`` when no message is available."""


def servable_topic(servable_name: str, lane: str = "requests") -> str:
    """Queue topic carrying single-item requests for one servable.

    Per-servable topics let a consumer coalesce compatible requests at
    claim time (``claim_many``): every message on the topic targets the
    same servable, so any contiguous run of them forms a valid batch.

    ``lane`` separates producer/consumer pairs that must not claim each
    other's traffic — e.g. the Management Service's synchronous dispatch
    (lane ``"sync"``, where the producer immediately claims its own
    message) vs the coalescing runtime (the default lane, where requests
    sit waiting for a batch window).
    """
    return f"servable/{lane}/{servable_name}"


class UnknownDelivery(KeyError):
    """Raised by ``ack``/``nack`` for an unknown or already-settled tag."""


@dataclass
class QueuedMessage:
    """A message plus its delivery bookkeeping."""

    body: Any
    message_id: int
    enqueued_at: float
    topic: str = "default"
    deliveries: int = 0
    claimed_at: float | None = None
    delivery_tag: int | None = field(default=None, repr=False)


class TaskQueue:
    """At-least-once FIFO queue with per-topic channels."""

    def __init__(
        self,
        clock: VirtualClock,
        visibility_timeout_s: float = 30.0,
        max_deliveries: int = 5,
    ) -> None:
        if visibility_timeout_s <= 0:
            raise ValueError("visibility_timeout_s must be > 0")
        if max_deliveries < 1:
            raise ValueError("max_deliveries must be >= 1")
        self.clock = clock
        self.visibility_timeout_s = visibility_timeout_s
        self.max_deliveries = max_deliveries
        self._ready: dict[str, deque[QueuedMessage]] = {}
        self._inflight: dict[int, QueuedMessage] = {}
        self._dead: list[QueuedMessage] = []
        # Plain-int id cursors (not itertools.count): dump_state must
        # export them and load_state re-seed them for crash recovery.
        self._next_message_id = 1
        self._next_tag = 1
        #: Optional write-ahead journal (duck-typed; see
        #: :meth:`attach_journal`). ``None`` keeps the legacy in-memory
        #: behaviour bit-for-bit.
        self.journal = None
        self.total_enqueued = 0
        self.total_acked = 0
        self.total_redelivered = 0
        self._topic_enqueued: dict[str, int] = {}
        #: Ready-set change listeners, ``cb(topic, delta_ready)`` — the
        #: event feed incremental consumers (the serving runtime's
        #: dispatch indices) maintain their per-topic state from, instead
        #: of rescanning every topic per tick.
        self._listeners: list = []
        #: Dead-letter listeners, ``cb(message)`` — fired when a message
        #: exhausts ``max_deliveries`` (or is nacked with
        #: ``requeue=False``) and drops out of circulation. A message
        #: parked on the dead-letter list will never settle, so anything
        #: holding per-request state keyed on settlement (open gateway
        #: results, trace contexts) needs this signal to close it out.
        self._dead_listeners: list = []

    def subscribe(self, listener) -> None:
        """Register ``listener(topic, delta_ready)`` for ready-set changes.

        The callback fires on every mutation of a topic's *ready* set:
        ``+1`` on :meth:`put`, :meth:`restore`, and requeueing
        :meth:`nack`; ``-1`` per message claimed or withdrawn. Acks and
        dead-letterings touch only in-flight state and do not fire.
        Listeners must not mutate the queue reentrantly.
        """
        self._listeners.append(listener)

    def subscribe_dead_letter(self, listener) -> None:
        """Register ``listener(message)`` for dead-letter drops.

        Fires exactly once per message, at the moment it is appended to
        the dead-letter list. Listeners must not mutate the queue
        reentrantly.
        """
        self._dead_listeners.append(listener)

    def _notify(self, topic: str, delta: int) -> None:
        for listener in self._listeners:
            listener(topic, delta)

    # -- producer side ----------------------------------------------------------
    def put(
        self, body: Any, topic: str = "default", enqueued_at: float | None = None
    ) -> QueuedMessage:
        """Enqueue ``body`` on ``topic``; returns the queued message.

        ``enqueued_at`` back-dates the message's timestamp (it may not
        be in the future): a producer re-submitting work it previously
        withdrew passes the original enqueue time, so wait-time metrics
        and coalescing deadlines keyed on the timestamp keep seeing the
        request's true age. A back-dated put is a *re*-submission of an
        arrival the counters already saw (:meth:`withdraw_newest` keeps
        them), so it does not increment ``enqueued_count`` again —
        rate estimators reading counter deltas must not see a phantom
        demand spike every time withdrawn work is re-released.
        """
        now = self.clock.now()
        if enqueued_at is not None and enqueued_at > now:
            raise ValueError("enqueued_at may not be in the future")
        msg = QueuedMessage(
            body=body,
            message_id=self._next_message_id,
            enqueued_at=now if enqueued_at is None else enqueued_at,
            topic=topic,
        )
        self._next_message_id += 1
        self._ready.setdefault(topic, deque()).append(msg)
        if enqueued_at is None:
            self.total_enqueued += 1
            self._topic_enqueued[topic] = self._topic_enqueued.get(topic, 0) + 1
        if self.journal is not None:
            self.journal.append(
                "put",
                {
                    "topic": topic,
                    "message_id": msg.message_id,
                    "enqueued_at": msg.enqueued_at,
                    "counted": enqueued_at is None,
                    "task_uuid": getattr(body, "task_uuid", None),
                    "body": self.journal.encode_body(body),
                },
            )
        self._notify(topic, +1)
        return msg

    # -- consumer side ----------------------------------------------------------
    def claim(self, topic: str = "default") -> QueuedMessage:
        """Claim the next ready message on ``topic``.

        Raises :class:`QueueEmpty` if nothing is ready.
        """
        chan = self._ready.get(topic)
        if not chan:
            raise QueueEmpty(topic)
        msg = self._claim_from(chan)
        self._journal_claim(topic, [msg])
        return msg

    def claim_many(self, topic: str = "default", n: int = 1) -> list[QueuedMessage]:
        """Claim up to ``n`` ready messages on ``topic``, in FIFO order.

        This is the coalescing primitive: on a per-servable topic the
        claimed run is a ready-made micro-batch. Each message gets its own
        delivery tag and visibility timeout, so a partially-failed batch
        can be settled message by message.

        Raises :class:`QueueEmpty` if nothing is ready.
        """
        if n < 1:
            raise ValueError("claim_many requires n >= 1")
        chan = self._ready.get(topic)
        if not chan:
            raise QueueEmpty(topic)
        msgs = []
        while chan and len(msgs) < n:
            msgs.append(self._claim_from(chan))
        self._journal_claim(topic, msgs)
        return msgs

    def _claim_from(self, chan: deque[QueuedMessage]) -> QueuedMessage:
        msg = chan.popleft()
        msg.deliveries += 1
        msg.claimed_at = self.clock.now()
        msg.delivery_tag = self._next_tag
        self._next_tag += 1
        self._inflight[msg.delivery_tag] = msg
        self._notify(msg.topic, -1)
        return msg

    def _journal_claim(self, topic: str, msgs: list[QueuedMessage]) -> None:
        # One record per claim *call* (claim_many included), so every
        # journal offset is a public-operation boundary.
        if self.journal is not None:
            self.journal.append(
                "claim",
                {
                    "topic": topic,
                    "claims": [[m.message_id, m.delivery_tag] for m in msgs],
                    "claimed_at": msgs[0].claimed_at,
                },
            )

    def ack(self, delivery_tag: int) -> None:
        """Settle a claimed message; it will never be redelivered."""
        msg = self._inflight.pop(delivery_tag, None)
        if msg is None:
            raise UnknownDelivery(delivery_tag)
        self.total_acked += 1
        if self.journal is not None:
            self.journal.append("ack", {"delivery_tag": delivery_tag})

    def nack(self, delivery_tag: int, requeue: bool = True) -> None:
        """Return a claimed message to the queue (or dead-letter it)."""
        msg = self._inflight.pop(delivery_tag, None)
        if msg is None:
            raise UnknownDelivery(delivery_tag)
        msg.claimed_at = None
        msg.delivery_tag = None
        requeued = requeue and msg.deliveries < self.max_deliveries
        if self.journal is not None:
            # The record carries the live outcome so a replay needs no
            # knowledge of this queue's max_deliveries configuration.
            self.journal.append(
                "nack",
                {
                    "delivery_tag": delivery_tag,
                    "outcome": "requeued" if requeued else "dead",
                },
            )
        if requeued:
            self._ready.setdefault(msg.topic, deque()).appendleft(msg)
            self.total_redelivered += 1
            self._notify(msg.topic, +1)
        else:
            self._dead.append(msg)
            for listener in self._dead_listeners:
                listener(msg)

    def withdraw_newest(self, topic: str, n: int = 1) -> list[QueuedMessage]:
        """Withdraw up to ``n`` ready messages from the *tail* of ``topic``.

        The inverse of :meth:`put`, for producers taking work back: a
        gateway whose dispatch budget shrank below its outstanding
        releases reclaims the most recently released (least likely to
        be near dispatch) messages and re-queues them in its own fair
        lanes. Withdrawn messages were never claimed, so no delivery
        bookkeeping is touched; the cumulative ``enqueued_count`` is
        *not* rolled back (it is a monotonic arrival counter, and the
        arrivals did happen). Returns the withdrawn messages,
        newest first.
        """
        if n < 1:
            raise ValueError("withdraw_newest requires n >= 1")
        chan = self._ready.get(topic)
        withdrawn: list[QueuedMessage] = []
        while chan and len(withdrawn) < n:
            withdrawn.append(chan.pop())
            self._notify(topic, -1)
        if withdrawn and self.journal is not None:
            self.journal.append(
                "withdraw",
                {
                    "topic": topic,
                    "message_ids": [m.message_id for m in withdrawn],
                },
            )
        return withdrawn

    def restore(self, message: QueuedMessage) -> None:
        """Return a withdrawn (never-claimed) message to its topic's tail.

        The undo of :meth:`withdraw_newest` for messages the withdrawer
        decides not to keep: the original ``enqueued_at`` is preserved
        and no arrival is re-counted.
        """
        self._ready.setdefault(message.topic, deque()).append(message)
        if self.journal is not None:
            self.journal.append("restore", {"message_id": message.message_id})
        self._notify(message.topic, +1)

    def expire_inflight(self) -> int:
        """Redeliver in-flight messages whose visibility timeout has lapsed.

        Returns the number of messages redelivered (or dead-lettered).
        """
        now = self.clock.now()
        # Small epsilon guards against float accumulation on the virtual
        # clock making `now - claimed_at` land just under the timeout.
        epsilon = 1e-9
        expired = [
            tag
            for tag, msg in self._inflight.items()
            if msg.claimed_at is not None
            and now - msg.claimed_at >= self.visibility_timeout_s - epsilon
        ]
        for tag in expired:
            self.nack(tag, requeue=True)
        return len(expired)

    # -- durability -------------------------------------------------------------
    def attach_journal(self, journal, *, bootstrap: bool = True) -> None:
        """Start journaling every mutation to ``journal`` (write-ahead).

        ``journal`` is duck-typed (see
        :class:`repro.durability.journal.Journal`): it must expose
        ``append(op, data)``, ``encode_body(body)``, and
        ``seed_baseline(...)``. With ``bootstrap`` (the default) the
        queue must hold no messages — its monotonic counters and id
        cursors are seeded into the journal as a ``baseline`` record so
        a replay reconstructs them. Recovery attaches with
        ``bootstrap=False``: the journal's shadow state already equals
        the materialized queue.
        """
        if self.journal is not None:
            raise ValueError("queue already has a journal attached")
        if bootstrap:
            if len(self) or self._inflight or self._dead:
                raise ValueError(
                    "attach_journal(bootstrap=True) requires a queue with "
                    "no messages (counters may be non-zero)"
                )
            journal.seed_baseline(
                total_enqueued=self.total_enqueued,
                total_acked=self.total_acked,
                total_redelivered=self.total_redelivered,
                topic_enqueued=dict(self._topic_enqueued),
                next_message_id=self._next_message_id,
                next_tag=self._next_tag,
            )
        self.journal = journal

    def dump_state(self) -> dict:
        """The queue's full observable state as one plain document.

        The replay property test compares this against
        :meth:`repro.durability.state.SystemState.fingerprint` — the
        two must produce the identical shape. Bodies are the live
        objects (callers comparing across a pickle round-trip rely on
        value equality).
        """

        def doc(msg: QueuedMessage, claimed: bool = False) -> dict:
            entry = {
                "message_id": msg.message_id,
                "topic": msg.topic,
                "enqueued_at": msg.enqueued_at,
                "deliveries": msg.deliveries,
                "body": msg.body,
            }
            if claimed:
                entry["claimed_at"] = msg.claimed_at
            return entry

        return {
            "ready": {
                topic: [doc(m) for m in chan]
                for topic, chan in sorted(self._ready.items())
                if chan
            },
            "inflight": [
                [tag, doc(self._inflight[tag], claimed=True)]
                for tag in sorted(self._inflight)
            ],
            "dead": [doc(m) for m in self._dead],
            "total_enqueued": self.total_enqueued,
            "total_acked": self.total_acked,
            "total_redelivered": self.total_redelivered,
            "topic_enqueued": dict(sorted(self._topic_enqueued.items())),
            "next_message_id": self._next_message_id,
            "next_tag": self._next_tag,
        }

    def load_state(self, state: dict) -> None:
        """Install recovered contents (the inverse of :meth:`dump_state`,
        minus in-flight entries — recovery re-releases those *before*
        materializing, so a fresh queue never holds phantom claims).

        Requires a pristine queue. No ready-set events fire: consumers
        (the serving runtime) attach after materialization and baseline
        their indices from the loaded depths.
        """
        if (
            self.total_enqueued
            or self.total_acked
            or len(self)
            or self._inflight
            or self._dead
        ):
            raise ValueError("load_state requires a fresh queue")

        def message(doc: dict, topic: str) -> QueuedMessage:
            return QueuedMessage(
                body=doc["body"],
                message_id=doc["message_id"],
                enqueued_at=doc["enqueued_at"],
                topic=topic,
                deliveries=doc["deliveries"],
            )

        for topic in state["ready"]:
            self._ready[topic] = deque(
                message(doc, topic) for doc in state["ready"][topic]
            )
        for doc in state["dead"]:
            self._dead.append(message(doc, doc["topic"]))
        self.total_enqueued = state["total_enqueued"]
        self.total_acked = state["total_acked"]
        self.total_redelivered = state["total_redelivered"]
        self._topic_enqueued = dict(state["topic_enqueued"])
        self._next_message_id = state["next_message_id"]
        self._next_tag = state["next_tag"]

    # -- introspection ----------------------------------------------------------
    def ready_count(self, topic: str = "default") -> int:
        """Messages ready (unclaimed) on ``topic``."""
        return len(self._ready.get(topic, ()))

    def enqueued_count(self, topic: str = "default") -> int:
        """Cumulative number of messages ever ``put`` on ``topic``.

        Monotonic (redeliveries don't count), so consumers can estimate a
        topic's arrival rate from the delta between two samples — the
        signal a fleet controller scales on.
        """
        return self._topic_enqueued.get(topic, 0)

    def oldest_ready(self, topic: str = "default") -> QueuedMessage | None:
        """Peek at the head message on ``topic`` without claiming it.

        Consumers that hold a coalescing window open use the head's
        ``enqueued_at`` to decide when the window must close.
        """
        chan = self._ready.get(topic)
        return chan[0] if chan else None

    def next_inflight_expiry(self, topics: set[str] | None = None) -> float | None:
        """Earliest virtual time an in-flight visibility timeout lapses.

        Event-driven consumers sleep until this moment to pick up work
        abandoned by a crashed claimant; ``None`` when nothing relevant
        is in flight. ``topics`` restricts the scan to the caller's own
        channels on a shared queue.
        """
        claimed = [
            msg.claimed_at
            for msg in self._inflight.values()
            if msg.claimed_at is not None
            and (topics is None or msg.topic in topics)
        ]
        if not claimed:
            return None
        return min(claimed) + self.visibility_timeout_s

    @property
    def inflight_count(self) -> int:
        """Claimed-but-unsettled messages across every topic."""
        return len(self._inflight)

    def inflight_count_for(self, topic: str) -> int:
        """Claimed-but-unsettled messages on one topic.

        Lane lifecycle management uses this: a lane whose topic still
        has claims outstanding (a consumer crashed mid-batch and the
        visibility timeout hasn't lapsed) must not be garbage-collected,
        or the redelivered messages would land on an unscanned topic.
        """
        return sum(1 for msg in self._inflight.values() if msg.topic == topic)

    @property
    def dead_letters(self) -> list[QueuedMessage]:
        """Messages that exhausted their delivery attempts."""
        return list(self._dead)

    def topics(self) -> list[str]:
        """Topics that currently hold ready messages."""
        return [t for t, q in self._ready.items() if q]

    def __len__(self) -> int:
        return sum(len(q) for q in self._ready.values())
