"""Reliable task queue with acknowledgements and redelivery.

The paper (SS IV-A) says the ZeroMQ queue "provides a reliable messaging
model that ensures tasks are received and executed". This module implements
that contract explicitly:

* producers :meth:`TaskQueue.put` messages;
* consumers :meth:`TaskQueue.claim` a message, which makes it *in flight*
  with a visibility timeout;
* consumers must :meth:`TaskQueue.ack` within the timeout or the message is
  redelivered (to any consumer) by :meth:`TaskQueue.expire_inflight`;
* :meth:`TaskQueue.nack` returns a message to the queue immediately (used
  on worker failure).

Redelivery count is tracked so failure-injection tests can assert
at-least-once semantics.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.sim.clock import VirtualClock


class QueueEmpty(Exception):
    """Raised by ``claim`` when no message is available."""


def servable_topic(servable_name: str, lane: str = "requests") -> str:
    """Queue topic carrying single-item requests for one servable.

    Per-servable topics let a consumer coalesce compatible requests at
    claim time (``claim_many``): every message on the topic targets the
    same servable, so any contiguous run of them forms a valid batch.

    ``lane`` separates producer/consumer pairs that must not claim each
    other's traffic — e.g. the Management Service's synchronous dispatch
    (lane ``"sync"``, where the producer immediately claims its own
    message) vs the coalescing runtime (the default lane, where requests
    sit waiting for a batch window).
    """
    return f"servable/{lane}/{servable_name}"


class UnknownDelivery(KeyError):
    """Raised by ``ack``/``nack`` for an unknown or already-settled tag."""


@dataclass
class QueuedMessage:
    """A message plus its delivery bookkeeping."""

    body: Any
    message_id: int
    enqueued_at: float
    topic: str = "default"
    deliveries: int = 0
    claimed_at: float | None = None
    delivery_tag: int | None = field(default=None, repr=False)


class TaskQueue:
    """At-least-once FIFO queue with per-topic channels."""

    def __init__(
        self,
        clock: VirtualClock,
        visibility_timeout_s: float = 30.0,
        max_deliveries: int = 5,
    ) -> None:
        if visibility_timeout_s <= 0:
            raise ValueError("visibility_timeout_s must be > 0")
        if max_deliveries < 1:
            raise ValueError("max_deliveries must be >= 1")
        self.clock = clock
        self.visibility_timeout_s = visibility_timeout_s
        self.max_deliveries = max_deliveries
        self._ready: dict[str, deque[QueuedMessage]] = {}
        self._inflight: dict[int, QueuedMessage] = {}
        self._dead: list[QueuedMessage] = []
        self._msg_ids = itertools.count(1)
        self._tags = itertools.count(1)
        self.total_enqueued = 0
        self.total_acked = 0
        self.total_redelivered = 0
        self._topic_enqueued: dict[str, int] = {}

    # -- producer side ----------------------------------------------------------
    def put(self, body: Any, topic: str = "default") -> QueuedMessage:
        msg = QueuedMessage(
            body=body,
            message_id=next(self._msg_ids),
            enqueued_at=self.clock.now(),
            topic=topic,
        )
        self._ready.setdefault(topic, deque()).append(msg)
        self.total_enqueued += 1
        self._topic_enqueued[topic] = self._topic_enqueued.get(topic, 0) + 1
        return msg

    # -- consumer side ----------------------------------------------------------
    def claim(self, topic: str = "default") -> QueuedMessage:
        """Claim the next ready message on ``topic``.

        Raises :class:`QueueEmpty` if nothing is ready.
        """
        chan = self._ready.get(topic)
        if not chan:
            raise QueueEmpty(topic)
        return self._claim_from(chan)

    def claim_many(self, topic: str = "default", n: int = 1) -> list[QueuedMessage]:
        """Claim up to ``n`` ready messages on ``topic``, in FIFO order.

        This is the coalescing primitive: on a per-servable topic the
        claimed run is a ready-made micro-batch. Each message gets its own
        delivery tag and visibility timeout, so a partially-failed batch
        can be settled message by message.

        Raises :class:`QueueEmpty` if nothing is ready.
        """
        if n < 1:
            raise ValueError("claim_many requires n >= 1")
        chan = self._ready.get(topic)
        if not chan:
            raise QueueEmpty(topic)
        msgs = []
        while chan and len(msgs) < n:
            msgs.append(self._claim_from(chan))
        return msgs

    def _claim_from(self, chan: deque[QueuedMessage]) -> QueuedMessage:
        msg = chan.popleft()
        msg.deliveries += 1
        msg.claimed_at = self.clock.now()
        msg.delivery_tag = next(self._tags)
        self._inflight[msg.delivery_tag] = msg
        return msg

    def ack(self, delivery_tag: int) -> None:
        """Settle a claimed message; it will never be redelivered."""
        msg = self._inflight.pop(delivery_tag, None)
        if msg is None:
            raise UnknownDelivery(delivery_tag)
        self.total_acked += 1

    def nack(self, delivery_tag: int, requeue: bool = True) -> None:
        """Return a claimed message to the queue (or dead-letter it)."""
        msg = self._inflight.pop(delivery_tag, None)
        if msg is None:
            raise UnknownDelivery(delivery_tag)
        msg.claimed_at = None
        msg.delivery_tag = None
        if requeue and msg.deliveries < self.max_deliveries:
            self._ready.setdefault(msg.topic, deque()).appendleft(msg)
            self.total_redelivered += 1
        else:
            self._dead.append(msg)

    def expire_inflight(self) -> int:
        """Redeliver in-flight messages whose visibility timeout has lapsed.

        Returns the number of messages redelivered (or dead-lettered).
        """
        now = self.clock.now()
        # Small epsilon guards against float accumulation on the virtual
        # clock making `now - claimed_at` land just under the timeout.
        epsilon = 1e-9
        expired = [
            tag
            for tag, msg in self._inflight.items()
            if msg.claimed_at is not None
            and now - msg.claimed_at >= self.visibility_timeout_s - epsilon
        ]
        for tag in expired:
            self.nack(tag, requeue=True)
        return len(expired)

    # -- introspection ----------------------------------------------------------
    def ready_count(self, topic: str = "default") -> int:
        return len(self._ready.get(topic, ()))

    def enqueued_count(self, topic: str = "default") -> int:
        """Cumulative number of messages ever ``put`` on ``topic``.

        Monotonic (redeliveries don't count), so consumers can estimate a
        topic's arrival rate from the delta between two samples — the
        signal a fleet controller scales on.
        """
        return self._topic_enqueued.get(topic, 0)

    def oldest_ready(self, topic: str = "default") -> QueuedMessage | None:
        """Peek at the head message on ``topic`` without claiming it.

        Consumers that hold a coalescing window open use the head's
        ``enqueued_at`` to decide when the window must close.
        """
        chan = self._ready.get(topic)
        return chan[0] if chan else None

    def next_inflight_expiry(self, topics: set[str] | None = None) -> float | None:
        """Earliest virtual time an in-flight visibility timeout lapses.

        Event-driven consumers sleep until this moment to pick up work
        abandoned by a crashed claimant; ``None`` when nothing relevant
        is in flight. ``topics`` restricts the scan to the caller's own
        channels on a shared queue.
        """
        claimed = [
            msg.claimed_at
            for msg in self._inflight.values()
            if msg.claimed_at is not None
            and (topics is None or msg.topic in topics)
        ]
        if not claimed:
            return None
        return min(claimed) + self.visibility_timeout_s

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    def inflight_count_for(self, topic: str) -> int:
        """Claimed-but-unsettled messages on one topic.

        Lane lifecycle management uses this: a lane whose topic still
        has claims outstanding (a consumer crashed mid-batch and the
        visibility timeout hasn't lapsed) must not be garbage-collected,
        or the redelivered messages would land on an unscanned topic.
        """
        return sum(1 for msg in self._inflight.values() if msg.topic == topic)

    @property
    def dead_letters(self) -> list[QueuedMessage]:
        return list(self._dead)

    def topics(self) -> list[str]:
        return [t for t, q in self._ready.items() if q]

    def __len__(self) -> int:
        return sum(len(q) for q in self._ready.values())
