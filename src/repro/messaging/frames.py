"""Multipart message frames, ZeroMQ-style.

A :class:`Message` is an ordered list of :class:`Frame` byte parts. ROUTER
sockets prepend identity frames and an empty delimiter frame, exactly like
ZeroMQ's envelope convention, so request routing and reply addressing work
the same way they do in the real system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Frame:
    """A single immutable byte frame."""

    data: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.data, (bytes, bytearray)):
            raise TypeError(f"frame data must be bytes, got {type(self.data).__name__}")
        object.__setattr__(self, "data", bytes(self.data))

    def __len__(self) -> int:
        return len(self.data)

    @property
    def empty(self) -> bool:
        return len(self.data) == 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = self.data[:16]
        suffix = "..." if len(self.data) > 16 else ""
        return f"Frame({preview!r}{suffix}, {len(self.data)}B)"


DELIMITER = Frame(b"")


@dataclass
class Message:
    """An ordered multipart message."""

    frames: list[Frame] = field(default_factory=list)

    @classmethod
    def of(cls, *parts: bytes | Frame) -> "Message":
        """Build a message from byte parts or frames."""
        return cls([p if isinstance(p, Frame) else Frame(p) for p in parts])

    def __iter__(self) -> Iterator[Frame]:
        return iter(self.frames)

    def __len__(self) -> int:
        return len(self.frames)

    def __getitem__(self, idx: int) -> Frame:
        return self.frames[idx]

    @property
    def nbytes(self) -> int:
        """Total payload size across frames (drives latency accounting)."""
        return sum(len(f) for f in self.frames)

    def push_front(self, frame: Frame | bytes) -> "Message":
        """Return a new message with ``frame`` prepended (envelope building)."""
        f = frame if isinstance(frame, Frame) else Frame(frame)
        return Message([f, *self.frames])

    def pop_front(self) -> tuple[Frame, "Message"]:
        """Split off the first frame; returns ``(frame, rest)``."""
        if not self.frames:
            raise IndexError("pop_front on empty message")
        return self.frames[0], Message(self.frames[1:])

    def wrap(self, identity: bytes) -> "Message":
        """Prepend ``identity`` + empty delimiter (ROUTER envelope)."""
        return Message([Frame(identity), DELIMITER, *self.frames])

    def unwrap(self) -> tuple[bytes, "Message"]:
        """Strip an identity envelope; returns ``(identity, payload)``.

        Tolerates messages without a delimiter frame (plain identity prefix).
        """
        if not self.frames:
            raise ValueError("cannot unwrap an empty message")
        identity = self.frames[0].data
        rest = self.frames[1:]
        if rest and rest[0].empty:
            rest = rest[1:]
        return identity, Message(rest)

    def payload_frames(self) -> list[Frame]:
        """Frames after the last delimiter (the logical payload)."""
        for i in range(len(self.frames) - 1, -1, -1):
            if self.frames[i].empty:
                return self.frames[i + 1 :]
        return list(self.frames)

    @classmethod
    def from_parts(cls, parts: Iterable[bytes]) -> "Message":
        return cls([Frame(p) for p in parts])

    def to_parts(self) -> list[bytes]:
        return [f.data for f in self.frames]
