"""ZeroMQ-like in-process messaging substrate.

DLHub's Management Service talks to Task Managers over a ZeroMQ queue
(SS IV-A, "Model serving"). This package reproduces the messaging semantics
the system depends on:

* multipart **frames** with identity envelopes (:mod:`repro.messaging.frames`),
* **socket** patterns — REQ/REP, PUSH/PULL, ROUTER/DEALER — over an
  in-process broker (:mod:`repro.messaging.sockets`),
* a **reliable task queue** with acknowledgements, visibility timeouts and
  redelivery (:mod:`repro.messaging.queue`), and
* size-accounted **serialization** so that message bytes feed the latency
  model (:mod:`repro.messaging.serializer`).
"""

from repro.messaging.frames import Frame, Message
from repro.messaging.serializer import Serializer, PickleSerializer, JsonSerializer
from repro.messaging.sockets import (
    Context,
    SocketType,
    Socket,
    SocketError,
    AgainError,
    StateError,
)
from repro.messaging.queue import TaskQueue, QueuedMessage, QueueEmpty

__all__ = [
    "Frame",
    "Message",
    "Serializer",
    "PickleSerializer",
    "JsonSerializer",
    "Context",
    "SocketType",
    "Socket",
    "SocketError",
    "AgainError",
    "StateError",
    "TaskQueue",
    "QueuedMessage",
    "QueueEmpty",
]
