"""Text analysis for the search index."""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[a-z0-9_+\-]+")

#: Words too common to index (tiny stopword list; enough for metadata text).
STOPWORDS = frozenset(
    "a an and are as at be by for from has in is it of on or that the this to with".split()
)


def tokenize(text: str) -> list[str]:
    """Lowercase and split ``text`` into index tokens, dropping stopwords.

    Hyphens/underscores are kept inside tokens so identifiers like
    ``cifar-10`` and ``matminer_model`` survive intact, then the pieces are
    also emitted separately so partial queries match.
    """
    if not text:
        return []
    lowered = text.lower()
    tokens: list[str] = []
    for tok in _TOKEN_RE.findall(lowered):
        if tok in STOPWORDS:
            continue
        tokens.append(tok)
        if "-" in tok or "_" in tok:
            tokens.extend(p for p in re.split(r"[-_]", tok) if p and p not in STOPWORDS)
    return tokens


def prefix_grams(token: str, min_len: int = 2) -> list[str]:
    """All prefixes of ``token`` of length >= ``min_len`` (partial matching)."""
    if len(token) < min_len:
        return [token] if token else []
    return [token[:i] for i in range(min_len, len(token) + 1)]
