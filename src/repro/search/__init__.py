"""Globus-Search-like indexed discovery substrate.

DLHub registers model metadata in a Globus Search index and supports
"free text queries, partial matching, range queries, faceted search, and
more" with fine-grained access control (SS IV-A, "Model discovery"). This
package provides an inverted-index search engine with exactly those
capabilities:

* :mod:`repro.search.tokenizer` — text analysis (lowercasing, token
  splitting, prefix grams for partial matching),
* :mod:`repro.search.index` — documents, inverted index, TF-IDF ranking,
  per-document visibility ACLs,
* :mod:`repro.search.query` — a composable query AST (term, phrase,
  prefix, field match, numeric range, boolean combinators) plus a tiny
  query-string parser and faceted aggregation.
"""

from repro.search.tokenizer import tokenize, prefix_grams
from repro.search.index import SearchIndex, Document, Visibility
from repro.search.query import (
    Query,
    Term,
    Prefix,
    FieldMatch,
    RangeQuery,
    And,
    Or,
    Not,
    MatchAll,
    parse_query,
    FacetRequest,
    FacetResult,
)

__all__ = [
    "tokenize",
    "prefix_grams",
    "SearchIndex",
    "Document",
    "Visibility",
    "Query",
    "Term",
    "Prefix",
    "FieldMatch",
    "RangeQuery",
    "And",
    "Or",
    "Not",
    "MatchAll",
    "parse_query",
    "FacetRequest",
    "FacetResult",
]
