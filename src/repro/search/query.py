"""Query AST, query-string parser, facets, and search execution.

The query model mirrors what DLHub's discovery interface needs from Globus
Search: free-text terms (ranked by TF-IDF), prefix/partial matching, exact
field matches, numeric ranges, and boolean combinators; results can be
aggregated into facets (e.g. count of models per ``dlhub.model_type``).

Query-string syntax (parsed by :func:`parse_query`):

* bare words — free-text terms, combined with AND;
* ``word*`` — prefix (partial) match;
* ``field:value`` — exact keyword/token match on a dotted field;
* ``field:[lo TO hi]`` — inclusive numeric range (``*`` for open end);
* ``NOT expr``, ``expr OR expr`` — boolean operators (AND binds tighter).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field as dc_field
from typing import Any

from repro.search.index import Document, SearchIndex, ViewerContext
from repro.search.tokenizer import tokenize


class QueryError(ValueError):
    """Raised for malformed query strings."""


# ---------------------------------------------------------------------------
# Query AST
# ---------------------------------------------------------------------------


class Query:
    """Base query node."""

    def match_ids(self, index: SearchIndex) -> set[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    def score_tokens(self) -> list[str]:
        """Tokens contributing to TF-IDF relevance (free-text terms only)."""
        return []

    def __and__(self, other: "Query") -> "Query":
        return And([self, other])

    def __or__(self, other: "Query") -> "Query":
        return Or([self, other])

    def __invert__(self) -> "Query":
        return Not(self)


@dataclass
class MatchAll(Query):
    """Matches every document."""

    def match_ids(self, index: SearchIndex) -> set[str]:
        return set(index.all_doc_ids())


@dataclass
class Term(Query):
    """Free-text token match (analyzed)."""

    text: str

    def match_ids(self, index: SearchIndex) -> set[str]:
        tokens = tokenize(self.text)
        if not tokens:
            return set()
        result: set[str] | None = None
        for tok in tokens:
            hits = index.docs_with_token(tok)
            result = hits if result is None else (result & hits)
        return result or set()

    def score_tokens(self) -> list[str]:
        return tokenize(self.text)


@dataclass
class Prefix(Query):
    """Partial match: any token starting with ``prefix``."""

    prefix: str

    def match_ids(self, index: SearchIndex) -> set[str]:
        return index.docs_with_prefix(self.prefix.lower())


@dataclass
class FieldMatch(Query):
    """Exact or analyzed match on a dotted field path."""

    field: str
    value: Any

    def match_ids(self, index: SearchIndex) -> set[str]:
        hits: set[str] = set()
        # Analyzed text match on the field.
        if isinstance(self.value, str):
            tokens = tokenize(self.value)
            per_token: set[str] | None = None
            for tok in tokens:
                h = index.docs_with_field_token(self.field, tok)
                per_token = h if per_token is None else (per_token & h)
            if per_token:
                hits.update(per_token)
        # Exact keyword comparison (also covers numerics/bools).
        for doc_id in index.all_doc_ids():
            doc = index._docs[doc_id]
            stored = doc.keyword_fields.get(self.field)
            if stored == self.value:
                hits.add(doc_id)
            elif isinstance(stored, list) and self.value in stored:
                hits.add(doc_id)
        return hits


@dataclass
class RangeQuery(Query):
    """Inclusive numeric range on a field; ``None`` bounds are open."""

    field: str
    low: float | None = None
    high: float | None = None

    def match_ids(self, index: SearchIndex) -> set[str]:
        hits: set[str] = set()
        for doc_id in index.all_doc_ids():
            value = index._docs[doc_id].numeric_fields.get(self.field)
            if value is None:
                continue
            if self.low is not None and value < self.low:
                continue
            if self.high is not None and value > self.high:
                continue
            hits.add(doc_id)
        return hits


@dataclass
class And(Query):
    clauses: list[Query]

    def match_ids(self, index: SearchIndex) -> set[str]:
        if not self.clauses:
            return set()
        result: set[str] | None = None
        for clause in self.clauses:
            hits = clause.match_ids(index)
            result = hits if result is None else (result & hits)
            if not result:
                return set()
        return result or set()

    def score_tokens(self) -> list[str]:
        return [t for c in self.clauses for t in c.score_tokens()]


@dataclass
class Or(Query):
    clauses: list[Query]

    def match_ids(self, index: SearchIndex) -> set[str]:
        result: set[str] = set()
        for clause in self.clauses:
            result |= clause.match_ids(index)
        return result

    def score_tokens(self) -> list[str]:
        return [t for c in self.clauses for t in c.score_tokens()]


@dataclass
class Not(Query):
    clause: Query

    def match_ids(self, index: SearchIndex) -> set[str]:
        return set(index.all_doc_ids()) - self.clause.match_ids(index)


# ---------------------------------------------------------------------------
# Facets
# ---------------------------------------------------------------------------


@dataclass
class FacetRequest:
    """Request bucket counts of ``field`` values over the result set."""

    field: str
    size: int = 10


@dataclass
class FacetResult:
    field: str
    buckets: list[tuple[Any, int]]  # (value, count), descending count


def compute_facets(
    docs: list[Document], requests: list[FacetRequest]
) -> list[FacetResult]:
    results = []
    for req in requests:
        counts: dict[Any, int] = {}
        for doc in docs:
            value = doc.keyword_fields.get(req.field)
            if value is None:
                continue
            values = value if isinstance(value, list) else [value]
            for v in values:
                key = v if isinstance(v, (str, int, float, bool)) else str(v)
                counts[key] = counts.get(key, 0) + 1
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
        results.append(FacetResult(field=req.field, buckets=ordered[: req.size]))
    return results


# ---------------------------------------------------------------------------
# Search execution
# ---------------------------------------------------------------------------


@dataclass
class SearchHit:
    doc_id: str
    score: float
    source: dict[str, Any]


@dataclass
class SearchResult:
    hits: list[SearchHit]
    total: int
    facets: list[FacetResult] = dc_field(default_factory=list)

    def ids(self) -> list[str]:
        return [h.doc_id for h in self.hits]


def execute(
    index: SearchIndex,
    query: Query,
    viewer: ViewerContext | None = None,
    limit: int = 50,
    facet_requests: list[FacetRequest] | None = None,
) -> SearchResult:
    """Run ``query`` against ``index`` with ACL filtering and ranking."""
    viewer = viewer or ViewerContext.anonymous()
    ids = query.match_ids(index)
    visible = [
        index._docs[i] for i in ids if index._docs[i].visibility.allows(viewer)
    ]
    tokens = query.score_tokens()
    scored = [
        SearchHit(
            doc_id=d.doc_id,
            score=index.tfidf(tokens, d.doc_id) if tokens else 1.0,
            source=d.source,
        )
        for d in visible
    ]
    scored.sort(key=lambda h: (-h.score, h.doc_id))
    facets = compute_facets(visible, facet_requests or [])
    return SearchResult(hits=scored[:limit], total=len(scored), facets=facets)


# ---------------------------------------------------------------------------
# Query-string parser
# ---------------------------------------------------------------------------

_RANGE_RE = re.compile(
    r"^(?P<field>[\w.]+):\[(?P<lo>\*|-?\d+(?:\.\d+)?)\s+TO\s+(?P<hi>\*|-?\d+(?:\.\d+)?)\]$"
)
_FIELD_RE = re.compile(r"^(?P<field>[\w.]+):(?P<value>.+)$")


def _parse_atom(token: str) -> Query:
    m = _RANGE_RE.match(token)
    if m:
        lo = None if m.group("lo") == "*" else float(m.group("lo"))
        hi = None if m.group("hi") == "*" else float(m.group("hi"))
        return RangeQuery(m.group("field"), lo, hi)
    m = _FIELD_RE.match(token)
    if m and not token.endswith(":"):
        value: Any = m.group("value")
        stripped = value.strip('"')
        if re.fullmatch(r"-?\d+", stripped):
            value = int(stripped)
        elif re.fullmatch(r"-?\d+\.\d+", stripped):
            value = float(stripped)
        elif stripped.lower() in ("true", "false"):
            value = stripped.lower() == "true"
        else:
            value = stripped
        return FieldMatch(m.group("field"), value)
    if token.endswith("*") and len(token) > 1:
        return Prefix(token[:-1])
    return Term(token)


def _split_tokens(text: str) -> list[str]:
    """Split on whitespace but keep ``[lo TO hi]`` ranges and quotes intact."""
    tokens: list[str] = []
    buf: list[str] = []
    depth = 0
    in_quote = False
    for ch in text:
        if ch == '"':
            in_quote = not in_quote
            buf.append(ch)
        elif ch == "[":
            depth += 1
            buf.append(ch)
        elif ch == "]":
            depth = max(depth - 1, 0)
            buf.append(ch)
        elif ch.isspace() and depth == 0 and not in_quote:
            if buf:
                tokens.append("".join(buf))
                buf = []
        else:
            buf.append(ch)
    if in_quote:
        raise QueryError(f"unbalanced quote in query: {text!r}")
    if buf:
        tokens.append("".join(buf))
    return tokens


def parse_query(text: str) -> Query:
    """Parse a query string into a :class:`Query` (see module docstring)."""
    text = text.strip()
    if not text or text == "*":
        return MatchAll()
    tokens = _split_tokens(text)

    # Split on OR at the top level; AND groups between them.
    or_groups: list[list[str]] = [[]]
    for tok in tokens:
        if tok.upper() == "OR":
            if not or_groups[-1]:
                raise QueryError("OR with empty left-hand side")
            or_groups.append([])
        elif tok.upper() == "AND":
            continue  # AND is implicit
        else:
            or_groups[-1].append(tok)
    if not or_groups[-1]:
        raise QueryError("OR with empty right-hand side")

    def build_group(group: list[str]) -> Query:
        clauses: list[Query] = []
        negate_next = False
        for tok in group:
            if tok.upper() == "NOT":
                negate_next = True
                continue
            atom = _parse_atom(tok)
            clauses.append(Not(atom) if negate_next else atom)
            negate_next = False
        if negate_next:
            raise QueryError("dangling NOT at end of query")
        if not clauses:
            raise QueryError("empty query group")
        return clauses[0] if len(clauses) == 1 else And(clauses)

    groups = [build_group(g) for g in or_groups]
    return groups[0] if len(groups) == 1 else Or(groups)
