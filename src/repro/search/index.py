"""Inverted-index document store with TF-IDF ranking and ACLs.

Documents are flat-ish dicts; nested dicts are flattened into dotted field
paths (``dlhub.model_type``). String fields are tokenized into the full-text
index and kept as exact keywords; numeric fields support range queries.

Visibility: each document carries a :class:`Visibility` policy — public,
or restricted to a set of principal ids / group names. Queries are always
evaluated against a viewer context, mirroring Globus Search's
access-controlled discovery that the CANDLE use case relies on.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.search.tokenizer import tokenize


class IndexError_(KeyError):
    """Raised for unknown document ids."""


@dataclass(frozen=True)
class Visibility:
    """Who may see a document.

    ``public=True`` means everyone. Otherwise the viewer must match one of
    ``principals`` (identity ids) or belong to one of ``groups`` (checked
    through the caller-supplied membership function).
    """

    public: bool = True
    principals: frozenset[str] = frozenset()
    groups: frozenset[str] = frozenset()

    @classmethod
    def restricted(
        cls, principals: Iterable[str] = (), groups: Iterable[str] = ()
    ) -> "Visibility":
        return cls(public=False, principals=frozenset(principals), groups=frozenset(groups))

    def allows(self, viewer: "ViewerContext") -> bool:
        if self.public:
            return True
        if viewer.is_admin:
            return True
        if viewer.principal_id and viewer.principal_id in self.principals:
            return True
        return bool(self.groups & viewer.groups)


@dataclass(frozen=True)
class ViewerContext:
    """The identity evaluating a query (anonymous by default)."""

    principal_id: str | None = None
    groups: frozenset[str] = frozenset()
    is_admin: bool = False

    @classmethod
    def anonymous(cls) -> "ViewerContext":
        return cls()


@dataclass
class Document:
    """A stored document plus its analyzed form."""

    doc_id: str
    source: dict[str, Any]
    visibility: Visibility = field(default_factory=Visibility)
    #: dotted-field -> list of tokens (text fields only)
    text_fields: dict[str, list[str]] = field(default_factory=dict)
    #: dotted-field -> raw value (exact/keyword match)
    keyword_fields: dict[str, Any] = field(default_factory=dict)
    #: dotted-field -> float (range queries)
    numeric_fields: dict[str, float] = field(default_factory=dict)
    #: all tokens across text fields (free-text search)
    all_tokens: Counter = field(default_factory=Counter)


def flatten(source: dict[str, Any], prefix: str = "") -> dict[str, Any]:
    """Flatten nested dicts into dotted paths; lists are kept as values."""
    out: dict[str, Any] = {}
    for key, value in source.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.update(flatten(value, path))
        else:
            out[path] = value
    return out


class SearchIndex:
    """An inverted index over documents with ranking and facets."""

    def __init__(self, name: str = "index") -> None:
        self.name = name
        self._docs: dict[str, Document] = {}
        # token -> {doc_id: term_frequency}
        self._postings: dict[str, dict[str, int]] = defaultdict(dict)
        # (field, token) -> {doc_id}
        self._field_postings: dict[tuple[str, str], set[str]] = defaultdict(set)
        self.generation = 0

    # -- ingestion ---------------------------------------------------------------
    def ingest(
        self,
        doc_id: str,
        source: dict[str, Any],
        visibility: Visibility | None = None,
    ) -> Document:
        """Index (or re-index) a document."""
        if doc_id in self._docs:
            self.delete(doc_id)
        doc = Document(doc_id=doc_id, source=source, visibility=visibility or Visibility())
        for path, value in flatten(source).items():
            self._analyze_field(doc, path, value)
        for token, tf in doc.all_tokens.items():
            self._postings[token][doc_id] = tf
        for fieldname, tokens in doc.text_fields.items():
            for token in tokens:
                self._field_postings[(fieldname, token)].add(doc_id)
        self._docs[doc_id] = doc
        self.generation += 1
        return doc

    def _analyze_field(self, doc: Document, path: str, value: Any) -> None:
        if isinstance(value, bool):
            doc.keyword_fields[path] = value
        elif isinstance(value, (int, float)):
            doc.numeric_fields[path] = float(value)
            doc.keyword_fields[path] = value
        elif isinstance(value, str):
            tokens = tokenize(value)
            doc.text_fields[path] = tokens
            doc.keyword_fields[path] = value
            doc.all_tokens.update(tokens)
        elif isinstance(value, (list, tuple)):
            gathered: list[str] = []
            for item in value:
                if isinstance(item, str):
                    gathered.extend(tokenize(item))
                elif isinstance(item, (int, float)) and not isinstance(item, bool):
                    gathered.append(str(item))
            doc.text_fields[path] = gathered
            doc.keyword_fields[path] = list(value)
            doc.all_tokens.update(gathered)
        elif value is None:
            doc.keyword_fields[path] = None
        else:
            doc.keyword_fields[path] = str(value)

    def delete(self, doc_id: str) -> None:
        doc = self._docs.pop(doc_id, None)
        if doc is None:
            raise IndexError_(doc_id)
        for token in doc.all_tokens:
            postings = self._postings.get(token)
            if postings is not None:
                postings.pop(doc_id, None)
                if not postings:
                    del self._postings[token]
        for fieldname, tokens in doc.text_fields.items():
            for token in tokens:
                bucket = self._field_postings.get((fieldname, token))
                if bucket is not None:
                    bucket.discard(doc_id)
                    if not bucket:
                        del self._field_postings[(fieldname, token)]
        self.generation += 1

    # -- access -------------------------------------------------------------------
    def get(self, doc_id: str, viewer: ViewerContext | None = None) -> Document:
        doc = self._docs.get(doc_id)
        if doc is None:
            raise IndexError_(doc_id)
        if viewer is not None and not doc.visibility.allows(viewer):
            raise IndexError_(doc_id)  # hidden docs are indistinguishable from absent
        return doc

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._docs

    def all_doc_ids(self) -> list[str]:
        return list(self._docs)

    def visible_docs(self, viewer: ViewerContext) -> list[Document]:
        return [d for d in self._docs.values() if d.visibility.allows(viewer)]

    # -- low-level matching primitives (used by the query AST) --------------------
    def docs_with_token(self, token: str) -> set[str]:
        return set(self._postings.get(token, ()))

    def docs_with_field_token(self, fieldname: str, token: str) -> set[str]:
        return set(self._field_postings.get((fieldname, token), ()))

    def docs_with_prefix(self, prefix: str) -> set[str]:
        """Partial matching: all docs containing a token starting with prefix."""
        hits: set[str] = set()
        for token, postings in self._postings.items():
            if token.startswith(prefix):
                hits.update(postings)
        return hits

    def term_frequency(self, token: str, doc_id: str) -> int:
        return self._postings.get(token, {}).get(doc_id, 0)

    def document_frequency(self, token: str) -> int:
        return len(self._postings.get(token, ()))

    # -- scoring --------------------------------------------------------------------
    def tfidf(self, tokens: list[str], doc_id: str) -> float:
        """TF-IDF relevance of ``doc_id`` for a bag of query tokens."""
        n_docs = max(len(self._docs), 1)
        score = 0.0
        for token in tokens:
            tf = self.term_frequency(token, doc_id)
            if tf == 0:
                continue
            df = self.document_frequency(token)
            idf = math.log((1 + n_docs) / (1 + df)) + 1.0
            score += (1 + math.log(tf)) * idf
        return score
