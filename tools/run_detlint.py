#!/usr/bin/env python3
"""Run detlint, the repo's determinism & hot-path analyzer, over a tree.

Thin wrapper around :mod:`repro.analysis.cli` so CI and developers can
invoke it without installing the package::

    python tools/run_detlint.py src/repro
    python tools/run_detlint.py --format json src/repro/core
    python tools/run_detlint.py --list-rules

Exit status is 0 only when every scanned file is clean: no unsuppressed
findings and every ``# detlint: allow[...]`` pragma carries a reason.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
