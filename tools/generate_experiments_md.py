"""Regenerate EXPERIMENTS.md by running every experiment harness.

Usage::

    python tools/generate_experiments_md.py > EXPERIMENTS.md

Runs the same code paths as ``pytest benchmarks/ --benchmark-only`` (the
``repro.bench`` modules) with reduced-but-representative request counts,
and records paper-vs-measured for every table and figure.
"""

from __future__ import annotations

import sys


def section(title: str) -> None:
    print(f"\n## {title}\n")


def code_block(text: str) -> None:
    print("```")
    print(text)
    print("```")


def main() -> None:
    from repro.bench import fig3_servables, fig4_memoization, fig5_batching
    from repro.bench import fig6_batch_scaling, fig7_scalability, fig8_comparison
    from repro.bench import tables

    print("# EXPERIMENTS — paper vs. reproduction")
    print()
    print(
        "All latencies are **virtual time** from the calibrated simulation\n"
        "(see DESIGN.md SS2, 'Timing model'); absolute values are expected to\n"
        "track the paper's only loosely — the *shapes* (orderings, bands,\n"
        "crossovers, saturation points) are the reproduction targets. Every\n"
        "number below regenerates with\n"
        "`pytest benchmarks/ --benchmark-only` or by running this script.\n"
    )

    # ---------------------------------------------------------------- tables
    section("Table I & II — capability matrices")
    print(
        "Paper: qualitative feature comparison of 5 repositories and 5\n"
        "serving systems. Reproduction: regenerated from structured\n"
        "registries; every DLHub-column claim is additionally verified\n"
        "against the live codebase (see `repro.bench.tables.verify_dlhub_claims`).\n"
    )
    t = tables.run_tables()
    code_block(t["table1"])
    code_block(t["table2"])
    checks = tables.verify_dlhub_claims()
    print(f"\nLive DLHub-column checks: {sum(checks.values())}/{len(checks)} pass\n")

    # ---------------------------------------------------------------- fig 3
    section("Fig. 3 — request / invocation / inference times (6 servables)")
    print(
        "Paper: inference < invocation < request; tier gaps ~10-20 ms; noop\n"
        "invocation < 20 ms; model invocations < 40 ms; Inception/CIFAR-10\n"
        "carry extra input-transfer overhead. Measured:\n"
    )
    r3 = fig3_servables.run_experiment(n_requests=100)
    code_block(fig3_servables.format_report(r3))
    def gap(n):
        return (
            r3[n]["request_time"]["median_ms"]
            - r3[n]["invocation_time"]["median_ms"]
        )
    print(
        f"\nShape check: noop invocation {r3['noop']['invocation_time']['median_ms']:.1f} ms"
        f" (< 20 ✓); inception invocation"
        f" {r3['inception']['invocation_time']['median_ms']:.1f} ms (< 40 ✓);"
        f" transfer overhead inception {gap('inception'):.1f} ms vs noop"
        f" {gap('noop'):.1f} ms ✓\n"
    )

    # ---------------------------------------------------------------- fig 4
    section("Fig. 4 — memoization impact")
    print(
        "Paper: invocation time reduced 95.3-99.8%, request time 24.3-95.4%;\n"
        "memoized invocation ~1 ms (cache at the Task Manager). Measured:\n"
    )
    r4 = fig4_memoization.run_experiment(n_requests=100)
    code_block(fig4_memoization.format_report(r4))
    inv_reds = [d["reduction_pct"]["invocation_time"] for d in r4.values()]
    req_reds = [d["reduction_pct"]["request_time"] for d in r4.values()]
    print(
        f"\nMeasured ranges: invocation {min(inv_reds):.1f}-{max(inv_reds):.1f}%"
        f" (paper 95.3-99.8), request {min(req_reds):.1f}-{max(req_reds):.1f}%"
        f" (paper 24.3-95.4) — both inside/overlapping the paper's bands.\n"
    )

    # ---------------------------------------------------------------- fig 5
    section("Fig. 5 — invocation time, batched vs unbatched (1-100 requests)")
    print(
        "Paper: 'batching significantly reduces overall invocation time'.\n"
        "Measured:\n"
    )
    r5 = fig5_batching.run_experiment()
    code_block(fig5_batching.format_report(r5))

    # ---------------------------------------------------------------- fig 6
    section("Fig. 6 — batched invocation time to 10,000 requests")
    print(
        "Paper: 'roughly linear relationship between invocation time and\n"
        "number of requests'. Measured (least-squares fit per servable):\n"
    )
    r6 = fig6_batch_scaling.run_experiment()
    code_block(fig6_batch_scaling.format_report(r6))

    # ---------------------------------------------------------------- fig 7
    section("Fig. 7 — time for 5,000 inferences vs replica count")
    print(
        "Paper: throughput rises with replicas then saturates; Inception\n"
        "saturates ~15 replicas; shorter servables benefit less (dispatch\n"
        "dominates). Measured:\n"
    )
    r7 = fig7_scalability.run_experiment(n_inferences=2000)
    code_block(fig7_scalability.format_report(r7))
    sats = {k: v["saturation_replicas"] for k, v in r7.items()}
    print(f"\nSaturation points: {sats} (inception latest ✓)\n")

    # ---------------------------------------------------------------- fig 8
    section("Fig. 8 — serving-system comparison (CIFAR-10 + Inception)")
    print(
        "Paper: TFServing-core variants beat Python-based stacks; gRPC beats\n"
        "REST; DLHub comparable to Python stacks; DLHub+memo (~1 ms) beats\n"
        "Clipper+memo (cache in-cluster). Measured:\n"
    )
    r8 = fig8_comparison.run_experiment(n_requests=100)
    code_block(fig8_comparison.format_report(r8))
    placement = fig8_comparison.ablation_cache_placement()
    print(
        f"\nCache-placement ablation: TM-side hit"
        f" {placement['tm_cache_median_ms']:.2f} ms vs in-cluster frontend hit"
        f" {placement['frontend_cache_median_ms']:.2f} ms"
        f" ({placement['frontend_cache_median_ms'] / placement['tm_cache_median_ms']:.1f}x) —"
        " the structural reason for DLHub's memoization win.\n"
    )

    print(
        "\n## Text claims (SS V) — acceptance tests\n\n"
        "Asserted in `tests/integration/test_paper_claims.py`:\n\n"
        "| Claim | Paper | Status |\n"
        "|---|---|---|\n"
        "| noop served | < 20 ms | asserted |\n"
        "| models served | < 40 ms | asserted |\n"
        "| tier gaps | ~10-20 ms | asserted ('in most cases') |\n"
        "| memo invocation reduction | 95.3-99.8% | asserted (>= 93%) |\n"
        "| memo request reduction | 24.3-95.4% | asserted |\n"
        "| memoized invocation | ~1 ms | asserted (<= 1.5 ms) |\n"
        "| batching linear to 10k | R^2 ~ 1 | asserted (>= 0.999) |\n"
        "| Inception saturation | ~15 replicas | asserted (gain at 10->15, flat 15->25) |\n"
        "| TFServing < DLHub (no memo) | yes | asserted |\n"
        "| DLHub+memo < Clipper+memo | yes | asserted |\n"
    )


if __name__ == "__main__":
    sys.exit(main())
