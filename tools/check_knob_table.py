#!/usr/bin/env python3
"""Docs drift gate: the README knob table must match code defaults.

The README's "Ops guide: autoscaling knobs" table states a default for
every knob. Those cells rot silently when a constructor default
changes, so this tool re-derives each one from the source of truth —
``inspect.signature`` on the live classes — and fails CI on any
mismatch or on a registered knob whose row disappeared.

Each registry entry names the knob cell exactly as the README spells it
and the constructor parameters its "Default" cell quotes, in order.
The comparison is numeric: every number in the cell (with ``ms``/``s``
units normalized to seconds) must equal the corresponding signature
default. Prose-only cells ("off", "unset", derived expressions) are
deliberately unregistered — there is no machine-checkable fact behind
them.

Exit status is the number of mismatches (0 = success). Usage::

    python tools/check_knob_table.py [README.md]
"""

from __future__ import annotations

import inspect
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: README knob cell -> (class path, parameter names the default cell
#: quotes, in cell order). ``None`` entries skip a number the cell
#: carries that is not a plain constructor default (derived values).
REGISTRY: dict[str, tuple[str, list[str]]] = {
    "`alpha` / `beta` / `gamma`, `seasonal_period_s`": (
        "repro.core.adaptive.ArrivalForecaster",
        ["alpha", "beta", "gamma"],
    ),
    "`trend_damping`": (
        "repro.core.adaptive.ArrivalForecaster",
        ["trend_damping"],
    ),
    "`interval_s`": ("repro.core.fleet.FleetController", ["interval_s"]),
    "`min_workers` / `max_workers`": (
        "repro.core.fleet.FleetController",
        ["min_workers", "max_workers"],
    ),
    "`ewma_alpha`": ("repro.core.fleet.FleetController", ["ewma_alpha"]),
    "`target_utilization` / `scale_down_utilization`": (
        "repro.core.fleet.TargetUtilizationPolicy",
        ["target_utilization", "scale_down_utilization"],
    ),
    "`slo_s` / `safety`": (
        "repro.core.fleet.QueueLatencySLOPolicy",
        ["slo_s", "safety"],
    ),
    "`autoscale_replicas` / `max_replicas_per_host`": (
        "repro.core.fleet.FleetController",
        ["max_replicas_per_host"],
    ),
    "`max_batch_size`": ("repro.core.runtime.ServingRuntime", ["max_batch_size"]),
    "`max_coalesce_delay_s`": (
        "repro.core.runtime.ServingRuntime",
        ["max_coalesce_delay_s"],
    ),
    "`lane_idle_ttl_s` / `max_lanes_per_servable`": (
        "repro.core.runtime.ServingRuntime",
        ["lane_idle_ttl_s", "max_lanes_per_servable"],
    ),
    "`drain_deadline_s`": (
        "repro.gateway.gateway.ServingGateway",
        ["drain_deadline_s"],
    ),
    "`imbalance_derate_threshold` / `imbalance_derate_cap`": (
        "repro.core.fleet.FleetController",
        ["imbalance_derate_threshold", "imbalance_derate_cap"],
    ),
    "`sample_rate`": ("repro.core.telemetry.Tracer", ["sample_rate"]),
    "`slow_threshold_s`": (
        "repro.core.telemetry.Tracer",
        ["slow_threshold_s"],
    ),
    "`latency_slo_s` / `objective` / `window_s` / `burn_threshold`": (
        "repro.core.telemetry.SLOBurnMonitor",
        ["latency_slo_s", "objective", "window_s", "burn_threshold"],
    ),
    "`scrape_interval_s`": (
        "repro.core.obsloop.ObservabilityLoop",
        ["scrape_interval_s"],
    ),
    "`capacity`": ("repro.core.obsloop.SeriesStore", ["capacity"]),
    "`fast_window_s` / `slow_window_s` / `threshold`": (
        "repro.core.obsloop.BurnRateRule",
        ["fast_window_s", "slow_window_s", "threshold"],
    ),
    "`boost` / `shed_fraction`": (
        "repro.core.obsloop.ReactiveSLOPolicy",
        ["boost", "shed_fraction"],
    ),
    "`escalation` / `max_rate` / `decay`": (
        "repro.core.obsloop.AdaptiveSampler",
        ["escalation", "max_rate", "decay"],
    ),
    "`snapshot_every_records`": (
        "repro.durability.journal.Journal",
        ["snapshot_every_records"],
    ),
    "`restart_cost_s`": (
        "repro.durability.chaos.ChaosHarness",
        ["restart_cost_s"],
    ),
    "`visibility_timeout_s` / `max_deliveries`": (
        "repro.durability.chaos.ChaosHarness",
        ["visibility_timeout_s", "max_deliveries"],
    ),
    # `seasonal_autodetect` is a boolean opt-in — prose cell, no
    # machine-checkable number, deliberately unregistered. So is
    # `durable_store` (unset/None default).
}

#: Numbers with an optional time unit, e.g. "0.25 s", "10 ms", "64".
NUMBER_RE = re.compile(r"(\d+(?:\.\d+)?)\s*(ms|s)?\b")
UNIT_SCALE = {"": 1.0, "s": 1.0, "ms": 1e-3}


def signature_default(class_path: str, param: str) -> float:
    """The constructor default of ``param`` on the class at ``class_path``."""
    module_path, _, class_name = class_path.rpartition(".")
    module = __import__(module_path, fromlist=[class_name])
    cls = getattr(module, class_name)
    value = inspect.signature(cls.__init__).parameters[param].default
    if value is inspect.Parameter.empty or not isinstance(
        value, (int, float)
    ):
        raise SystemExit(
            f"registry error: {class_path}({param}) has no numeric default "
            f"(got {value!r}) — unregister it or fix the registry"
        )
    return float(value)


def knob_rows(readme: Path) -> dict[str, str]:
    """Knob cell -> Default cell for every row of the README knob table."""
    rows: dict[str, str] = {}
    in_table = False
    for line in readme.read_text().splitlines():
        if line.startswith("| Knob |"):
            in_table = True
            continue
        if in_table:
            if not line.startswith("|"):
                break
            cells = [cell.strip() for cell in line.strip("|").split("|")]
            if len(cells) >= 3 and not set(cells[0]) <= {"-", " "}:
                rows[cells[0]] = cells[2]
    return rows


def cell_numbers(cell: str) -> list[float]:
    """Every number in a Default cell, time units normalized to seconds."""
    return [
        float(value) * UNIT_SCALE[unit]
        for value, unit in NUMBER_RE.findall(cell)
    ]


def check(readme: Path) -> list[str]:
    """One human-readable error per drifted or missing registered knob."""
    rows = knob_rows(readme)
    if not rows:
        return [f"{readme}: knob table not found (header '| Knob |')"]
    errors: list[str] = []
    for knob, (class_path, params) in REGISTRY.items():
        cell = rows.get(knob)
        if cell is None:
            errors.append(
                f"{readme}: knob row {knob!r} is registered but missing "
                "from the table (renamed or dropped?)"
            )
            continue
        found = cell_numbers(cell)
        expected = [signature_default(class_path, p) for p in params]
        if found[: len(expected)] != expected:
            errors.append(
                f"{readme}: knob {knob!r} documents default(s) {found} but "
                f"{class_path} defines {expected} for {params} — update "
                "the table (or the registry, if the cell changed shape)"
            )
    return errors


def main(argv: list[str]) -> int:
    """Check the knob table of the given README (default: repo root's)."""
    readme = Path(argv[0]) if argv else (
        Path(__file__).resolve().parent.parent / "README.md"
    )
    if not readme.exists():
        print(f"{readme}: file does not exist", file=sys.stderr)
        return 2
    errors = check(readme)
    for error in errors:
        print(error, file=sys.stderr)
    print(
        f"checked {len(REGISTRY)} registered knob(s) against "
        f"{len(knob_rows(readme))} table row(s): {len(errors)} mismatch(es)"
    )
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
