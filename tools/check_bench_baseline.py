#!/usr/bin/env python3
"""Bench drift gate: committed BENCH_*.json artifacts must stay in bounds.

The repo commits each headline benchmark's report JSON at the repo
root (``BENCH_dispatch_overhead.json``, ``BENCH_incident_response.json``)
as the record of what the current code achieves. Those artifacts rot
two ways: a regenerated file can quietly carry a regression (a gate
metric drifting toward its limit), or the committed file can fall out
of date against the code that is supposed to reproduce it. This tool
closes both holes:

* **default mode** — every registered metric in every committed
  artifact is checked against its declared bounds (``min`` / ``max`` /
  ``equals``). Cheap, file-only, runs in CI next to the knob-table
  gate; it needs no simulation.
* **``--fresh DIR``** — compares freshly generated reports in ``DIR``
  against the committed ones: every metric with a ``rel_tol`` must
  match within that relative tolerance. Virtual-time metrics are
  bit-for-bit deterministic, so their tolerance is zero; wall-clock
  metrics carry no ``rel_tol`` and are skipped (their bounds still
  apply to the fresh file).

Metric paths are dotted keys with optional ``[i]`` list indexing
(negative indices allowed), e.g. ``tracing[-1].decision_overhead_ratio``.

Exit status is the number of violations (0 = success). Usage::

    python tools/check_bench_baseline.py [--fresh DIR] [ROOT]
"""

from __future__ import annotations

import json
import math
import re
import sys
from pathlib import Path

#: Artifact file -> metric path -> bound spec. Bounds (``min`` /
#: ``max`` / ``equals``) always apply; ``rel_tol`` additionally makes
#: the metric comparable in ``--fresh`` mode (0.0 = bit-for-bit, the
#: right tolerance for virtual-time results).
REGISTRY: dict[str, dict[str, dict]] = {
    "BENCH_dispatch_overhead.json": {
        # Dispatch-order semantics: the index picks what the scan picks.
        "picks_identical": {"equals": True},
        # O(log n) flatness and the headline speedup (wall-clock: bounds
        # only, never compared run-to-run).
        "per_decision_growth": {"max": 2.0},
        "speedup_by_lanes.10000": {"min": 10.0},
        # Tracing acceptance with the observability loop attached.
        "tracing[-1].lanes": {"equals": 10_000, "rel_tol": 0.0},
        "tracing[-1].decision_overhead_ratio": {"max": 1.05},
        # The adaptive-sampling escalation is deterministic:
        # min(max_rate, 10 x 1%) = 10%.
        "tracing[-1].escalated_rate": {"equals": 0.1, "rel_tol": 0.0},
        "tracing[-1].loop_scrapes": {"min": 1},
    },
    "BENCH_incident_response.json": {
        # Virtual-time simulation: every number below is deterministic,
        # so fresh runs must reproduce the committed file exactly.
        "params.firing_bound_scrapes": {"equals": 10, "rel_tol": 0.0},
        # Detection: the burn alert fired, inside the bounded window.
        "arms.observe.first_firing_s": {"min": 0.0, "max": 1.0, "rel_tol": 0.0},
        "arms.reactive.first_firing_s": {"min": 0.0, "max": 1.0, "rel_tol": 0.0},
        # Equal peak fleet in both arms (the comparison's precondition).
        "arms.observe.peak_workers": {"equals": 4, "rel_tol": 0.0},
        "arms.reactive.peak_workers": {"equals": 4, "rel_tol": 0.0},
        # Reaction: the observe arm denies nothing; the reactive arm
        # sheds the burning tenant and escalates only its sampling.
        "arms.observe.admitted": {"rel_tol": 0.0},
        "arms.reactive.denied.rejected_rate_limit": {"min": 1, "rel_tol": 0.0},
        "arms.reactive.policy.boosts": {"min": 1, "rel_tol": 0.0},
        "arms.reactive.policy.sheds": {"min": 1, "rel_tol": 0.0},
        "arms.reactive.sampler.peak_rates.hot": {"equals": 0.2, "rel_tol": 0.0},
        # Outcome: acting keeps the recovery-phase hot p95 strictly
        # below the observe arm's (bounds hold the gap, rel_tol pins
        # the exact deterministic values).
        "arms.observe.phase_p95_ms.hot.recovery": {"min": 2000.0, "rel_tol": 0.0},
        "arms.reactive.phase_p95_ms.hot.recovery": {"max": 2000.0, "rel_tol": 0.0},
        # The light tenant stays protected in both arms.
        "arms.observe.phase_p95_ms.light.recovery": {"max": 250.0, "rel_tol": 0.0},
        "arms.reactive.phase_p95_ms.light.recovery": {"max": 250.0, "rel_tol": 0.0},
    },
    "BENCH_chaos_recovery.json": {
        # Virtual-time simulation over the write-ahead journal: every
        # number is deterministic, so fresh runs must reproduce the
        # committed file exactly.
        # 100% settlement, exactly once, in both arms.
        "arms.steady.exactly_once": {"equals": True, "rel_tol": 0.0},
        "arms.chaos.exactly_once": {"equals": True, "rel_tol": 0.0},
        "arms.steady.settled": {"equals": 260, "rel_tol": 0.0},
        "arms.chaos.settled": {"equals": 260, "rel_tol": 0.0},
        "arms.chaos.duplicates": {"equals": 0, "rel_tol": 0.0},
        "arms.chaos.denied": {"equals": 0, "rel_tol": 0.0},
        # The crash fired once, at the armed boundary inside the spike
        # window, and one recovery restored real open work.
        "arms.steady.incarnations": {"equals": 1, "rel_tol": 0.0},
        "arms.chaos.incarnations": {"equals": 2, "rel_tol": 0.0},
        "arms.chaos.crashes[0].at_s": {"min": 0.5, "max": 1.0, "rel_tol": 0.0},
        "arms.chaos.recoveries[0].restored_open": {"min": 1, "rel_tol": 0.0},
        "arms.chaos.recoveries[0].released": {"min": 1, "rel_tol": 0.0},
        # Bounded tail penalty: one restart downtime plus re-serve slack
        # (the committed params carry the same bound the bench asserts).
        "p99_penalty_s": {"min": 0.0, "max": 0.75, "rel_tol": 0.0},
        "params.restart_cost_s": {"equals": 0.25, "rel_tol": 0.0},
    },
}

_PATH_TOKEN = re.compile(r"\[(-?\d+)\]|([^.\[\]]+)")


def lookup(doc, path: str):
    """Resolve a dotted/indexed metric path inside a report dict."""
    node = doc
    for index, key in _PATH_TOKEN.findall(path):
        if index:
            node = node[int(index)]
        else:
            node = node[key]
    return node


def _violates_bounds(value, spec: dict) -> str | None:
    """A human-readable bound violation, or ``None`` if in bounds."""
    if "equals" in spec:
        expected = spec["equals"]
        if isinstance(expected, bool):
            if bool(value) is not expected:
                return f"expected {expected}, got {value!r}"
        elif not math.isclose(float(value), float(expected), rel_tol=1e-9):
            return f"expected {expected}, got {value!r}"
    if "min" in spec and float(value) < spec["min"]:
        return f"{value!r} below min {spec['min']}"
    if "max" in spec and float(value) > spec["max"]:
        return f"{value!r} above max {spec['max']}"
    return None


def _drifted(committed, fresh, rel_tol: float) -> bool:
    """Whether a fresh value left the committed value's tolerance."""
    if isinstance(committed, bool) or isinstance(fresh, bool):
        return bool(committed) is not bool(fresh)
    return not math.isclose(
        float(fresh), float(committed), rel_tol=rel_tol, abs_tol=rel_tol
    )


def check(root: Path, fresh_dir: Path | None) -> list[str]:
    """Every violation across all registered artifacts."""
    errors: list[str] = []
    for filename, metrics in REGISTRY.items():
        committed_path = root / filename
        if not committed_path.exists():
            errors.append(f"{committed_path}: registered artifact missing")
            continue
        committed = json.loads(committed_path.read_text())
        fresh = None
        if fresh_dir is not None:
            fresh_path = fresh_dir / filename
            if not fresh_path.exists():
                errors.append(
                    f"{fresh_path}: --fresh given but no fresh report"
                )
            else:
                fresh = json.loads(fresh_path.read_text())
        for path, spec in metrics.items():
            try:
                value = lookup(committed, path)
            except (KeyError, IndexError, TypeError):
                errors.append(f"{filename}: metric {path!r} not found")
                continue
            problem = _violates_bounds(value, spec)
            if problem is not None:
                errors.append(f"{filename}: {path}: {problem}")
            if fresh is None or "rel_tol" not in spec:
                continue
            try:
                fresh_value = lookup(fresh, path)
            except (KeyError, IndexError, TypeError):
                errors.append(f"{filename} (fresh): metric {path!r} not found")
                continue
            if _drifted(value, fresh_value, spec["rel_tol"]):
                errors.append(
                    f"{filename}: {path}: fresh run produced "
                    f"{fresh_value!r}, committed baseline says {value!r} "
                    f"(rel_tol {spec['rel_tol']}) — regenerate the "
                    "artifact or find the nondeterminism"
                )
    return errors


def main(argv: list[str]) -> int:
    """Check committed artifacts; with ``--fresh DIR``, diff against it."""
    fresh_dir: Path | None = None
    args = list(argv)
    if "--fresh" in args:
        at = args.index("--fresh")
        try:
            fresh_dir = Path(args[at + 1])
        except IndexError:
            print("--fresh requires a directory", file=sys.stderr)
            return 2
        del args[at : at + 2]
    root = Path(args[0]) if args else (
        Path(__file__).resolve().parent.parent
    )
    errors = check(root, fresh_dir)
    for error in errors:
        print(error, file=sys.stderr)
    n_metrics = sum(len(m) for m in REGISTRY.values())
    mode = "bounds + fresh-diff" if fresh_dir is not None else "bounds"
    print(
        f"checked {n_metrics} registered metric(s) across "
        f"{len(REGISTRY)} artifact(s) [{mode}]: {len(errors)} violation(s)"
    )
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
