#!/usr/bin/env python3
"""Markdown link checker for the docs CI job (stdlib only).

Validates every inline link in the given markdown files:

* relative file links must resolve to an existing file or directory
  (checked against the linking file's location);
* fragment links (``file.md#anchor`` or ``#anchor``) must match a
  heading in the target file, using GitHub's anchor slug rules;
* absolute URLs (http/https/mailto) are syntax-checked only — CI must
  stay hermetic, so nothing is fetched.

Exit status is the number of broken links (0 = success). Usage::

    python tools/check_markdown_links.py README.md ROADMAP.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links: [text](target) — images share the syntax.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug: lowercase, spaces to dashes,
    punctuation dropped (backticks and inline code keep their text)."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """All heading anchors a markdown file exposes.

    Applies GitHub's duplicate-heading disambiguation: the second
    ``## Example`` renders as ``#example-1``, the third ``#example-2``.
    """
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    for match in HEADING_RE.finditer(path.read_text()):
        slug = github_anchor(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def strip_code(text: str) -> str:
    """Drop fenced code blocks and inline code — links inside are
    illustrative, not navigable."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def check_file(path: Path) -> list[str]:
    """Returns one human-readable error per broken link in ``path``."""
    errors: list[str] = []
    for target in LINK_RE.findall(strip_code(path.read_text())):
        if target.startswith(SKIP_SCHEMES):
            continue
        base, _, fragment = target.partition("#")
        resolved = path if not base else (path.parent / base).resolve()
        if base and not resolved.exists():
            errors.append(f"{path}: broken link -> {target}")
            continue
        if fragment:
            if resolved.is_dir() or resolved.suffix.lower() != ".md":
                continue  # anchors only checked inside markdown
            if github_anchor(fragment) not in anchors_of(resolved):
                errors.append(f"{path}: missing anchor -> {target}")
    return errors


def main(argv: list[str]) -> int:
    """Check every file given on the command line; print all failures."""
    if not argv:
        print("usage: check_markdown_links.py FILE.md [FILE.md ...]")
        return 2
    failures: list[str] = []
    checked = 0
    for name in argv:
        path = Path(name)
        if not path.exists():
            failures.append(f"{path}: file does not exist")
            continue
        checked += 1
        failures.extend(check_file(path))
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"checked {checked} file(s): {len(failures)} broken link(s)")
    return min(len(failures), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
