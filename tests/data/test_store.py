"""Unit tests for the object store."""

import pytest

from repro.data.store import BucketExists, ObjectNotFound, ObjectStore


@pytest.fixture
def store():
    return ObjectStore()


class TestBuckets:
    def test_create_and_list(self, store):
        store.create_bucket("models")
        assert store.buckets() == ["models"]

    def test_duplicate_create_rejected(self, store):
        store.create_bucket("b")
        with pytest.raises(BucketExists):
            store.create_bucket("b")

    def test_ensure_is_idempotent(self, store):
        store.ensure_bucket("b")
        store.ensure_bucket("b")
        assert store.buckets() == ["b"]

    def test_delete_empty(self, store):
        store.create_bucket("b")
        store.delete_bucket("b")
        assert store.buckets() == []

    def test_delete_nonempty_requires_force(self, store):
        store.put("b", "k", b"x")
        with pytest.raises(ValueError):
            store.delete_bucket("b")
        store.delete_bucket("b", force=True)

    def test_delete_unknown(self, store):
        with pytest.raises(ObjectNotFound):
            store.delete_bucket("ghost")


class TestObjects:
    def test_put_get_roundtrip(self, store):
        store.put("b", "weights.npz", b"\x01\x02", metadata={"v": "1"})
        obj = store.get("b", "weights.npz")
        assert obj.data == b"\x01\x02"
        assert obj.size == 2
        assert obj.metadata == {"v": "1"}

    def test_digest_stable(self, store):
        a = store.put("b", "k1", b"same")
        b = store.put("b", "k2", b"same")
        assert a.digest == b.digest
        assert a.digest.startswith("sha256:")

    def test_overwrite(self, store):
        store.put("b", "k", b"v1")
        store.put("b", "k", b"v2")
        assert store.get("b", "k").data == b"v2"

    def test_get_missing(self, store):
        store.ensure_bucket("b")
        with pytest.raises(ObjectNotFound):
            store.get("b", "nope")
        with pytest.raises(ObjectNotFound):
            store.get("nobucket", "k")

    def test_exists(self, store):
        store.put("b", "k", b"x")
        assert store.exists("b", "k")
        assert not store.exists("b", "other")
        assert not store.exists("nobucket", "k")

    def test_delete(self, store):
        store.put("b", "k", b"x")
        store.delete("b", "k")
        assert not store.exists("b", "k")
        with pytest.raises(ObjectNotFound):
            store.delete("b", "k")

    def test_list_keys_prefix(self, store):
        store.put("b", "models/a", b"")
        store.put("b", "models/b", b"")
        store.put("b", "data/c", b"")
        assert store.list_keys("b", "models/") == ["models/a", "models/b"]
        assert len(store.list_keys("b")) == 3

    def test_total_bytes(self, store):
        store.put("b1", "k", b"1234")
        store.put("b2", "k", b"56")
        assert store.total_bytes("b1") == 4
        assert store.total_bytes() == 6
