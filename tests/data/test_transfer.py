"""Unit tests for the transfer manager's bandwidth model."""

import pytest

from repro.auth.identity import IdentityStore
from repro.data.endpoint import Endpoint, EndpointACL, EndpointError
from repro.data.store import ObjectStore
from repro.data.transfer import TransferError, TransferManager
from repro.sim.clock import VirtualClock


@pytest.fixture
def env():
    ids = IdentityStore()
    ids.add_provider("globus")
    user = ids.register_identity("globus", "user")
    store = ObjectStore()
    clock = VirtualClock()
    src = Endpoint("laptop", store, EndpointACL(owner_id=user.identity_id), "wan")
    dst = Endpoint("dlhub", store, EndpointACL(owner_id=user.identity_id), "lan")
    return clock, TransferManager(clock), src, dst, user


class TestTransfer:
    def test_basic_transfer(self, env):
        clock, tm, src, dst, user = env
        src.put("weights.npz", b"w" * 1000, user)
        record = tm.transfer(src, dst, "weights.npz", user)
        assert dst.get("weights.npz", user).data == b"w" * 1000
        assert record.nbytes == 1000
        assert record.duration > 0

    def test_missing_source_raises(self, env):
        _, tm, src, dst, user = env
        with pytest.raises(TransferError):
            tm.transfer(src, dst, "ghost.bin", user)

    def test_permission_enforced(self, env):
        clock, tm, src, dst, user = env
        src.put("private.bin", b"x", user)
        with pytest.raises(EndpointError):
            tm.transfer(src, dst, "private.bin", identity=None)

    def test_wan_slower_than_lan(self, env):
        clock, tm, src, dst, user = env
        payload = b"x" * 10_000_000
        src.put("big.bin", payload, user)
        dst.put("big2.bin", payload, user)
        before = clock.now()
        tm.transfer(src, dst, "big.bin", user)  # wan-class source
        wan_time = clock.now() - before
        lan_src = Endpoint("cluster", src.store, src.acl, "lan")
        lan_src.put("big3.bin", payload, user)
        before = clock.now()
        tm.transfer(lan_src, dst, "big3.bin", user)
        lan_time = clock.now() - before
        assert wan_time > lan_time

    def test_larger_files_take_longer(self, env):
        clock, tm, src, dst, user = env
        src.put("small", b"x" * 1000, user)
        src.put("large", b"x" * 50_000_000, user)
        t0 = clock.now()
        tm.transfer(src, dst, "small", user)
        small_time = clock.now() - t0
        t0 = clock.now()
        tm.transfer(src, dst, "large", user)
        large_time = clock.now() - t0
        assert large_time > small_time

    def test_dest_path_rename(self, env):
        _, tm, src, dst, user = env
        src.put("a.bin", b"x", user)
        tm.transfer(src, dst, "a.bin", user, dest_path="staged/a.bin")
        assert dst.exists("staged/a.bin")

    def test_records_accumulate(self, env):
        _, tm, src, dst, user = env
        src.put("a", b"1", user)
        src.put("b", b"2", user)
        tm.transfer(src, dst, "a", user)
        tm.transfer(src, dst, "b", user)
        assert [r.path for r in tm.records] == ["a", "b"]


class TestBatchTransfer:
    def test_batch_moves_all(self, env):
        _, tm, src, dst, user = env
        for i in range(3):
            src.put(f"f{i}", bytes([i]), user)
        records = tm.transfer_many(src, dst, ["f0", "f1", "f2"], user)
        assert len(records) == 3
        assert all(dst.exists(f"f{i}") for i in range(3))

    def test_batch_amortizes_setup(self, env):
        """One batch of N files beats N separate transfers (single
        control-channel negotiation)."""
        clock, tm, src, dst, user = env
        paths = []
        for i in range(5):
            src.put(f"x{i}", b"d" * 100, user)
            paths.append(f"x{i}")
        t0 = clock.now()
        tm.transfer_many(src, dst, paths, user)
        batch_time = clock.now() - t0
        for i in range(5):
            src.put(f"y{i}", b"d" * 100, user)
        t0 = clock.now()
        for i in range(5):
            tm.transfer(src, dst, f"y{i}", user)
        serial_time = clock.now() - t0
        assert batch_time < serial_time

    def test_batch_empty(self, env):
        _, tm, src, dst, user = env
        assert tm.transfer_many(src, dst, [], user) == []

    def test_batch_missing_file_raises_before_moving(self, env):
        _, tm, src, dst, user = env
        src.put("ok", b"x", user)
        with pytest.raises(TransferError):
            tm.transfer_many(src, dst, ["ok", "ghost"], user)
