"""Unit tests for access-controlled endpoints."""

import pytest

from repro.auth.identity import IdentityStore
from repro.data.endpoint import Endpoint, EndpointACL, EndpointError
from repro.data.store import ObjectStore


@pytest.fixture
def env():
    ids = IdentityStore()
    ids.add_provider("globus")
    owner = ids.register_identity("globus", "owner")
    reader = ids.register_identity("globus", "reader")
    stranger = ids.register_identity("globus", "stranger")
    store = ObjectStore()
    endpoint = Endpoint(
        "lab-data",
        store,
        EndpointACL(owner_id=owner.identity_id, readers={reader.identity_id}),
    )
    return endpoint, owner, reader, stranger


class TestPermissions:
    def test_owner_can_write_and_read(self, env):
        endpoint, owner, _, _ = env
        endpoint.put("w.npz", b"data", owner)
        assert endpoint.get("w.npz", owner).data == b"data"

    def test_reader_can_read_not_write(self, env):
        endpoint, owner, reader, _ = env
        endpoint.put("w.npz", b"data", owner)
        assert endpoint.get("w.npz", reader).data == b"data"
        with pytest.raises(EndpointError):
            endpoint.put("other", b"x", reader)

    def test_stranger_denied(self, env):
        endpoint, owner, _, stranger = env
        endpoint.put("w.npz", b"data", owner)
        with pytest.raises(EndpointError):
            endpoint.get("w.npz", stranger)

    def test_anonymous_denied(self, env):
        endpoint, owner, _, _ = env
        endpoint.put("w.npz", b"data", owner)
        with pytest.raises(EndpointError):
            endpoint.get("w.npz", None)

    def test_public_read(self, env):
        endpoint, owner, _, stranger = env
        endpoint.acl = EndpointACL(owner_id=owner.identity_id, public_read=True)
        endpoint.put("w.npz", b"data", owner)
        assert endpoint.get("w.npz", stranger).data == b"data"
        assert endpoint.get("w.npz", None).data == b"data"

    def test_writer_grant(self, env):
        endpoint, owner, _, stranger = env
        endpoint.acl.writers.add(stranger.identity_id)
        endpoint.put("up.bin", b"x", stranger)
        assert endpoint.exists("up.bin")

    def test_listdir_requires_read(self, env):
        endpoint, owner, reader, stranger = env
        endpoint.put("a/1", b"", owner)
        endpoint.put("a/2", b"", owner)
        assert endpoint.listdir("a/", reader) == ["a/1", "a/2"]
        with pytest.raises(EndpointError):
            endpoint.listdir("a/", stranger)

    def test_exists_no_auth_needed(self, env):
        endpoint, owner, _, _ = env
        endpoint.put("x", b"", owner)
        assert endpoint.exists("x")
        assert not endpoint.exists("y")
