"""Unit tests for the baseline serving backends (TF Serving, SageMaker,
Clipper) — deployment rules, invocation costs, cache behaviour."""

import pytest

from repro.cluster.cluster import petrelkube
from repro.containers.registry import ContainerRegistry
from repro.serving.base import ModelSpec
from repro.serving.clipper import ClipperBackend
from repro.serving.sagemaker import SageMakerBackend
from repro.serving.tfserving import NotServableError, TFServingBackend
from repro.sim.clock import VirtualClock
from repro.sim.latency import NetworkLink


@pytest.fixture
def env():
    clock = VirtualClock()
    cluster = petrelkube(clock, ContainerRegistry())
    link = NetworkLink("tm<->k8s", rtt_s=0.00017, bandwidth_bps=4e9)
    return clock, cluster, link


def cifar_spec():
    return ModelSpec.from_calibration("cifar10", "cifar10", lambda x: [x, "cat"])


def python_fn_spec():
    return ModelSpec.from_calibration("featurize", "matminer_featurize", lambda x: x)


class TestTFServing:
    def test_deploy_and_invoke(self, env):
        clock, cluster, link = env
        backend = TFServingBackend(clock, cluster, link, "grpc")
        backend.deploy(cifar_spec(), replicas=2)
        result = backend.invoke("cifar10", "img")
        assert result.value == ["img", "cat"]
        assert result.invocation_time > result.inference_time > 0

    def test_rejects_non_tf_models(self, env):
        clock, cluster, link = env
        backend = TFServingBackend(clock, cluster, link)
        with pytest.raises(NotServableError):
            backend.deploy(python_fn_spec())

    def test_grpc_faster_than_rest(self, env):
        clock, cluster, link = env
        grpc = TFServingBackend(clock, cluster, link, "grpc")
        rest = TFServingBackend(clock, cluster, link, "rest")
        grpc.deploy(cifar_spec())
        rest.deploy(cifar_spec())
        t_grpc = grpc.invoke("cifar10", "x").invocation_time
        t_rest = rest.invoke("cifar10", "x").invocation_time
        assert t_grpc < t_rest

    def test_round_robin_across_replicas(self, env):
        clock, cluster, link = env
        backend = TFServingBackend(clock, cluster, link)
        service = backend.deploy(cifar_spec(), replicas=3)
        for _ in range(6):
            backend.invoke("cifar10", "x")
        served = [p.served for p in service.deployment.ready_pods()]
        assert served == [2, 2, 2]

    def test_unknown_model_invoke(self, env):
        clock, cluster, link = env
        backend = TFServingBackend(clock, cluster, link)
        with pytest.raises(KeyError):
            backend.invoke("ghost", "x")

    def test_undeploy(self, env):
        clock, cluster, link = env
        backend = TFServingBackend(clock, cluster, link)
        backend.deploy(cifar_spec())
        backend.undeploy("cifar10")
        assert backend.deployed_models() == []
        with pytest.raises(KeyError):
            backend.invoke("cifar10", "x")


class TestSageMaker:
    def test_flask_serves_any_model(self, env):
        clock, cluster, link = env
        backend = SageMakerBackend(clock, cluster, link, "flask")
        backend.deploy(python_fn_spec())
        assert backend.invoke("featurize", 7).value == 7

    def test_tfserving_mode_restricted(self, env):
        clock, cluster, link = env
        backend = SageMakerBackend(clock, cluster, link, "tfserving-grpc")
        with pytest.raises(NotServableError):
            backend.deploy(python_fn_spec())

    def test_flask_slowest_path(self, env):
        clock, cluster, link = env
        flask = SageMakerBackend(clock, cluster, link, "flask")
        tfs = SageMakerBackend(clock, cluster, link, "tfserving-grpc")
        flask.deploy(cifar_spec())
        tfs.deploy(cifar_spec())
        assert (
            tfs.invoke("cifar10", "x").invocation_time
            < flask.invoke("cifar10", "x").invocation_time
        )

    def test_invalid_mode(self, env):
        clock, cluster, link = env
        with pytest.raises(ValueError):
            SageMakerBackend(clock, cluster, link, "serverless")


class TestClipper:
    def test_memoization_hits(self, env):
        clock, cluster, link = env
        clipper = ClipperBackend(clock, cluster, link, memoization=True)
        clipper.deploy(cifar_spec())
        first = clipper.invoke("cifar10", "same-input")
        second = clipper.invoke("cifar10", "same-input")
        assert not first.cache_hit and second.cache_hit
        assert second.invocation_time < first.invocation_time
        assert clipper.cache_hits == 1

    def test_cache_hits_still_pay_cluster_trip(self, env):
        """The structural claim behind Fig. 8: Clipper's cached responses
        still cross the TM->cluster link to reach the query frontend."""
        clock, cluster, link = env
        clipper = ClipperBackend(clock, cluster, link, memoization=True)
        clipper.deploy(cifar_spec())
        clipper.invoke("cifar10", "x")
        hit = clipper.invoke("cifar10", "x")
        assert hit.invocation_time > link.rtt_s / 2  # at least one traversal

    def test_memoization_disabled(self, env):
        clock, cluster, link = env
        clipper = ClipperBackend(clock, cluster, link, memoization=False)
        clipper.deploy(cifar_spec())
        clipper.invoke("cifar10", "x")
        repeat = clipper.invoke("cifar10", "x")
        assert not repeat.cache_hit

    def test_clear_cache(self, env):
        clock, cluster, link = env
        clipper = ClipperBackend(clock, cluster, link, memoization=True)
        clipper.deploy(cifar_spec())
        clipper.invoke("cifar10", "x")
        clipper.clear_cache()
        assert not clipper.invoke("cifar10", "x").cache_hit

    def test_privileged_requirement(self, env):
        clock, cluster, link = env
        for node in cluster.nodes:
            node.runtime.privileged = False
        from repro.serving.clipper import PrivilegeError

        clipper = ClipperBackend(clock, cluster, link)
        with pytest.raises(PrivilegeError):
            clipper.deploy(cifar_spec())

    def test_distinct_namespaces_for_memo_variants(self, env):
        clock, cluster, link = env
        a = ClipperBackend(clock, cluster, link, memoization=True)
        b = ClipperBackend(clock, cluster, link, memoization=False)
        a.deploy(cifar_spec())
        b.deploy(cifar_spec())  # no deployment-name collision
        assert a.name != b.name
