"""Unit tests for wire-protocol cost profiles."""

import pytest

from repro.serving.protocols import FLASK_HTTP, GRPC, REST, profile


class TestProfiles:
    def test_grpc_cheapest(self):
        assert GRPC.per_request_s < REST.per_request_s < FLASK_HTTP.per_request_s

    def test_json_inflation(self):
        assert GRPC.payload_inflation == 1.0
        assert REST.payload_inflation > 1.0
        assert REST.wire_bytes(1000) == 1350
        assert GRPC.wire_bytes(1000) == 1000

    def test_lookup_by_name(self):
        assert profile("grpc") is GRPC
        assert profile("REST") is REST
        assert profile("Flask") is FLASK_HTTP

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            profile("carrier-pigeon")
