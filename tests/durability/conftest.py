"""Shared chaos-harness construction for the durability suite."""

from __future__ import annotations

import pytest

from repro.core.tasks import TaskRequest
from repro.core.testbed import build_testbed
from repro.core.zoo import build_zoo
from repro.durability import ChaosHarness
from repro.gateway import TenantPolicy, TenantPolicyTable


@pytest.fixture(scope="session")
def chaos_zoo():
    return build_zoo(oqmd_entries=50, n_estimators=4)


def build_chaos_harness(
    zoo,
    store,
    tenants=("alice", "bob"),
    n_workers=2,
    snapshot_every_records=256,
    max_batch_size=8,
    **harness_kwargs,
):
    """Testbed + two-tenant policy table + a ChaosHarness over ``store``.

    Returns ``(harness, tokens)`` with one bearer token per tenant.
    """
    testbed = build_testbed(jitter=False, memoize_tm=False)
    policies = TenantPolicyTable()
    tokens = {}
    for username in tenants:
        policy = TenantPolicy(name=username)
        policies.register(policy)
        identity, token = testbed.new_user(username)
        policies.bind_identity(identity, policy.name)
        tokens[username] = token
    workers = [testbed.add_fleet_worker(f"w{i}") for i in range(n_workers)]
    published = testbed.management.publish(testbed.token, zoo["noop"])
    harness = ChaosHarness(
        clock=testbed.clock,
        auth=testbed.auth,
        policies=policies,
        workers=workers,
        placements=[
            {
                "servable": zoo["noop"],
                "image": published.build.image,
                "copies": n_workers,
            }
        ],
        store=store,
        snapshot_every_records=snapshot_every_records,
        runtime_kwargs={
            "max_batch_size": max_batch_size,
            "max_coalesce_delay_s": 0.005,
        },
        **harness_kwargs,
    )
    return harness, tokens


def alternating_arrivals(tokens, n=30, rate_rps=200.0, servable="noop"):
    """An open-loop schedule alternating between the given tenants."""
    toks = list(tokens.values())
    return [
        (i / rate_rps, toks[i % len(toks)], TaskRequest(servable, args=(i,)))
        for i in range(n)
    ]
