"""Unit coverage for the durability building blocks: the record/body
codec, the :class:`Journal` write path (validate-before-persist,
baseline seeding, snapshot cadence), the :class:`FileDurableStore`
medium, and the queue's attach/dump/load surface."""

from __future__ import annotations

import json

import pytest

from repro.core.tasks import TaskRequest
from repro.durability import (
    FileDurableStore,
    InMemoryDurableStore,
    Journal,
    JournalCorruption,
    decode_body,
    encode_body,
    load_state,
)
from repro.durability.codec import decode_record, encode_record
from repro.messaging.queue import TaskQueue
from repro.sim.clock import VirtualClock


def fresh_queue(clock=None, **kwargs):
    kwargs.setdefault("visibility_timeout_s", 1e9)
    kwargs.setdefault("max_deliveries", 3)
    return TaskQueue(clock or VirtualClock(), **kwargs)


# -- codec --------------------------------------------------------------------
def test_record_codec_round_trips():
    line = encode_record(7, "put", {"message_id": 7, "nested": {"a": [1, 2]}})
    assert decode_record(line) == (7, "put", {"message_id": 7, "nested": {"a": [1, 2]}})


def test_record_codec_rejects_stale_crc():
    line = encode_record(7, "put", {"message_id": 7})
    doc = json.loads(line)
    doc["rec"][2]["message_id"] = 8
    tampered = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    with pytest.raises(JournalCorruption, match="crc mismatch"):
        decode_record(tampered)


def test_body_codec_round_trips_requests():
    request = TaskRequest("noop", args=(1, "x"), kwargs={"k": 2.5})
    decoded = decode_body(encode_body(request))
    assert decoded.servable_name == "noop"
    assert decoded.args == (1, "x")
    assert decoded.kwargs == {"k": 2.5}


def test_body_codec_strips_trace_context():
    # Traces can hold live (unpicklable) tracer internals; the codec
    # must drop them rather than fail — they are observability state.
    request = TaskRequest("noop", args=(1,))
    request.trace = object()  # not picklable
    decoded = decode_body(encode_body(request))
    assert decoded.trace is None
    assert request.trace is not None  # the caller's request is untouched


def test_corrupt_body_fails_loud():
    with pytest.raises(JournalCorruption, match="undecodable message body"):
        decode_body("definitely-not-base64-zlib-pickle")


# -- journal write path -------------------------------------------------------
def test_append_validates_before_persisting():
    store = InMemoryDurableStore()
    journal = Journal(store)
    with pytest.raises(JournalCorruption):
        journal.append("ack", {"delivery_tag": 99})  # no such delivery
    assert store.read_journal() == []  # the bad record never hit the medium


def test_seed_baseline_noops_on_fresh_counters():
    journal = Journal(InMemoryDurableStore())
    seq = journal.seed_baseline(
        total_enqueued=0,
        total_acked=0,
        total_redelivered=0,
        topic_enqueued={},
        next_message_id=1,
        next_tag=1,
    )
    assert seq is None
    assert journal.last_seq == 0


def test_seed_baseline_records_history_and_rejects_reuse():
    store = InMemoryDurableStore()
    journal = Journal(store)
    seq = journal.seed_baseline(
        total_enqueued=5,
        total_acked=3,
        total_redelivered=1,
        topic_enqueued={"t": 5},
        next_message_id=6,
        next_tag=4,
    )
    assert seq == 1
    state, _ = load_state(store)
    assert state.total_enqueued == 5
    assert state.next_message_id == 6
    with pytest.raises(ValueError, match="fresh journal"):
        journal.seed_baseline(
            total_enqueued=0,
            total_acked=0,
            total_redelivered=0,
            topic_enqueued={},
            next_message_id=1,
            next_tag=1,
        )


def test_snapshot_cadence_truncates_covered_records():
    store = InMemoryDurableStore()
    journal = Journal(store, snapshot_every_records=3)
    queue = fresh_queue()
    queue.attach_journal(journal)
    for i in range(7):
        queue.put(f"m{i}", topic="t")
    assert journal.snapshots_taken == 2  # after records 3 and 6
    assert store.snapshots == 2
    assert len(store.read_journal()) == 1  # only record 7 remains
    state, report = load_state(store)
    assert report.snapshot_used
    assert report.records_replayed == 1
    assert state.fingerprint(decode_body) == queue.dump_state()


def test_snapshot_cadence_must_be_positive():
    with pytest.raises(ValueError):
        Journal(InMemoryDurableStore(), snapshot_every_records=0)


# -- file store ---------------------------------------------------------------
def test_file_store_persists_across_instances(tmp_path):
    directory = str(tmp_path / "wal")
    store = FileDurableStore(directory)
    journal = Journal(store, snapshot_every_records=4)
    queue = fresh_queue()
    queue.attach_journal(journal)
    for i in range(6):
        queue.put(f"m{i}", topic="t")

    reopened = FileDurableStore(directory)
    assert reopened.read_journal() == store.read_journal()
    assert reopened.read_snapshot() == store.read_snapshot()
    state, report = load_state(reopened)
    assert report.snapshot_used
    assert state.fingerprint(decode_body) == queue.dump_state()


def test_file_store_empty_directory_reads_clean(tmp_path):
    store = FileDurableStore(str(tmp_path / "wal"))
    assert store.read_journal() == []
    assert store.read_snapshot() is None


# -- queue attach/dump/load surface -------------------------------------------
def test_attach_journal_rejects_double_attach():
    queue = fresh_queue()
    queue.attach_journal(Journal(InMemoryDurableStore()))
    with pytest.raises(ValueError, match="already has a journal"):
        queue.attach_journal(Journal(InMemoryDurableStore()))


def test_attach_journal_bootstrap_rejects_nonempty_queue():
    queue = fresh_queue()
    queue.put("m", topic="t")
    with pytest.raises(ValueError, match="no messages"):
        queue.attach_journal(Journal(InMemoryDurableStore()))


def test_dump_load_round_trip():
    clock = VirtualClock()
    queue = fresh_queue(clock)
    for i in range(5):
        clock.advance(0.5)
        queue.put(f"m{i}", topic="t")
    queue.ack(queue.claim("t").delivery_tag)
    for _ in range(3):  # burn the delivery budget -> dead letter
        queue.nack(queue.claim("t").delivery_tag, requeue=True)
    dump = queue.dump_state()
    assert dump["inflight"] == []  # nothing claimed at dump time

    restored = fresh_queue(clock)
    restored.load_state(dump)
    assert restored.dump_state() == dump
    assert restored.ready_count("t") == queue.ready_count("t")
    assert [m.body for m in restored.dead_letters] == [
        m.body for m in queue.dead_letters
    ]


def test_load_state_requires_fresh_queue():
    queue = fresh_queue()
    queue.put("m", topic="t")
    with pytest.raises(ValueError, match="fresh queue"):
        queue.load_state(
            {
                "ready": {},
                "dead": [],
                "total_enqueued": 0,
                "total_acked": 0,
                "total_redelivered": 0,
                "topic_enqueued": {},
                "next_message_id": 1,
                "next_tag": 1,
            }
        )
