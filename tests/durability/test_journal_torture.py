"""Journal torture: feed recovery every corruption a crash (or a bad
disk) can produce and assert it either recovers exactly or fails
loudly — never silently serves from a wrong state.

Tolerated (recover + flag): a torn final line, a byte-identical
duplicate record, a snapshot/journal seam overlap. Fatal
(:class:`JournalCorruption`): mid-journal garbage, a CRC/content
mismatch, a sequence gap, two different records claiming one sequence,
an unparseable snapshot document.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.durability import (
    CrashPlan,
    FaultInjector,
    FileDurableStore,
    Journal,
    JournalCorruption,
    SimulatedCrash,
    begin_recovery,
    decode_body,
    load_state,
)
from repro.durability.codec import decode_record, encode_record
from repro.messaging.queue import TaskQueue
from repro.sim.clock import VirtualClock


def seeded_store(tmp_path, n_puts=8, snapshot_every=10**9):
    """A file store holding real traffic: puts, one claim/ack, one nack."""
    clock = VirtualClock()
    store = FileDurableStore(str(tmp_path / "wal"))
    journal = Journal(store, snapshot_every_records=snapshot_every)
    queue = TaskQueue(clock, visibility_timeout_s=1e9, max_deliveries=3)
    queue.attach_journal(journal)
    for i in range(n_puts):
        clock.advance(0.01)
        queue.put(f"m{i}", topic="t")
    queue.ack(queue.claim("t").delivery_tag)
    queue.nack(queue.claim("t").delivery_tag, requeue=True)
    return store, journal, queue


def journal_path(store):
    return os.path.join(store.directory, FileDurableStore.JOURNAL)


def read_lines(store):
    with open(journal_path(store), encoding="utf-8") as fh:
        return fh.read().splitlines()


def write_lines(store, lines, *, trailing_newline=True):
    text = "\n".join(lines) + ("\n" if trailing_newline else "")
    with open(journal_path(store), "w", encoding="utf-8") as fh:
        fh.write(text)


def test_torn_tail_is_tolerated_flagged_and_repaired(tmp_path):
    store, journal, queue = seeded_store(tmp_path)
    with open(journal_path(store), "a", encoding="utf-8") as fh:
        fh.write('{"crc": 123, "rec": [99, "pu')  # torn mid-write, no newline

    state, report = load_state(store)
    assert report.truncated_tail
    assert report.records_replayed == journal.last_seq
    assert state.fingerprint(decode_body) == queue.dump_state()

    # begin_recovery repairs the tear by snapshotting: the snapshot
    # covers every applied record and truncation drops the garbage.
    _, _, report2 = begin_recovery(store, max_deliveries=3)
    state3, report3 = load_state(store)
    assert report2.truncated_tail  # surfaced, not hidden
    assert not report3.truncated_tail
    assert report3.snapshot_used
    assert state3.fingerprint(decode_body) == queue.dump_state()


def test_mid_journal_garbage_fails_loud(tmp_path):
    store, _, _ = seeded_store(tmp_path)
    lines = read_lines(store)
    lines[len(lines) // 2] = "not a journal record"
    write_lines(store, lines)
    with pytest.raises(JournalCorruption, match="unparseable journal line"):
        load_state(store)


def test_content_tamper_fails_crc(tmp_path):
    store, _, _ = seeded_store(tmp_path)
    lines = read_lines(store)
    victim = json.loads(lines[2])
    victim["rec"][2]["topic"] = "hijacked"  # re-point a put, keep old CRC
    lines[2] = json.dumps(victim, sort_keys=True, separators=(",", ":"))
    write_lines(store, lines)
    with pytest.raises(JournalCorruption, match="crc mismatch"):
        load_state(store)


def test_identical_duplicate_is_skipped_and_counted(tmp_path):
    store, _, queue = seeded_store(tmp_path)
    lines = read_lines(store)
    lines.insert(4, lines[3])  # a retried append: same bytes, same seq
    write_lines(store, lines)
    state, report = load_state(store)
    assert report.duplicates_skipped == 1
    assert state.fingerprint(decode_body) == queue.dump_state()


def test_conflicting_duplicate_fails_loud(tmp_path):
    store, _, _ = seeded_store(tmp_path)
    lines = read_lines(store)
    seq, _, _ = decode_record(lines[3])
    # A *valid* record (correct CRC) that disagrees with seq's history.
    lines.insert(4, encode_record(seq, "settle", {"task_uuid": "task-evil"}))
    write_lines(store, lines)
    with pytest.raises(JournalCorruption, match="conflicting duplicate"):
        load_state(store)


def test_sequence_gap_fails_loud(tmp_path):
    store, _, _ = seeded_store(tmp_path)
    lines = read_lines(store)
    del lines[len(lines) // 2]
    write_lines(store, lines)
    with pytest.raises(JournalCorruption, match="journal gap"):
        load_state(store)


def test_unparseable_snapshot_fails_loud(tmp_path):
    store, journal, _ = seeded_store(tmp_path)
    journal.snapshot_now()
    snap = os.path.join(store.directory, FileDurableStore.SNAPSHOT)
    with open(snap, "w", encoding="utf-8") as fh:
        fh.write('{"v": 1, "messages": [truncated')
    with pytest.raises(JournalCorruption, match="unparseable snapshot"):
        load_state(store)


def test_seam_overlap_is_deduped_by_sequence(tmp_path):
    """A crash between the snapshot write and the journal truncation
    leaves every record both inside the snapshot and on the journal;
    replay must skip the covered tail, not double-apply it."""
    store, journal, queue = seeded_store(tmp_path)
    injector = FaultInjector()
    injector.plan(CrashPlan("mid_snapshot", after_trips=1))
    injector.arm_next()
    doc = json.dumps(
        journal.state.to_doc(), sort_keys=True, separators=(",", ":")
    )
    with pytest.raises(SimulatedCrash):
        store.write_snapshot(doc, journal.last_seq, chaos=injector)

    n_lines = len(read_lines(store))
    assert n_lines == journal.last_seq  # truncation never ran
    state, report = load_state(store)
    assert report.snapshot_used
    assert report.seam_overlap == n_lines
    assert report.records_replayed == 0
    assert state.fingerprint(decode_body) == queue.dump_state()


def test_lost_snapshot_after_truncation_fails_loud(tmp_path):
    """Once a snapshot has truncated the journal, losing the snapshot
    file leaves a tail that starts past seq 1 — recovery must refuse
    it (as a sequence gap), never replay the tail against empty state."""
    store, journal, _ = seeded_store(tmp_path, snapshot_every=5)
    assert journal.snapshots_taken > 0
    assert read_lines(store)  # some records survived the truncation
    first_seq, _, _ = decode_record(read_lines(store)[0])
    assert first_seq > 1  # the snapshot really truncated a prefix
    os.remove(os.path.join(store.directory, FileDurableStore.SNAPSHOT))
    with pytest.raises(JournalCorruption, match="journal gap"):
        load_state(store)
