"""Durability layer tests: WAL, snapshots, recovery, chaos."""
