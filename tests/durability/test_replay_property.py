"""Replay-equivalence property: for ANY randomized interleaving of
queue operations, crashing at ANY journal offset and folding the
persisted prefix reconstructs exactly the state a never-crashed queue
held at that offset.

The probe is :meth:`SystemState.fingerprint` (the fold's view) against
:meth:`TaskQueue.dump_state` (the live queue's view), captured after
every operation. One journal record per public operation means offset
``k`` *is* the state after operation ``k`` — no sub-operation crash
window exists by construction.
"""

from __future__ import annotations

import pytest

from repro.durability import (
    InMemoryDurableStore,
    Journal,
    decode_body,
    load_state,
)
from repro.messaging.queue import QueueEmpty, TaskQueue
from repro.sim.clock import VirtualClock
from repro.sim.rng import generator_from_seed

TOPICS = ("servable/requests/alpha", "servable/tenant-t1/alpha", "beta")


def random_walk(seed: int, n_ops: int, journal: Journal, queue: TaskQueue, clock):
    """Drive ``queue`` through ``n_ops`` random operations, returning
    ``{journal_offset: dump_state}`` captured after each journaled op."""
    rng = generator_from_seed(seed)
    withdrawn_held = []
    dumps = {journal.last_seq: queue.dump_state()}
    body_i = 0
    for _ in range(n_ops):
        op = rng.choice(
            ["put", "claim", "claim_many", "ack", "nack", "withdraw", "restore"],
            p=[0.34, 0.14, 0.08, 0.16, 0.12, 0.08, 0.08],
        )
        if rng.random() < 0.3:
            clock.advance(float(rng.integers(1, 50)) / 1000.0)
        try:
            if op == "put":
                body_i += 1
                queue.put(
                    f"body-{seed}-{body_i}",
                    topic=TOPICS[int(rng.integers(len(TOPICS)))],
                )
            elif op == "claim":
                queue.claim(TOPICS[int(rng.integers(len(TOPICS)))])
            elif op == "claim_many":
                queue.claim_many(
                    TOPICS[int(rng.integers(len(TOPICS)))],
                    int(rng.integers(1, 5)),
                )
            elif op == "ack":
                tags = sorted(queue._inflight)
                if not tags:
                    continue
                queue.ack(tags[int(rng.integers(len(tags)))])
            elif op == "nack":
                tags = sorted(queue._inflight)
                if not tags:
                    continue
                queue.nack(
                    tags[int(rng.integers(len(tags)))],
                    requeue=bool(rng.random() < 0.8),
                )
            elif op == "withdraw":
                got = queue.withdraw_newest(
                    TOPICS[int(rng.integers(len(TOPICS)))],
                    int(rng.integers(1, 4)),
                )
                withdrawn_held.extend(got)
                if not got:
                    continue  # nothing journaled, no new offset
            elif op == "restore":
                if not withdrawn_held:
                    continue
                queue.restore(
                    withdrawn_held.pop(int(rng.integers(len(withdrawn_held))))
                )
        except QueueEmpty:
            continue
        dumps[journal.last_seq] = queue.dump_state()
    return dumps


def build_walk(seed: int, n_ops: int = 120, snapshot_every: int = 10**9):
    clock = VirtualClock()
    store = InMemoryDurableStore()
    journal = Journal(store, snapshot_every_records=snapshot_every)
    queue = TaskQueue(clock, visibility_timeout_s=1e9, max_deliveries=3)
    queue.attach_journal(journal)
    dumps = random_walk(seed, n_ops, journal, queue, clock)
    return store, journal, queue, dumps


@pytest.mark.parametrize("seed", [7, 23, 1019])
class TestReplayEquivalence:
    def test_shadow_fold_tracks_live_queue_exactly(self, seed):
        _, journal, queue, dumps = build_walk(seed)
        assert journal.state.fingerprint(decode_body) == queue.dump_state()
        assert journal.last_seq in dumps

    def test_crash_at_every_journal_offset_replays_the_exact_state(self, seed):
        store, journal, queue, dumps = build_walk(seed)
        lines = store.read_journal()
        assert len(lines) == journal.last_seq  # no snapshot: every record kept
        for offset in range(len(lines) + 1):
            truncated = InMemoryDurableStore()
            for i, line in enumerate(lines[:offset]):
                truncated.append(i + 1, line)
            state, report = load_state(truncated)
            assert not report.truncated_tail
            assert report.records_replayed == offset
            assert state.fingerprint(decode_body) == dumps[offset], (
                f"seed={seed} offset={offset}"
            )

    def test_snapshot_cadence_changes_nothing(self, seed):
        _, journal_a, queue_a, _ = build_walk(seed)
        store_b, journal_b, queue_b, _ = build_walk(seed, snapshot_every=7)
        assert journal_b.snapshots_taken > 0
        assert queue_b.dump_state() == queue_a.dump_state()
        state, report = load_state(store_b)
        assert report.snapshot_used
        assert state.fingerprint(decode_body) == queue_a.dump_state()

    def test_settled_and_open_survive_replay(self, seed):
        store, journal, _, _ = build_walk(seed, n_ops=40)
        journal.append(
            "admit",
            {
                "task_uuid": "task-x",
                "tenant": "t1",
                "servable": "alpha",
                "arrived_at": 1.25,
                "weight": 2.0,
                "body": journal.encode_body("req-x"),
            },
        )
        journal.append("settle", {"task_uuid": "task-x"})
        state, _ = load_state(store)
        assert state.settled == {"task-x": True}
        assert state.open == {}
