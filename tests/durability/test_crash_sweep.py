"""Crash-at-every-boundary sweep: kill the serving stack at each named
injection point, recover, and assert the durability invariants —
exactly-once settlement, a balanced admission ledger, and no double WFQ
charge across the crash."""

from __future__ import annotations

import pytest

from repro.durability import (
    INJECTION_POINTS,
    CrashPlan,
    FileDurableStore,
    InMemoryDurableStore,
)

from .conftest import alternating_arrivals, build_chaos_harness

N_ARRIVALS = 30


def run_sweep_point(zoo, store, point, snapshot_every=256, after_trips=3):
    harness, tokens = build_chaos_harness(
        zoo, store, snapshot_every_records=snapshot_every
    )
    arrivals = alternating_arrivals(tokens, n=N_ARRIVALS)
    outcome = harness.run(
        arrivals, plans=(CrashPlan(point, after_trips=after_trips),)
    )
    return harness, outcome


def assert_invariants(harness, outcome, point):
    # The crash actually fired, at the requested boundary.
    assert [c.point for c in outcome.crashes] == [point]
    assert harness.incarnations == 2

    # Exactly-once settlement: every admitted request settled in
    # precisely one incarnation; none twice, none lost.
    assert outcome.duplicates == []
    assert outcome.exactly_once
    assert len(outcome.settled) + len(outcome.denied) == N_ARRIVALS

    # The admission ledger balanced back to zero: every restored charge
    # (and every live one) was released by exactly one settlement.
    admission = harness.gateway.admission
    for result in outcome.settled.values():
        tenant = result.request.tenant
        assert admission.in_flight(tenant) == 0
        assert admission.in_flight(tenant, "noop") == 0

    # No double WFQ charge: in the post-crash incarnation, lane charges
    # are exactly one per lane entry — restored-to-queue requests never
    # touch the scheduler, restored-to-lane requests and fresh
    # admissions charge once each.
    recovery = outcome.recoveries[0]
    admits_before_crash = (
        recovery["open_at_recovery"] + recovery["settled_at_recovery"]
    )
    admits_after_crash = len(outcome.admitted) - admits_before_crash
    lane_restored = recovery["restored_open"] - recovery["restored_in_queue"]
    total_charges = sum(
        harness.gateway.scheduler.charge_count(t) for t in ("alice", "bob")
    )
    assert total_charges == lane_restored + admits_after_crash

    # Recovery restored every unsettled admission exactly once.
    assert recovery["restored_open"] == recovery["open_at_recovery"] - len(
        recovery["dead_open"]
    )


@pytest.mark.parametrize(
    "point", [p for p in INJECTION_POINTS if p != "mid_snapshot"]
)
def test_crash_and_recover_at_boundary(chaos_zoo, point):
    harness, outcome = run_sweep_point(chaos_zoo, InMemoryDurableStore(), point)
    assert_invariants(harness, outcome, point)


def test_crash_mid_snapshot_dedupes_the_seam(chaos_zoo, tmp_path):
    # A small cadence forces a snapshot mid-run; the crash lands between
    # the snapshot write and the journal truncation, so recovery sees
    # the seam overlap and must dedupe it by sequence number.
    harness, outcome = run_sweep_point(
        chaos_zoo,
        FileDurableStore(str(tmp_path / "wal")),
        "mid_snapshot",
        snapshot_every=20,
        after_trips=1,
    )
    assert_invariants(harness, outcome, "mid_snapshot")
    recovery = outcome.recoveries[0]
    assert recovery["snapshot_used"]
    assert recovery["seam_overlap"] > 0


def test_serial_crashes_across_multiple_points(chaos_zoo):
    """Several crashes in one run — one per incarnation, in plan order."""
    harness, tokens = build_chaos_harness(chaos_zoo, InMemoryDurableStore())
    arrivals = alternating_arrivals(tokens, n=N_ARRIVALS)
    plans = (
        CrashPlan("post_admission", after_trips=4),
        CrashPlan("post_claim", after_trips=2),
        CrashPlan("mid_batch", after_trips=1),
    )
    outcome = harness.run(arrivals, plans=plans)
    assert [c.point for c in outcome.crashes] == [p.point for p in plans]
    assert harness.incarnations == 4
    assert outcome.exactly_once
    assert len(outcome.settled) + len(outcome.denied) == N_ARRIVALS
    assert len(outcome.recoveries) == 3


def test_file_store_round_trips_the_same_run(chaos_zoo, tmp_path):
    """The file-backed store recovers identically to the in-memory one."""
    results = {}
    for label, store in [
        ("mem", InMemoryDurableStore()),
        ("file", FileDurableStore(str(tmp_path / "wal"))),
    ]:
        harness, outcome = run_sweep_point(chaos_zoo, store, "mid_batch")
        assert_invariants(harness, outcome, "mid_batch")
        # Task uuids are process-global, so key on each request's args
        # (the arrival index) rather than the uuid.
        results[label] = {
            r.request.args[0]: round(r.latency, 9)
            for r in outcome.settled.values()
        }
    assert results["mem"] == results["file"]


def test_unarmed_injector_is_a_pure_counter(chaos_zoo):
    """With no crash plans the chaos run completes like a normal serve
    (and the injection points count visits without firing)."""
    harness, tokens = build_chaos_harness(chaos_zoo, InMemoryDurableStore())
    outcome = harness.run(alternating_arrivals(tokens, n=10))
    assert outcome.crashes == []
    assert harness.incarnations == 1
    assert outcome.exactly_once
    assert harness.injector.trip_counts["post_admission"] >= 10
    assert harness.injector.crashes_fired == 0
