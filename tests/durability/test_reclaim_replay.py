"""Regression: visibility-timeout reclaim vs journal replay.

A delivery claimed before a crash is re-released by the journal replay
(the ``recover`` record). The visibility-timeout reclaim pass must not
release it a *second* time after restart — each delivery id is released
by exactly one mechanism. The recovered queue materializes with an
empty in-flight table, so :meth:`TaskQueue.expire_inflight` has nothing
to reclaim no matter how much downtime elapsed.
"""

from __future__ import annotations

from repro.durability import (
    InMemoryDurableStore,
    Journal,
    begin_recovery,
    materialize_queue,
)
from repro.messaging.queue import TaskQueue
from repro.sim.clock import VirtualClock


def build_queue(clock, store, *, visibility_timeout_s=5.0, max_deliveries=3):
    queue = TaskQueue(
        clock,
        visibility_timeout_s=visibility_timeout_s,
        max_deliveries=max_deliveries,
    )
    queue.attach_journal(Journal(store))
    return queue


def test_replayed_release_is_idempotent_with_visibility_reclaim():
    clock = VirtualClock()
    store = InMemoryDurableStore()
    queue = build_queue(clock, store)
    queue.put("payload", topic="t")
    claimed = queue.claim("t")
    assert claimed.deliveries == 1

    # Crash: the queue object dies; the store and the clock survive.
    # Downtime far exceeds the visibility timeout, so a naive restart
    # would *also* reclaim the delivery the replay already released.
    del queue
    clock.advance(60.0)

    state, _journal, report = begin_recovery(store, max_deliveries=3)
    assert report.released == 1
    recovered = materialize_queue(
        state, clock, visibility_timeout_s=5.0, max_deliveries=3
    )

    # The reclaim pass finds a clean in-flight table — zero re-releases.
    assert recovered.expire_inflight() == 0
    assert recovered.ready_count("t") == 1
    assert len(recovered) == 1

    # Exactly one copy, carrying the crashed delivery's attempt count.
    msg = recovered.claim("t")
    assert msg.body == "payload"
    assert msg.deliveries == 2
    assert recovered.ready_count("t") == 0
    assert recovered.inflight_count == 1
    assert recovered.dump_state()["total_redelivered"] == 1


def test_recovery_honours_the_delivery_budget():
    """A claim that already burned ``max_deliveries`` attempts is
    dead-lettered by recovery, exactly as a live nack would do —
    never silently re-released for a fourth attempt."""
    clock = VirtualClock()
    store = InMemoryDurableStore()
    queue = build_queue(clock, store)
    queue.put("payload", topic="t")
    for _ in range(2):
        msg = queue.claim("t")
        queue.nack(msg.delivery_tag, requeue=True)
    final = queue.claim("t")
    assert final.deliveries == 3  # budget exhausted mid-flight

    del queue
    clock.advance(60.0)

    state, _journal, report = begin_recovery(store, max_deliveries=3)
    assert report.released == 0
    assert report.dead_lettered == 1
    recovered = materialize_queue(
        state, clock, visibility_timeout_s=5.0, max_deliveries=3
    )
    assert recovered.expire_inflight() == 0
    assert recovered.ready_count("t") == 0
    assert [m.body for m in recovered.dead_letters] == ["payload"]
