"""Unit tests for AppFutures and the DataFlowKernel driving them."""

import pytest

from repro.parsl.dfk import DataFlowKernel
from repro.parsl.futures import FutureError


@pytest.fixture
def dfk():
    return DataFlowKernel()


class TestFutureLifecycle:
    def test_result_forces_execution(self, dfk):
        future = dfk.submit(lambda: 42)
        assert not future.done()
        assert future.result() == 42
        assert future.done()
        assert future.state == "done"

    def test_result_idempotent(self, dfk):
        calls = []
        future = dfk.submit(lambda: calls.append(1) or "x")
        assert future.result() == "x"
        assert future.result() == "x"
        assert len(calls) == 1

    def test_exception_captured(self, dfk):
        def boom():
            raise ValueError("kapow")

        future = dfk.submit(boom)
        with pytest.raises(FutureError, match="kapow"):
            future.result()
        assert future.state == "failed"
        assert isinstance(future.exception(), ValueError)

    def test_exception_none_on_success(self, dfk):
        future = dfk.submit(lambda: 1)
        assert future.exception() is None

    def test_done_callback_after_completion(self, dfk):
        events = []
        future = dfk.submit(lambda: "v")
        future.add_done_callback(lambda f: events.append(f.state))
        future.result()
        assert events == ["done"]

    def test_done_callback_immediate_if_done(self, dfk):
        future = dfk.submit(lambda: "v")
        future.result()
        events = []
        future.add_done_callback(lambda f: events.append(1))
        assert events == [1]


class TestDependencies:
    def test_future_args_resolved(self, dfk):
        a = dfk.submit(lambda: 3)
        b = dfk.submit(lambda x, y: x + y, (a, 4))
        assert b.result() == 7
        assert a.done()  # dependency was forced

    def test_future_kwargs_resolved(self, dfk):
        a = dfk.submit(lambda: 10)
        b = dfk.submit(lambda x=0: x * 2, (), {"x": a})
        assert b.result() == 20

    def test_chain_of_dependencies(self, dfk):
        f = dfk.submit(lambda: 1)
        for _ in range(5):
            f = dfk.submit(lambda x: x + 1, (f,))
        assert f.result() == 6

    def test_diamond_dependency_runs_once(self, dfk):
        calls = []

        def source():
            calls.append(1)
            return 5

        a = dfk.submit(source)
        left = dfk.submit(lambda x: x + 1, (a,))
        right = dfk.submit(lambda x: x * 2, (a,))
        total = dfk.submit(lambda a, b: a + b, (left, right))
        assert total.result() == 16
        assert len(calls) == 1

    def test_failed_dependency_propagates(self, dfk):
        def boom():
            raise RuntimeError("upstream")

        a = dfk.submit(boom)
        b = dfk.submit(lambda x: x, (a,))
        with pytest.raises(FutureError):
            b.result()
