"""Unit tests for the IPP engine pool (load balancing, busy-until)."""

import pytest

from repro.cluster.cluster import KubernetesCluster
from repro.containers.image import Image, Layer
from repro.containers.registry import ContainerRegistry
from repro.parsl.ipp import IPPEnginePool, NoEnginesError
from repro.sim.clock import VirtualClock


@pytest.fixture
def env():
    clock = VirtualClock()
    registry = ContainerRegistry()
    image = Image(
        repository="m", tag="v", layers=[Layer("l")], handler=lambda x=0: x + 1
    )
    registry.push(image)
    cluster = KubernetesCluster(name="t", clock=clock, registry=registry)
    cluster.add_node("n0", 64000, 2**42)
    deployment = cluster.create_deployment("m", image, replicas=4)
    pool = IPPEnginePool(clock, deployment.ready_pods(), dispatch_cost_s=0.002)
    return clock, pool, deployment


class TestDispatch:
    def test_executes_on_pod(self, env):
        clock, pool, _ = env
        result, pod = pool.dispatch_to_pod((41,), exec_cost_s=0.01)
        assert result == 42
        assert pod.busy_until > 0

    def test_dispatch_cost_charged(self, env):
        clock, pool, _ = env
        t0 = clock.now()
        pool.dispatch_to_pod((1,))
        assert clock.now() - t0 == pytest.approx(0.002)

    def test_least_busy_selection(self, env):
        clock, pool, _ = env
        # 8 tasks across 4 engines: each engine gets exactly 2.
        for _ in range(8):
            pool.dispatch_to_pod((0,), exec_cost_s=1.0)
        tasks = [s.tasks for s in pool.stats()]
        assert tasks == [2, 2, 2, 2]

    def test_busy_windows_queue(self, env):
        clock, pool, _ = env
        # One engine, three sequential tasks: busy_until stacks.
        pool.set_pods(pool.pods[:1])
        for _ in range(3):
            pool.dispatch_to_pod((0,), exec_cost_s=1.0)
        assert pool.pods[0].busy_until >= 3.0

    def test_collect_cost(self, env):
        clock, pool, _ = env
        t0 = clock.now()
        pool.collect()
        assert clock.now() > t0

    def test_no_engines_raises(self, env):
        clock, pool, _ = env
        pool.set_pods([])
        with pytest.raises(NoEnginesError):
            pool.dispatch_to_pod((1,))

    def test_failed_pods_skipped(self, env):
        clock, pool, deployment = env
        for pod in deployment.ready_pods()[:3]:
            pod.fail()
        result, pod = pool.dispatch_to_pod((1,))
        assert pod.ready

    def test_select_does_not_charge(self, env):
        clock, pool, _ = env
        t0 = clock.now()
        pool.select()
        assert clock.now() == t0


class TestDrain:
    def test_drain_jumps_to_last_completion(self, env):
        clock, pool, _ = env
        t0 = clock.now()
        for _ in range(8):
            pool.dispatch_to_pod((0,), exec_cost_s=5.0)
        pool.drain()
        # 2 tasks per engine at 5s each; dispatch was 8*2ms.
        assert clock.now() - t0 == pytest.approx(10.0, abs=0.2)

    def test_drain_noop_when_idle(self, env):
        clock, pool, _ = env
        t0 = clock.now()
        assert pool.drain() == t0

    def test_throughput_scales_then_saturates(self, env):
        """The Fig. 7 mechanism in miniature: adding engines helps until
        the serial dispatch cost dominates."""
        clock, pool, deployment = env

        def makespan_with(replicas, n_tasks=200, exec_cost=0.02):
            deployment.scale(replicas)
            pool.set_pods(deployment.ready_pods())
            for pod in pool.pods:
                pod.busy_until = clock.now()
            t0 = clock.now()
            for _ in range(n_tasks):
                pool.dispatch_to_pod((0,), exec_cost_s=exec_cost)
            pool.drain()
            return clock.now() - t0

        t1 = makespan_with(1)
        t5 = makespan_with(5)
        t20 = makespan_with(20)
        t40 = makespan_with(40)
        assert t5 < t1 / 3  # near-linear early scaling
        assert t40 > t20 * 0.9  # saturation: dispatch-bound floor
