"""Unit tests for the DataFlowKernel: routing, memoization, apps."""

import pytest

from repro.parsl.app import python_app
from repro.parsl.dfk import DataFlowKernel, DFKError
from repro.parsl.executors import LocalExecutor
from repro.sim.clock import VirtualClock


@pytest.fixture
def dfk():
    return DataFlowKernel(VirtualClock())


class TestRouting:
    def test_default_executor_is_local(self, dfk):
        assert dfk.submit(lambda: "ok").result() == "ok"

    def test_unknown_executor_rejected(self, dfk):
        with pytest.raises(DFKError):
            dfk.submit(lambda: 1, executor="gpu-farm")

    def test_add_executor_and_route(self, dfk):
        extra = LocalExecutor(dfk.clock)
        dfk.add_executor("extra", extra)
        dfk.submit(lambda: 1, executor="extra").result()
        assert extra.tasks_run == 1

    def test_duplicate_executor_rejected(self, dfk):
        with pytest.raises(DFKError):
            dfk.add_executor("local", LocalExecutor(dfk.clock))

    def test_exec_cost_charged(self, dfk):
        before = dfk.clock.now()
        dfk.submit(lambda: 1, exec_cost_s=0.5).result()
        assert dfk.clock.now() - before >= 0.5

    def test_run_all(self, dfk):
        futures = [dfk.submit(lambda i=i: i) for i in range(5)]
        dfk.run_all()
        assert all(f.done() for f in futures)
        assert [f.result() for f in futures] == list(range(5))


class TestMemoization:
    def test_cache_hits_for_identical_calls(self, dfk):
        calls = []

        def expensive(x):
            calls.append(x)
            return x * 2

        a = dfk.submit(expensive, (3,), cache=True)
        b = dfk.submit(expensive, (3,), cache=True)
        assert a.result() == b.result() == 6
        assert len(calls) == 1
        assert dfk.memo_hits == 1 and dfk.memo_misses == 1

    def test_different_args_miss(self, dfk):
        def f(x):
            return x
        dfk.submit(f, (1,), cache=True).result()
        dfk.submit(f, (2,), cache=True).result()
        assert dfk.memo_hits == 0

    def test_no_cache_by_default(self, dfk):
        calls = []
        def f():
            calls.append(1)
        dfk.submit(f).result()
        dfk.submit(f).result()
        assert len(calls) == 2

    def test_clear_memo(self, dfk):
        calls = []

        def g(x):
            calls.append(x)
            return x

        dfk.submit(g, (1,), cache=True).result()
        dfk.clear_memo()
        dfk.submit(g, (1,), cache=True).result()
        assert len(calls) == 2


class TestPythonApp:
    def test_decorator_with_dfk(self, dfk):
        @python_app(dfk=dfk)
        def double(x):
            return x * 2

        assert double(5).result() == 10

    def test_decorator_without_kernel_raises(self):
        @python_app
        def orphan():
            return 1

        with pytest.raises(RuntimeError):
            orphan()

    def test_late_kernel_binding(self, dfk):
        @python_app
        def late():
            return "bound"

        late.dfk = dfk
        assert late().result() == "bound"

    def test_app_futures_compose(self, dfk):
        @python_app(dfk=dfk)
        def add(a, b):
            return a + b

        total = add(add(1, 2), add(3, 4))
        assert total.result() == 10

    def test_app_cache_flag(self, dfk):
        calls = []

        @python_app(dfk=dfk, cache=True)
        def cached(x):
            calls.append(x)
            return x

        cached(1).result()
        cached(1).result()
        assert len(calls) == 1

    def test_wrapped_preserved(self, dfk):
        @python_app(dfk=dfk)
        def documented():
            """Docstring survives."""

        assert documented.__wrapped__.__doc__ == "Docstring survives."
