"""Unit tests for Parsl executors (local + cluster-backed)."""

import pytest

from repro.cluster.cluster import KubernetesCluster
from repro.containers.image import Image, Layer
from repro.containers.registry import ContainerRegistry
from repro.parsl.dfk import DataFlowKernel
from repro.parsl.executors import ClusterExecutor, LocalExecutor
from repro.sim.clock import VirtualClock


class TestLocalExecutor:
    def test_runs_in_process(self):
        clock = VirtualClock()
        executor = LocalExecutor(clock)
        assert executor.execute(lambda a, b: a + b, (1, 2), {}) == 3
        assert executor.tasks_run == 1

    def test_charges_overhead_and_cost(self):
        clock = VirtualClock()
        executor = LocalExecutor(clock, overhead_s=0.001)
        executor.execute(lambda: None, (), {}, exec_cost_s=0.5)
        assert clock.now() == pytest.approx(0.501)

    def test_exceptions_propagate(self):
        executor = LocalExecutor(VirtualClock())

        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError):
            executor.execute(boom, (), {})


class TestClusterExecutor:
    @pytest.fixture
    def env(self):
        clock = VirtualClock()
        registry = ContainerRegistry()
        image = Image(
            repository="m", tag="v", layers=[Layer("l")], handler=lambda x: x * 3
        )
        registry.push(image)
        cluster = KubernetesCluster(name="t", clock=clock, registry=registry)
        cluster.add_node("n0", 64000, 2**42)
        deployment = cluster.create_deployment("m", image, replicas=2)
        return clock, ClusterExecutor(clock, deployment), deployment

    def test_pod_handler_execution(self, env):
        clock, executor, _ = env
        # fn=None routes to the pod's packaged handler.
        assert executor.execute(None, (7,), {}) == 21

    def test_shipped_function_execution(self, env):
        clock, executor, _ = env
        assert executor.execute(lambda x: x + 1, (1,), {}) == 2

    def test_refresh_after_scale(self, env):
        clock, executor, deployment = env
        deployment.scale(4)
        executor.refresh()
        assert executor.pool.engine_count == 4

    def test_integrates_with_dfk(self, env):
        clock, executor, _ = env
        dfk = DataFlowKernel(clock)
        dfk.add_executor("cluster", executor)
        future = dfk.submit(lambda x: x - 1, (10,), executor="cluster")
        assert future.result() == 9

    def test_makespan_drain(self, env):
        clock, executor, _ = env
        for _ in range(4):
            executor.pool.dispatch_to_pod((1,), exec_cost_s=2.0)
        executor.makespan_drain()
        assert all(p.busy_until <= clock.now() for p in executor.pool.pods)
