"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.clock import VirtualClock


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture(scope="session")
def session_zoo():
    """One small trained model zoo shared by tests that only read it."""
    from repro.core.zoo import build_zoo

    return build_zoo(oqmd_entries=60, n_estimators=5, max_depth=8)


@pytest.fixture
def testbed():
    """A fresh full deployment (no jitter, memoization on)."""
    from repro.core.testbed import build_testbed

    return build_testbed(jitter=False)


@pytest.fixture
def testbed_nomemo():
    from repro.core.testbed import build_testbed

    return build_testbed(jitter=False, memoize_tm=False)
