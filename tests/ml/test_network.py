"""Unit tests for the Sequential model (inference + training)."""

import numpy as np
import pytest

from repro.ml.layers import Dense, ReLU, Softmax
from repro.ml.network import Sequential


def make_classifier(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        [Dense(2, 16, rng=rng), ReLU(), Dense(16, 2, rng=rng), Softmax()],
        name="toy",
    )


def toy_data(n=300, seed=1):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    return x, y


class TestInference:
    def test_predict_shape(self):
        model = make_classifier()
        assert model.predict(np.zeros((5, 2))).shape == (5, 2)

    def test_predict_probabilities(self):
        probs = make_classifier().predict(np.random.default_rng(0).normal(size=(4, 2)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_predict_classes(self):
        model = make_classifier()
        classes = model.predict_classes(np.zeros((3, 2)))
        assert classes.shape == (3,)
        assert set(classes.tolist()) <= {0, 1}

    def test_predict_top_k(self):
        model = make_classifier()
        top = model.predict_top_k(np.zeros((1, 2)), k=2)
        assert len(top[0]) == 2
        (c1, p1), (c2, p2) = top[0]
        assert p1 >= p2
        assert p1 + p2 == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        x = np.random.default_rng(5).normal(size=(3, 2))
        assert np.array_equal(make_classifier(7).predict(x), make_classifier(7).predict(x))


class TestTraining:
    def test_fit_reduces_loss(self):
        model = make_classifier()
        x, y = toy_data()
        losses = model.fit(x, y, epochs=15, lr=0.1)
        assert losses[-1] < losses[0] * 0.7

    def test_fit_learns_the_task(self):
        model = make_classifier()
        x, y = toy_data()
        model.fit(x, y, epochs=30, lr=0.2)
        assert model.evaluate_accuracy(x, y) > 0.9

    def test_fit_requires_softmax_head(self):
        model = Sequential([Dense(2, 2)])
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, 2)), np.zeros(4, dtype=int))

    def test_fit_reproducible(self):
        x, y = toy_data()
        a = make_classifier(3)
        b = make_classifier(3)
        a.fit(x, y, epochs=3, rng=np.random.default_rng(9))
        b.fit(x, y, epochs=3, rng=np.random.default_rng(9))
        assert np.array_equal(a.predict(x), b.predict(x))


class TestIntrospection:
    def test_parameter_count(self):
        model = make_classifier()
        # Dense(2,16): 2*16+16; Dense(16,2): 16*2+2.
        assert model.parameter_count() == (2 * 16 + 16) + (16 * 2 + 2)

    def test_params_keys(self):
        keys = set(make_classifier().params())
        assert "layer0.W" in keys and "layer2.b" in keys

    def test_summary_mentions_layers(self):
        text = make_classifier().summary()
        assert "Dense" in text and "Softmax" in text and "total params" in text

    def test_add_chains(self):
        model = Sequential().add(Dense(2, 2)).add(Softmax())
        assert len(model.layers) == 2
