"""Unit tests for neural-network layers."""

import numpy as np
import pytest

from repro.ml.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    InceptionBlock,
    LayerError,
    MaxPool2D,
    ReLU,
    Softmax,
)

RNG = np.random.default_rng(0)


class TestDense:
    def test_output_shape(self):
        layer = Dense(8, 4, rng=RNG)
        assert layer.forward(np.zeros((3, 8))).shape == (3, 4)

    def test_linear_in_input(self):
        layer = Dense(4, 2, rng=np.random.default_rng(1))
        x = np.ones((1, 4))
        assert np.allclose(layer.forward(2 * x) - layer.b, 2 * (layer.forward(x) - layer.b))

    def test_shape_mismatch_rejected(self):
        layer = Dense(8, 4)
        with pytest.raises(LayerError):
            layer.forward(np.zeros((3, 7)))
        with pytest.raises(LayerError):
            layer.forward(np.zeros(8))

    def test_backward_gradient_check(self):
        """Numerical gradient check on W."""
        rng = np.random.default_rng(2)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        out = layer.forward(x, training=True)
        upstream = rng.normal(size=out.shape)
        layer.backward(upstream)
        eps = 1e-6
        i, j = 1, 0
        layer.W[i, j] += eps
        loss_plus = float((layer.forward(x) * upstream).sum())
        layer.W[i, j] -= 2 * eps
        loss_minus = float((layer.forward(x) * upstream).sum())
        layer.W[i, j] += eps
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert layer.dW[i, j] == pytest.approx(numeric, rel=1e-4)

    def test_backward_before_forward_rejected(self):
        with pytest.raises(LayerError):
            Dense(2, 2).backward(np.zeros((1, 2)))

    def test_invalid_dims(self):
        with pytest.raises(LayerError):
            Dense(0, 2)


class TestActivations:
    def test_relu_clamps(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        assert np.array_equal(out, [0.0, 0.0, 2.0])

    def test_relu_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 3.0]]), training=True)
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert np.array_equal(grad, [[0.0, 5.0]])

    def test_softmax_rows_sum_to_one(self):
        out = Softmax().forward(RNG.normal(size=(4, 10)))
        assert np.allclose(out.sum(axis=1), 1.0)
        assert (out >= 0).all()

    def test_softmax_stability_large_logits(self):
        out = Softmax().forward(np.array([[1000.0, 1001.0]]))
        assert np.isfinite(out).all()


class TestShapes:
    def test_flatten(self):
        out = Flatten().forward(np.zeros((2, 4, 4, 3)))
        assert out.shape == (2, 48)

    def test_flatten_backward_restores(self):
        layer = Flatten()
        layer.forward(np.zeros((2, 4, 4, 3)), training=True)
        assert layer.backward(np.zeros((2, 48))).shape == (2, 4, 4, 3)

    def test_dropout_identity_at_inference(self):
        x = RNG.normal(size=(5, 8))
        assert np.array_equal(Dropout(0.5).forward(x, training=False), x)

    def test_dropout_preserves_expectation(self):
        layer = Dropout(0.5, rng=np.random.default_rng(3))
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_rate(self):
        with pytest.raises(LayerError):
            Dropout(1.0)

    def test_batchnorm_normalizes_training_stats(self):
        layer = BatchNorm(4, momentum=0.0)
        x = RNG.normal(loc=5.0, scale=3.0, size=(256, 4))
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        assert out.mean() == pytest.approx(0.0, abs=0.1)
        assert out.std() == pytest.approx(1.0, abs=0.1)


class TestConv2D:
    def test_same_padding_preserves_spatial(self):
        conv = Conv2D(3, 8, kernel_size=3, padding="same", rng=RNG)
        assert conv.forward(np.zeros((2, 16, 16, 3))).shape == (2, 16, 16, 8)

    def test_valid_padding_shrinks(self):
        conv = Conv2D(3, 8, kernel_size=3, padding="valid", rng=RNG)
        assert conv.forward(np.zeros((2, 16, 16, 3))).shape == (2, 14, 14, 8)

    def test_stride(self):
        conv = Conv2D(3, 4, kernel_size=3, stride=2, padding="valid", rng=RNG)
        assert conv.forward(np.zeros((1, 17, 17, 3))).shape == (1, 8, 8, 4)

    def test_channel_mismatch_rejected(self):
        conv = Conv2D(3, 4)
        with pytest.raises(LayerError):
            conv.forward(np.zeros((1, 8, 8, 5)))

    def test_identity_kernel(self):
        """A centered delta 1x1... use a 3x3 kernel equal to delta: output
        equals input channel copy."""
        conv = Conv2D(1, 1, kernel_size=3, padding="same", rng=RNG)
        conv.W[...] = 0.0
        conv.W[1, 1, 0, 0] = 1.0
        conv.b[...] = 0.0
        x = RNG.normal(size=(1, 6, 6, 1))
        assert np.allclose(conv.forward(x), x)

    def test_matches_naive_convolution(self):
        """im2col result equals a straightforward nested-loop convolution."""
        rng = np.random.default_rng(4)
        conv = Conv2D(2, 3, kernel_size=3, padding="valid", rng=rng)
        x = rng.normal(size=(1, 5, 5, 2))
        out = conv.forward(x)
        naive = np.zeros_like(out)
        for i in range(3):
            for j in range(3):
                patch = x[0, i : i + 3, j : j + 3, :]
                naive[0, i, j, :] = (
                    np.tensordot(patch, conv.W, axes=([0, 1, 2], [0, 1, 2])) + conv.b
                )
        assert np.allclose(out, naive)

    def test_invalid_config(self):
        with pytest.raises(LayerError):
            Conv2D(3, 4, padding="reflect")
        with pytest.raises(LayerError):
            Conv2D(3, 4, kernel_size=0)


class TestPooling:
    def test_maxpool_downsamples(self):
        pool = MaxPool2D(2)
        assert pool.forward(np.zeros((1, 8, 8, 3))).shape == (1, 4, 4, 3)

    def test_maxpool_takes_max(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        out = MaxPool2D(2).forward(x)
        assert out[0, :, :, 0].tolist() == [[5.0, 7.0], [13.0, 15.0]]

    def test_global_avg_pool(self):
        x = np.ones((2, 4, 4, 3)) * 2.0
        out = GlobalAvgPool2D().forward(x)
        assert out.shape == (2, 3)
        assert np.allclose(out, 2.0)

    def test_wrong_rank_rejected(self):
        with pytest.raises(LayerError):
            MaxPool2D(2).forward(np.zeros((4, 4)))
        with pytest.raises(LayerError):
            GlobalAvgPool2D().forward(np.zeros((4, 4)))


class TestInceptionBlock:
    def test_output_channels_concatenated(self):
        block = InceptionBlock(8, c1=4, c3=6, c5=2, cpool=2, rng=RNG)
        out = block.forward(RNG.normal(size=(1, 10, 10, 8)))
        assert out.shape == (1, 10, 10, 14)
        assert block.out_channels == 14

    def test_params_cover_all_branches(self):
        block = InceptionBlock(4, 2, 2, 2, 2, rng=RNG)
        keys = set(block.params())
        assert {"b1.W", "b3.W", "b5.W", "bp.W"} <= keys
