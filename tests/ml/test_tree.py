"""Unit tests for CART decision trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.sklearn_like.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    NotFittedError,
)


class TestRegressor:
    def test_fits_a_step_function_exactly(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert np.allclose(tree.predict(x), y)

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(0).normal(size=(20, 3))
        y = np.full(20, 7.0)
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree.node_count() == 1
        assert np.allclose(tree.predict(x), 7.0)

    def test_max_depth_respected(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(200, 4))
        y = rng.normal(size=200)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        tree = DecisionTreeRegressor(min_samples_leaf=10, max_depth=20).fit(x, y)

        def leaf_sizes(node, xs, ys):
            if node.is_leaf:
                return [len(ys)]
            mask = xs[:, node.feature] <= node.threshold
            return leaf_sizes(node.left, xs[mask], ys[mask]) + leaf_sizes(
                node.right, xs[~mask], ys[~mask]
            )

        assert min(leaf_sizes(tree._root, x, y)) >= 10

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_single_row_predict(self):
        x = np.array([[0.0], [1.0]])
        tree = DecisionTreeRegressor().fit(x, np.array([1.0, 2.0]))
        assert tree.predict(np.array([0.2]))[0] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros(3), np.zeros(3))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(-10, 10, allow_nan=False),
                st.floats(-10, 10, allow_nan=False),
            ),
            min_size=2,
            max_size=60,
        )
    )
    def test_predictions_within_target_range_property(self, rows):
        """Leaf means can never leave [min(y), max(y)]."""
        x = np.array([[a] for a, _ in rows])
        y = np.array([b for _, b in rows])
        tree = DecisionTreeRegressor(max_depth=6).fit(x, y)
        preds = tree.predict(x)
        assert preds.min() >= y.min() - 1e-9
        assert preds.max() <= y.max() + 1e-9


class TestClassifier:
    def test_learns_a_threshold(self):
        x = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (x[:, 0] > 0.5).astype(int)
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert np.array_equal(tree.predict(x), y)

    def test_predict_proba_rows_sum_to_one(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(100, 3))
        y = rng.integers(0, 3, size=100)
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        proba = tree.predict_proba(x)
        assert proba.shape == (100, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((2, 1)), np.array([-1, 0]))

    def test_pure_node_stops_early(self):
        x = np.random.default_rng(0).normal(size=(10, 2))
        y = np.ones(10, dtype=int)
        tree = DecisionTreeClassifier(max_depth=10).fit(x, y)
        assert tree.node_count() == 1
