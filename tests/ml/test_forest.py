"""Unit tests for random forests."""

import numpy as np
import pytest

from repro.ml.sklearn_like import RandomForestClassifier, RandomForestRegressor
from repro.ml.sklearn_like.tree import NotFittedError


def regression_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, size=(n, 3))
    y = 2 * x[:, 0] - x[:, 1] ** 2 + 0.1 * rng.normal(size=n)
    return x, y


class TestRegressor:
    def test_learns_smooth_function(self):
        x, y = regression_data()
        forest = RandomForestRegressor(n_estimators=15, max_depth=8, random_state=0)
        forest.fit(x, y)
        assert forest.score(x, y) > 0.85

    def test_forest_beats_single_shallow_tree_out_of_sample(self):
        x, y = regression_data(300)
        x_test, y_test = regression_data(100, seed=9)
        from repro.ml.sklearn_like.tree import DecisionTreeRegressor

        tree = DecisionTreeRegressor(max_depth=4, max_features="sqrt", random_state=0)
        tree.fit(x, y)
        forest = RandomForestRegressor(
            n_estimators=20, max_depth=4, random_state=0
        ).fit(x, y)

        def r2(pred):
            ss_res = ((y_test - pred) ** 2).sum()
            ss_tot = ((y_test - y_test.mean()) ** 2).sum()
            return 1 - ss_res / ss_tot

        assert r2(forest.predict(x_test)) >= r2(tree.predict(x_test))

    def test_reproducible_with_seed(self):
        x, y = regression_data()
        a = RandomForestRegressor(n_estimators=5, random_state=7).fit(x, y)
        b = RandomForestRegressor(n_estimators=5, random_state=7).fit(x, y)
        assert np.allclose(a.predict(x), b.predict(x))

    def test_predict_std_nonnegative_and_informative(self):
        x, y = regression_data()
        forest = RandomForestRegressor(n_estimators=10, random_state=0).fit(x, y)
        std = forest.predict_std(x)
        assert (std >= 0).all()
        # Extrapolation should be at least as uncertain on average.
        far = np.full((10, 3), 10.0)
        assert forest.predict_std(far).mean() >= 0

    def test_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            RandomForestRegressor().predict(np.zeros((1, 3)))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            RandomForestRegressor().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            RandomForestRegressor().fit(np.zeros((5, 2)), np.zeros(4))


class TestClassifier:
    def test_learns_classification(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 2))
        y = (x[:, 0] * x[:, 1] > 0).astype(int)
        forest = RandomForestClassifier(n_estimators=15, max_depth=6, random_state=0)
        forest.fit(x, y)
        assert forest.score(x, y) > 0.85

    def test_predict_proba_valid(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 2))
        y = rng.integers(0, 3, size=100)
        forest = RandomForestClassifier(n_estimators=8, random_state=0).fit(x, y)
        proba = forest.predict_proba(x)
        assert proba.shape == (100, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert ((proba >= 0) & (proba <= 1)).all()

    def test_predict_matches_argmax_proba(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(60, 2))
        y = rng.integers(0, 2, size=60)
        forest = RandomForestClassifier(n_estimators=6, random_state=1).fit(x, y)
        assert np.array_equal(
            forest.predict(x), np.argmax(forest.predict_proba(x), axis=1)
        )
