"""Unit tests for weight/estimator serialization."""

import numpy as np
import pytest

from repro.ml.layers import Dense, ReLU, Softmax
from repro.ml.network import Sequential
from repro.ml.serialization import (
    load_estimator,
    load_weights,
    manifest_json,
    model_manifest,
    save_estimator,
    save_weights,
)
from repro.ml.sklearn_like import RandomForestRegressor


def make_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng), Softmax()])


class TestWeights:
    def test_roundtrip_restores_predictions(self):
        source = make_model(seed=1)
        blob = save_weights(source)
        target = make_model(seed=2)  # different init
        x = np.random.default_rng(0).normal(size=(3, 4))
        assert not np.allclose(source.predict(x), target.predict(x))
        load_weights(target, blob)
        assert np.allclose(source.predict(x), target.predict(x))

    def test_missing_parameter_rejected(self):
        small = Sequential([Dense(4, 8)])
        blob = save_weights(small)
        bigger = make_model()
        with pytest.raises(KeyError):
            load_weights(bigger, blob)

    def test_shape_mismatch_rejected(self):
        a = Sequential([Dense(4, 8)])
        b = Sequential([Dense(4, 9)])
        with pytest.raises(ValueError):
            load_weights(b, save_weights(a))

    def test_blob_is_real_bytes(self):
        blob = save_weights(make_model())
        assert isinstance(blob, bytes)
        assert len(blob) > 100


class TestEstimators:
    def test_forest_roundtrip(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 3))
        y = x[:, 0] * 2
        forest = RandomForestRegressor(n_estimators=4, max_depth=5).fit(x, y)
        restored = load_estimator(save_estimator(forest))
        assert np.allclose(forest.predict(x), restored.predict(x))


class TestManifest:
    def test_manifest_contents(self):
        manifest = model_manifest(make_model())
        assert manifest["layers"] == ["Dense", "ReLU", "Dense", "Softmax"]
        assert manifest["parameter_count"] > 0

    def test_manifest_json_parses(self):
        import json

        doc = json.loads(manifest_json(make_model()))
        assert doc["layers"][0] == "Dense"
