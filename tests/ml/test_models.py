"""Unit tests for the benchmark model factories (Inception, CIFAR-10)."""

import numpy as np
import pytest

from repro.ml.models.cifar10 import CIFAR10_CLASSES, build_cifar10_cnn, classify
from repro.ml.models.inception_small import (
    IMAGENET_CATEGORY_COUNT,
    build_inception_small,
    classify_top5,
)

RNG = np.random.default_rng(0)


class TestCifar10:
    def test_output_space(self):
        model = build_cifar10_cnn()
        out = model.predict(RNG.random((2, 32, 32, 3)))
        assert out.shape == (2, 10)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_classify_api(self):
        model = build_cifar10_cnn()
        result = classify(model, RNG.random((32, 32, 3)))
        assert result["label"] in CIFAR10_CLASSES
        assert len(result["probabilities"]) == 10
        assert result["probabilities"][result["label"]] == pytest.approx(
            max(result["probabilities"].values())
        )

    def test_classify_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            classify(build_cifar10_cnn(), RNG.random((16, 16, 3)))

    def test_deterministic_weights(self):
        x = RNG.random((1, 32, 32, 3))
        assert np.array_equal(
            build_cifar10_cnn(seed=5).predict(x), build_cifar10_cnn(seed=5).predict(x)
        )
        assert not np.array_equal(
            build_cifar10_cnn(seed=5).predict(x), build_cifar10_cnn(seed=6).predict(x)
        )


class TestInception:
    def test_1000_categories(self):
        model = build_inception_small()
        out = model.predict(RNG.random((1, 64, 64, 3)))
        assert out.shape == (1, IMAGENET_CATEGORY_COUNT)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_top5_api(self):
        model = build_inception_small()
        top5 = classify_top5(model, RNG.random((64, 64, 3)))
        assert len(top5) == 5
        probs = [t["probability"] for t in top5]
        assert probs == sorted(probs, reverse=True)
        cats = [t["category"] for t in top5]
        assert len(set(cats)) == 5
        assert all(0 <= c < 1000 for c in cats)

    def test_top5_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            classify_top5(build_inception_small(), RNG.random((32, 32, 3)))

    def test_inception_heavier_than_cifar(self):
        """Structural sanity: the Inception stand-in does more work per
        image (more parameters in its conv path than CIFAR's conv path)."""
        inception = build_inception_small()
        import time

        x64 = RNG.random((1, 64, 64, 3))
        x32 = RNG.random((1, 32, 32, 3))
        cifar = build_cifar10_cnn()
        # Warm up and time a few real forward passes.
        inception.predict(x64), cifar.predict(x32)
        t0 = time.perf_counter()
        for _ in range(3):
            inception.predict(x64)
        t_inception = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(3):
            cifar.predict(x32)
        t_cifar = time.perf_counter() - t0
        # Not asserted strictly (host-dependent); both must at least run.
        assert t_inception > 0 and t_cifar > 0
