"""Trace propagation through the gateway's hostile paths.

The happy path (admission -> lane_wait -> runtime stages -> settle) is
covered by the fairness bench's telemetry arm; these tests pin the
paths that historically lose context: over-commit reclaims that pull a
released request back out of the runtime queue (withdraw_newest /
restore / requeue_front), re-release after recovery, and admission
denials that never settle at all. In every case the request must end
the run with one finished, well-nested span tree.
"""

import pytest

from repro.core.tasks import TaskRequest
from repro.core.telemetry import Tracer
from tests.gateway.test_gateway import build_gateway

from repro.gateway import TenantPolicy


def _overcommitted_traced_gateway(sample_rate=1.0):
    """The drain-deadline recipe from test_gateway, with a tracer on."""
    tracer = Tracer(sample_rate=sample_rate, slow_threshold_s=None)
    testbed, gateway, tokens = build_gateway(
        {"u": TenantPolicy(name="t")},
        n_workers=3,
        max_batch_size=8,
        drain_deadline_s=1.0,
        tracer=tracer,
    )
    releasable = gateway.max_dispatch_slots - gateway.slot_reserve
    for i in range(releasable):
        assert gateway.offer(
            TaskRequest("noop", args=(i,)), token=tokens["u"]
        ).admitted
    assert gateway.outstanding == releasable
    # Two of three workers drop out: the budget re-derives below what
    # is already outstanding, arming the drain deadline.
    gateway.runtime.mark_down("w1")
    gateway.runtime.mark_down("w2")
    assert gateway.outstanding > gateway.max_dispatch_slots
    return testbed, gateway, tokens, tracer


class TestReclaimPropagation:
    def test_reclaim_marks_the_trace_in_place(self):
        testbed, gateway, tokens, tracer = _overcommitted_traced_gateway()
        testbed.clock.advance(1.0)
        gateway.on_tick(testbed.clock.now())
        assert gateway.requests_reclaimed > 0
        marked = [
            result.request.trace
            for result in gateway._open.values()
            if any(m[0] == "reclaim" for m in result.request.trace.marks)
        ]
        assert len(marked) == gateway.requests_reclaimed
        for trace in marked:
            # The reclaim is a point annotation, not a span, and it
            # carries enough context to read the waterfall alone.
            ((name, at, attrs),) = [
                m for m in trace.marks if m[0] == "reclaim"
            ]
            assert at == testbed.clock.now()
            assert attrs == {"tenant": "t", "servable": "noop"}
            # Reclaim closed the first lane stay's span already; the
            # trace itself is still open (the request will settle).
            assert not trace.finished
            assert len(trace.stages("lane_wait")) == 1

    def test_reclaimed_requests_settle_with_complete_trees(self):
        testbed, gateway, tokens, tracer = _overcommitted_traced_gateway()
        offered = gateway.outstanding
        testbed.clock.advance(1.0)
        gateway.on_tick(testbed.clock.now())
        reclaimed = gateway.requests_reclaimed
        assert reclaimed > 0
        gateway.runtime.mark_up("w1")
        gateway.runtime.mark_up("w2")
        gateway.runtime.drain()
        assert gateway.outstanding == 0
        # 100% sampling: every admitted request's trace was retained,
        # finished, and is complete + well-nested despite the reclaim
        # round trip (withdraw_newest -> requeue_front -> re-release).
        assert len(tracer.retained) == offered
        twice_waited = 0
        for trace in tracer.retained:
            assert trace.finished and not trace.error
            assert trace.missing_stages(gateway=True) == set()
            assert trace.well_formed()
            lane_waits = trace.stages("lane_wait")
            assert len(lane_waits) in (1, 2)
            twice_waited += len(lane_waits) == 2
        # Each reclaimed request waited in its WFQ lane twice: once at
        # admission, once between reclaim and re-release.
        assert twice_waited == reclaimed

    def test_reclaimed_trace_keeps_its_enqueue_age(self):
        """The dispatch_window span of a reclaimed request spans the
        over-commit stall: it anchors at the *original* release, not
        the re-release (mirrors the queue-wait metric guarantee)."""
        testbed, gateway, tokens, tracer = _overcommitted_traced_gateway()
        armed_at = testbed.clock.now()
        testbed.clock.advance(1.0)
        gateway.on_tick(testbed.clock.now())
        assert gateway.requests_reclaimed > 0
        gateway.runtime.mark_up("w1")
        gateway.runtime.mark_up("w2")
        gateway.runtime.drain()
        reclaimed_traces = [
            t
            for t in tracer.retained
            if any(m[0] == "reclaim" for m in t.marks)
        ]
        assert reclaimed_traces
        for trace in reclaimed_traces:
            (window,) = trace.stages("dispatch_window")
            # Released before the workers went down, claimed after the
            # >= 1 s drain-deadline stall.
            assert window.start <= armed_at
            assert window.duration >= 1.0
            # And the second lane stay starts at the reclaim mark.
            ((_, reclaim_at, _),) = [
                m for m in trace.marks if m[0] == "reclaim"
            ]
            second_stay = trace.stages("lane_wait")[1]
            assert second_stay.start == reclaim_at

    def test_second_lane_wait_even_when_unsampled(self):
        """Span recording is retention-independent: an unsampled trace
        opened by the gateway still accumulates both lane stays (it
        just gets dropped at finish)."""
        testbed, gateway, tokens, tracer = _overcommitted_traced_gateway(
            sample_rate=0.0
        )
        testbed.clock.advance(1.0)
        gateway.on_tick(testbed.clock.now())
        assert gateway.requests_reclaimed > 0
        gateway.runtime.mark_up("w1")
        gateway.runtime.mark_up("w2")
        results = {
            uuid: result.request for uuid, result in gateway._open.items()
        }
        gateway.runtime.drain()
        assert len(tracer.retained) == 0  # nothing sampled, nothing slow
        assert tracer.dropped == len(results)
        twice = [
            r
            for r in results.values()
            if len(r.trace.stages("lane_wait")) == 2
        ]
        assert len(twice) > 0
        for request in twice:
            assert request.trace.well_formed()


class TestDenialTraces:
    def test_denied_request_closes_as_error_trace(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=None)
        testbed, gateway, tokens = build_gateway(
            {"u": TenantPolicy(name="t", rate_limit_rps=1.0, burst=1)},
            tracer=tracer,
        )
        first = gateway.offer(TaskRequest("noop", args=(1,)), token=tokens["u"])
        assert first.admitted
        denied = gateway.offer(TaskRequest("noop", args=(2,)), token=tokens["u"])
        assert not denied.admitted
        trace = denied.request.trace
        assert trace.finished and trace.error
        (admission,) = trace.stages("admission")
        assert admission.status == "error"
        assert admission.attrs["outcome"] == denied.decision.outcome.value
        # Tail-keep: even at 0% head sampling the denial is retained.
        assert trace in tracer.retained
        assert tracer.kept_tail >= 1

    def test_auth_failure_traced_without_tenant(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=None)
        testbed, gateway, tokens = build_gateway(
            {"u": TenantPolicy(name="t")}, tracer=tracer
        )
        rejected = gateway.offer(
            TaskRequest("noop", args=(1,)), token="not-a-token"
        )
        assert not rejected.admitted
        trace = rejected.request.trace
        assert trace.finished and trace.error
        assert trace.tenant is None
        assert trace in tracer.retained

    def test_denials_never_leak_open_traces(self):
        """A burst past max_queued sheds; every shed request's trace is
        closed (no unfinished traces dangling off the tracer)."""
        tracer = Tracer(sample_rate=1.0, slow_threshold_s=None)
        testbed, gateway, tokens = build_gateway(
            {"u": TenantPolicy(name="t", max_queued=2)},
            max_dispatch_slots=1,
            slot_reserve=0,
            tracer=tracer,
        )
        results = [
            gateway.offer(TaskRequest("noop", args=(i,)), token=tokens["u"])
            for i in range(10)
        ]
        shed = [r for r in results if not r.admitted]
        assert shed
        for result in shed:
            assert result.request.trace.finished
            assert result.request.trace.error
        assert tracer.finished == len(shed)
        # Admitted requests' traces stay open until settlement.
        for result in results:
            if result.admitted:
                assert not result.request.trace.finished


class TestGatewayTracerWiring:
    def test_gateway_inherits_runtime_tracer(self):
        """One attach point: a tracer on the runtime traces the whole
        gateway path without being passed twice."""
        from repro.core.runtime import ServingRuntime
        from repro.core.testbed import build_testbed
        from repro.core.zoo import build_zoo
        from repro.gateway import ServingGateway, TenantPolicyTable

        testbed = build_testbed(jitter=False, memoize_tm=False)
        zoo = build_zoo(oqmd_entries=50, n_estimators=4)
        tracer = Tracer(sample_rate=1.0)
        runtime = ServingRuntime(
            testbed.clock,
            testbed.management.queue,
            [testbed.add_fleet_worker("w0")],
            max_batch_size=4,
            max_coalesce_delay_s=0.005,
            tracer=tracer,
        )
        published = testbed.management.publish(testbed.token, zoo["noop"])
        runtime.place(zoo["noop"], published.build.image)
        policies = TenantPolicyTable()
        policies.register(TenantPolicy(name="t"))
        identity, token = testbed.new_user("u")
        policies.bind_identity(identity, "t")
        gateway = ServingGateway(testbed.auth, runtime, policies)
        assert gateway.tracer is tracer
        results = gateway.serve(
            [(0.0, token, TaskRequest("noop", args=(1,)))]
        )
        assert results[0].admitted
        (trace,) = tracer.retained
        assert trace.missing_stages(gateway=True) == set()
        assert trace.well_formed()
