"""Unit tests: admission control decisions and the in-flight ledger."""

import pytest

from repro.gateway.admission import AdmissionController, AdmissionOutcome
from repro.gateway.policy import TenantPolicy
from repro.sim.clock import VirtualClock


def controller():
    return AdmissionController(VirtualClock())


class TestAdmit:
    def test_unlimited_policy_always_admits(self):
        ctrl = controller()
        policy = TenantPolicy(name="t")
        for _ in range(100):
            assert ctrl.admit(policy, "noop", lane_depth=0).admitted
        assert ctrl.in_flight("t") == 100
        assert ctrl.metrics.counters("t").admitted == 100

    def test_rate_limit_denial_is_typed_and_metered(self):
        ctrl = controller()
        policy = TenantPolicy(name="t", rate_limit_rps=10.0, burst=2)
        assert ctrl.admit(policy, "noop", 0).admitted
        assert ctrl.admit(policy, "noop", 0).admitted
        decision = ctrl.admit(policy, "noop", 0)
        assert decision.outcome is AdmissionOutcome.REJECTED_RATE_LIMIT
        assert not decision.admitted
        # Denials charge nothing: the ledger holds only the two admits.
        assert ctrl.in_flight("t") == 2
        assert ctrl.metrics.counters("t").denied == {"rejected_rate_limit": 1}

    def test_rate_limit_refills_on_virtual_time(self):
        ctrl = controller()
        policy = TenantPolicy(name="t", rate_limit_rps=10.0, burst=1)
        assert ctrl.admit(policy, "noop", 0).admitted
        assert not ctrl.admit(policy, "noop", 0).admitted
        ctrl.clock.advance(0.1)
        assert ctrl.admit(policy, "noop", 0).admitted

    def test_max_in_flight_binds_until_release(self):
        ctrl = controller()
        policy = TenantPolicy(name="t", max_in_flight=2)
        assert ctrl.admit(policy, "noop", 0).admitted
        assert ctrl.admit(policy, "noop", 0).admitted
        decision = ctrl.admit(policy, "noop", 0)
        assert decision.outcome is AdmissionOutcome.REJECTED_MAX_IN_FLIGHT
        ctrl.release("t", "noop")
        assert ctrl.admit(policy, "noop", 0).admitted

    def test_per_servable_quota_is_independent_of_global_cap(self):
        ctrl = controller()
        policy = TenantPolicy(
            name="t", max_in_flight=10, servable_quotas={"cifar10": 1}
        )
        assert ctrl.admit(policy, "cifar10", 0).admitted
        quota_denial = ctrl.admit(policy, "cifar10", 0)
        assert quota_denial.outcome is AdmissionOutcome.REJECTED_SERVABLE_QUOTA
        # Other servables are unaffected by the cifar10 quota.
        assert ctrl.admit(policy, "noop", 0).admitted
        ctrl.release("t", "cifar10")
        assert ctrl.admit(policy, "cifar10", 0).admitted

    def test_lane_full_sheds_before_spending_tokens(self):
        ctrl = controller()
        policy = TenantPolicy(name="t", rate_limit_rps=1.0, burst=1, max_queued=3)
        decision = ctrl.admit(policy, "noop", lane_depth=3)
        assert decision.outcome is AdmissionOutcome.SHED_LANE_FULL
        # The shed request did not consume the single token.
        assert ctrl.admit(policy, "noop", lane_depth=0).admitted

    def test_release_underflow_is_an_error(self):
        ctrl = controller()
        with pytest.raises(ValueError):
            ctrl.release("t", "noop")


class TestAdmitMany:
    def test_all_or_nothing_against_every_cap(self):
        ctrl = controller()
        policy = TenantPolicy(
            name="t",
            rate_limit_rps=100.0,
            burst=10,
            max_in_flight=8,
            max_queued=8,
            servable_quotas={"noop": 5},
        )
        assert ctrl.admit_many(policy, "noop", lane_depth=0, n=5).admitted
        assert ctrl.in_flight("t", "noop") == 5
        # Quota: 5 in flight + 1 > 5.
        decision = ctrl.admit_many(policy, "noop", 0, 1)
        assert decision.outcome is AdmissionOutcome.REJECTED_SERVABLE_QUOTA
        # Nothing was charged by the denial.
        assert ctrl.in_flight("t") == 5

    def test_batch_larger_than_bucket_rejected_atomically(self):
        ctrl = controller()
        policy = TenantPolicy(name="t", rate_limit_rps=1.0, burst=3)
        decision = ctrl.admit_many(policy, "noop", 0, 4)
        assert decision.outcome is AdmissionOutcome.REJECTED_RATE_LIMIT
        # All three tokens are still there for a fitting batch.
        assert ctrl.admit_many(policy, "noop", 0, 3).admitted

    def test_lane_headroom_counts_the_whole_batch(self):
        ctrl = controller()
        policy = TenantPolicy(name="t", max_queued=4)
        decision = ctrl.admit_many(policy, "noop", lane_depth=2, n=3)
        assert decision.outcome is AdmissionOutcome.SHED_LANE_FULL
        assert ctrl.admit_many(policy, "noop", lane_depth=2, n=2).admitted


class TestRateOverrides:
    """Temporary admission caps imposed by the reactive SLO policy."""

    def test_override_rate_limits_an_unlimited_tenant(self):
        ctrl = controller()
        policy = TenantPolicy(name="t")  # no rate limit declared
        ctrl.set_rate_override("t", 4.0)
        admitted = sum(
            ctrl.admit(policy, "noop", 0).admitted for _ in range(10)
        )
        # Quarter-second burst (at least one token): 4 rps -> 1 token.
        assert admitted == 1
        decision = ctrl.admit(policy, "noop", 0)
        assert decision.outcome is AdmissionOutcome.REJECTED_RATE_LIMIT
        assert "4" in decision.detail  # denial names the override rate

    def test_override_replaces_the_policy_bucket(self):
        ctrl = controller()
        policy = TenantPolicy(name="t", rate_limit_rps=100.0, burst=50)
        assert ctrl.admit(policy, "noop", 0).admitted
        ctrl.set_rate_override("t", 8.0)
        # The generous policy burst is out of the picture immediately:
        # only the quarter-second of banked override tokens (2) remain.
        assert ctrl.admit(policy, "noop", 0).admitted
        assert ctrl.admit(policy, "noop", 0).admitted
        assert not ctrl.admit(policy, "noop", 0).admitted
        # Refill runs at the override rate, on virtual time.
        ctrl.clock.advance(1.0 / 8.0)
        assert ctrl.admit(policy, "noop", 0).admitted

    def test_burst_defaults_to_a_quarter_second_of_the_cap(self):
        ctrl = controller()
        policy = TenantPolicy(name="t")
        ctrl.set_rate_override("t", 40.0)  # quarter second -> 10 tokens
        admitted = sum(
            ctrl.admit(policy, "noop", 0).admitted for _ in range(20)
        )
        assert admitted == 10
        explicit = controller()
        explicit.set_rate_override("t", 40.0, burst=2.0)
        admitted = sum(
            explicit.admit(policy, "noop", 0).admitted for _ in range(20)
        )
        assert admitted == 2

    def test_clear_reverts_to_the_declared_policy(self):
        ctrl = controller()
        policy = TenantPolicy(name="t", rate_limit_rps=10.0, burst=2)
        ctrl.set_rate_override("t", 1.0)
        assert ctrl.rate_override("t") == 1.0
        assert ctrl.clear_rate_override("t") is True
        assert ctrl.clear_rate_override("t") is False
        assert ctrl.rate_override("t") is None
        # The policy bucket kept refilling untouched while overridden.
        assert ctrl.admit(policy, "noop", 0).admitted
        assert ctrl.admit(policy, "noop", 0).admitted
        assert not ctrl.admit(policy, "noop", 0).admitted

    def test_validation(self):
        with pytest.raises(ValueError):
            controller().set_rate_override("t", 0.0)
