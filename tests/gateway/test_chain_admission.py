"""Pipeline chains admit all-or-nothing at the gateway.

With per-step admission, a rate-limited tenant's chain could pass steps
``1..k-1`` — burning fleet time and rate-limit tokens — and then fail
admission at step ``k``. Chains are now admitted up front with cost =
number of steps (``AdmissionController.admit_chain``): a denial executes
nothing, and a mid-chain *execution* failure refunds the unexecuted
tail's in-flight charges.
"""

import pytest

from repro.core.pipeline import Pipeline, PipelineStep
from repro.core.testbed import build_testbed
from repro.core.zoo import build_zoo
from repro.gateway import AdmissionRejected, TenantPolicy, TenantPolicyTable
from repro.gateway.admission import AdmissionOutcome


def deployment(policy: TenantPolicy):
    testbed = build_testbed(jitter=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    policies = TenantPolicyTable()
    policies.register(policy)
    policies.set_default(policy.name)
    gateway = testbed.enable_gateway(policies=policies, n_workers=2)
    for name in ("noop", "matminer_util", "matminer_featurize", "matminer_model"):
        published = testbed.management.publish(testbed.token, zoo[name])
        gateway.runtime.place(zoo[name], published.build.image)
    pipeline = Pipeline(
        name="featurize-predict",
        steps=[
            PipelineStep("matminer_featurize"),
            PipelineStep("matminer_model"),
        ],
    )
    testbed.management.register_pipeline(testbed.token, pipeline)
    return testbed, gateway


class TestChainAdmission:
    def test_underfunded_chain_is_denied_before_step_one(self):
        """A drained bucket cannot afford a two-step chain: the denial
        is typed, and *no* chain step executes (nothing burned)."""
        testbed, gateway = deployment(
            TenantPolicy(name="lab", rate_limit_rps=0.001, burst=1)
        )
        # Spend the only token on a single request; the bucket is now
        # empty (and not full, so chain debt is unavailable).
        assert testbed.management.run(testbed.token, "matminer_featurize", "Fe2O3").ok
        with pytest.raises(AdmissionRejected) as exc:
            testbed.management.run_pipeline(
                testbed.token, "featurize-predict", "Fe2O3"
            )
        assert exc.value.decision.outcome is AdmissionOutcome.REJECTED_RATE_LIMIT
        # Only the earlier single request ran — the chain burned nothing.
        assert gateway.runtime.items_served == 1
        assert gateway.admission.in_flight("lab") == 0
        assert gateway.metrics.counters("lab").admitted == 1

    def test_funded_chain_runs_every_step(self):
        testbed, gateway = deployment(
            TenantPolicy(name="lab", rate_limit_rps=0.001, burst=2)
        )
        result = testbed.management.run_pipeline(
            testbed.token, "featurize-predict", "Fe2O3"
        )
        assert result.ok
        assert gateway.runtime.items_served == 2
        # Both steps' ledger charges settled on completion.
        assert gateway.admission.in_flight("lab") == 0
        assert gateway.metrics.counters("lab").admitted == 2
        # The chain consumed exactly its cost: a third token does not
        # exist, so an immediate second chain is denied.
        with pytest.raises(AdmissionRejected):
            testbed.management.run_pipeline(
                testbed.token, "featurize-predict", "Fe2O3"
            )

    def test_chain_checks_in_flight_cap_up_front(self):
        testbed, gateway = deployment(
            TenantPolicy(
                name="lab", max_in_flight=1, rate_limit_rps=0.001, burst=5
            )
        )
        with pytest.raises(AdmissionRejected) as exc:
            testbed.management.run_pipeline(
                testbed.token, "featurize-predict", "Fe2O3"
            )
        assert (
            exc.value.decision.outcome is AdmissionOutcome.REJECTED_MAX_IN_FLIGHT
        )
        assert gateway.runtime.items_served == 0
        # A denial further down the check chain burns no rate-limit
        # tokens: the full burst is still available.
        policy = gateway.policies.policy("lab")
        assert gateway.admission.bucket(policy).tokens == pytest.approx(5.0)

    def test_chain_longer_than_burst_runs_at_the_sustained_rate(self):
        """A 2-step chain against burst=1 must not be denied forever:
        a full bucket pays the whole chain (going into debt), and the
        debt refills at the sustained rate before the next admission."""
        testbed, gateway = deployment(
            TenantPolicy(name="lab", rate_limit_rps=10.0, burst=1)
        )
        result = testbed.management.run_pipeline(
            testbed.token, "featurize-predict", "Fe2O3"
        )
        assert result.ok
        # The bucket is in debt: an immediate single request is denied.
        with pytest.raises(AdmissionRejected):
            testbed.management.run(testbed.token, "matminer_featurize", "Fe2O3")
        # After the debt refills (2 tokens spent - 1 burst = 1 token of
        # debt at 10 rps), the tenant serves again.
        testbed.clock.advance(1.0)
        assert testbed.management.run(
            testbed.token, "matminer_featurize", "Fe2O3"
        ).ok

    def test_chain_checks_servable_quota_with_multiplicity(self):
        testbed, gateway = deployment(
            TenantPolicy(name="lab", servable_quotas={"matminer_model": 1})
        )
        # Quota 1 on the model step: a single chain fits...
        assert testbed.management.run_pipeline(
            testbed.token, "featurize-predict", "Fe2O3"
        ).ok
        # ...but a pipeline hitting that servable twice does not.
        double = Pipeline(
            name="model-twice",
            steps=[
                PipelineStep("matminer_featurize"),
                PipelineStep("matminer_model", adapter=lambda _: "Fe2O3"),
                PipelineStep("matminer_featurize"),
                PipelineStep("matminer_model"),
            ],
        )
        testbed.management.register_pipeline(testbed.token, double)
        with pytest.raises(AdmissionRejected) as exc:
            testbed.management.run_pipeline(testbed.token, "model-twice", "Fe2O3")
        assert (
            exc.value.decision.outcome is AdmissionOutcome.REJECTED_SERVABLE_QUOTA
        )

    def test_mid_chain_failure_refunds_unexecuted_tail(self):
        testbed, gateway = deployment(TenantPolicy(name="lab"))
        # An adapter that corrupts the intermediate makes step 2 fail at
        # execution time (not admission time).
        bad = Pipeline(
            name="bad-handoff",
            steps=[
                PipelineStep("matminer_featurize"),
                PipelineStep("noop"),
                PipelineStep("matminer_model"),
            ],
        )
        testbed.management.register_pipeline(testbed.token, bad)

        runtime = gateway.runtime
        worker = runtime.hosts("noop")[0]
        pool = worker.executors["parsl"]._pools["noop"]
        for pod in pool.pods:
            pod.fail()
        result = testbed.management.run_pipeline(
            testbed.token, "bad-handoff", "Fe2O3"
        )
        assert not result.ok
        # Step 1 settled, step 2 failed-and-settled, step 3 never ran —
        # and its up-front in-flight charge was refunded, not leaked.
        assert gateway.admission.in_flight("lab") == 0
        assert gateway.admission.in_flight("lab", "matminer_model") == 0
