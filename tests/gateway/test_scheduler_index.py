"""Property tests for the WFQ scheduler's eligible-tenant index.

``dequeue_eligible`` must pick exactly what the retained reference
``dequeue_from(eligible)`` head scan would — same ``(finish_tag, seq)``
arbitration — while ``has_eligible_work`` must match the plain
predicate "some eligible tenant has a non-empty lane". The index keeps
stale entries (lazy invalidation), so the tests deliberately create
them: global dequeues that consume an eligible tenant's head,
eligibility toggles, and ``requeue_front`` re-inserts.
"""

import random

import pytest

from repro.gateway.scheduler import SchedulerError, WeightedFairScheduler


def reference_pick(scheduler):
    """What ``dequeue_from(eligible)`` would pick: min (finish_tag, seq)
    head among eligible tenants with queued work, or None."""
    best = None
    for tenant in scheduler._eligible:
        lane = scheduler._lanes.get(tenant)
        if not lane:
            continue
        head = lane[0]
        if best is None or (head.finish_tag, head.seq) < (
            best.finish_tag,
            best.seq,
        ):
            best = head
    return best


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_eligible_pick_matches_reference_scan(self, seed):
        """Random enqueue/dequeue/toggle/requeue sequences: every
        eligible pop equals the reference scan, every ``has_eligible_work``
        equals the predicate."""
        rng = random.Random(seed)
        scheduler = WeightedFairScheduler()
        tenants = [f"t{i}" for i in range(6)]
        weights = {t: rng.choice((0.5, 1.0, 2.0, 4.0)) for t in tenants}
        served = []
        for _ in range(400):
            op = rng.random()
            if op < 0.45:
                tenant = rng.choice(tenants)
                scheduler.enqueue(
                    tenant,
                    weights[tenant],
                    object(),
                    cost=rng.choice((0.5, 1.0, 2.0)),
                )
            elif op < 0.6 and len(scheduler):
                served.append(scheduler.dequeue())
            elif op < 0.75:
                scheduler.set_eligible(rng.choice(tenants), rng.random() < 0.5)
            elif op < 0.85 and served and rng.random() < 0.5:
                entry = served.pop()
                scheduler.requeue_front(entry.tenant, entry.item, cost=entry.cost)
            elif scheduler.has_eligible_work():
                expected = reference_pick(scheduler)
                got = scheduler.dequeue_eligible()
                assert (got.tenant, got.seq) == (expected.tenant, expected.seq)
            expected = reference_pick(scheduler)
            assert scheduler.has_eligible_work() == (expected is not None)

    @pytest.mark.parametrize("seed", range(4))
    def test_twin_schedulers_serve_identically(self, seed):
        """A scheduler drained via the index and a twin drained via the
        reference ``dequeue_from`` produce the same service order."""
        rng = random.Random(100 + seed)
        ops = []
        for _ in range(120):
            tenant = f"t{rng.randrange(4)}"
            ops.append((tenant, rng.choice((1.0, 2.0)), rng.choice((0.5, 1.0))))
        eligible = {f"t{i}" for i in range(4) if rng.random() < 0.7} or {"t0"}

        def build():
            s = WeightedFairScheduler()
            for tenant, weight, cost in ops:
                s.enqueue(tenant, weight, (tenant, cost), cost=cost)
            for tenant in eligible:
                s.set_eligible(tenant, True)
            return s

        indexed, reference = build(), build()
        order_indexed, order_reference = [], []
        while indexed.has_eligible_work():
            order_indexed.append(indexed.dequeue_eligible().seq)
            order_reference.append(reference.dequeue_from(eligible).seq)
        assert order_indexed == order_reference
        with pytest.raises(SchedulerError):
            reference.dequeue_from(eligible)


class TestStaleEntries:
    def test_global_dequeue_leaves_stale_eligible_entries(self):
        """``dequeue`` consuming an eligible tenant's head leaves a stale
        index entry; the index skips it instead of double-serving."""
        scheduler = WeightedFairScheduler()
        scheduler.set_eligible("a", True)
        scheduler.set_eligible("b", True)
        first = scheduler.enqueue("a", 1.0, "a1")
        scheduler.enqueue("a", 1.0, "a2")
        scheduler.enqueue("b", 1.0, "b1")
        # Global pop takes a's head (smallest tag) around the index.
        assert scheduler.dequeue().seq == first.seq
        assert scheduler.has_eligible_work()
        picks = [scheduler.dequeue_eligible().item for _ in range(2)]
        # b1 (tag 1.0) now outranks a2 (tag 2.0); a's stale entry from
        # before the global pop is skipped, not served twice.
        assert picks == ["b1", "a2"]
        assert not scheduler.has_eligible_work()

    def test_unmarking_strands_entries_until_remarked(self):
        scheduler = WeightedFairScheduler()
        scheduler.set_eligible("a", True)
        scheduler.enqueue("a", 1.0, "a1")
        scheduler.set_eligible("a", False)
        assert not scheduler.has_eligible_work()
        with pytest.raises(SchedulerError):
            scheduler.dequeue_eligible()
        # Re-marking revalidates: the head is indexed again (the stale
        # twin from before the toggle is deduplicated by lazy skip).
        scheduler.set_eligible("a", True)
        assert scheduler.has_eligible_work()
        assert scheduler.dequeue_eligible().item == "a1"
        assert len(scheduler) == 0

    def test_eligibility_on_empty_lane_is_harmless(self):
        scheduler = WeightedFairScheduler()
        scheduler.set_eligible("ghost", True)
        assert not scheduler.has_eligible_work()
        scheduler.enqueue("ghost", 1.0, "g1")
        assert scheduler.has_eligible_work()
        assert scheduler.dequeue_eligible().item == "g1"


class TestRequeueFrontInteraction:
    def test_requeued_head_wins_its_ties_in_the_index(self):
        """A front re-queue inherits the displaced head's finish tag with
        a negative seq, so the index must serve it first — before the
        entry it ties with."""
        scheduler = WeightedFairScheduler()
        scheduler.set_eligible("a", True)
        taken = scheduler.enqueue("a", 1.0, "a1")
        scheduler.enqueue("a", 1.0, "a2")
        assert scheduler.dequeue_eligible().item == "a1"
        scheduler.requeue_front("a", taken.item, cost=taken.cost)
        expected = reference_pick(scheduler)
        got = scheduler.dequeue_eligible()
        assert got.item == "a1" and got.seq < 0
        assert (got.tenant, got.seq) == (expected.tenant, expected.seq)
        assert scheduler.dequeue_eligible().item == "a2"

    def test_requeue_front_into_ineligible_lane_stays_hidden(self):
        scheduler = WeightedFairScheduler()
        scheduler.set_eligible("a", True)
        scheduler.enqueue("a", 1.0, "a1")
        scheduler.enqueue("b", 1.0, "b1")
        entry = scheduler.dequeue()
        assert entry.item == "a1"
        scheduler.set_eligible("a", False)
        scheduler.requeue_front("a", entry.item, cost=entry.cost)
        # b is not eligible either: the index sees nothing, though the
        # global heap still serves both in tag order.
        assert not scheduler.has_eligible_work()
        assert scheduler.dequeue().item == "a1"
        assert scheduler.dequeue().item == "b1"

    def test_size_counter_tracks_requeues(self):
        scheduler = WeightedFairScheduler()
        scheduler.enqueue("a", 1.0, "a1")
        entry = scheduler.dequeue()
        assert len(scheduler) == 0
        scheduler.requeue_front("a", entry.item, cost=entry.cost)
        assert len(scheduler) == 1
        scheduler.dequeue()
        assert len(scheduler) == 0
