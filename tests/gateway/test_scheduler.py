"""Unit tests: weighted fair queuing across tenant lanes."""

import pytest

from repro.gateway.scheduler import SchedulerError, WeightedFairScheduler


class TestWFQOrdering:
    def test_fifo_within_a_lane(self):
        wfq = WeightedFairScheduler()
        for i in range(5):
            wfq.enqueue("t", 1.0, i)
        assert [e.item for e in wfq.drain()] == [0, 1, 2, 3, 4]

    def test_equal_weights_interleave_backlogged_lanes(self):
        wfq = WeightedFairScheduler()
        for i in range(4):
            wfq.enqueue("a", 1.0, f"a{i}")
        for i in range(4):
            wfq.enqueue("b", 1.0, f"b{i}")
        order = [e.item for e in wfq.drain()]
        # Tags tie pairwise; seq breaks ties toward the earlier enqueue,
        # then strict alternation takes over.
        assert order.index("b0") < order.index("a2")
        assert order.index("a1") < order.index("b2")

    def test_weights_skew_service_proportionally(self):
        wfq = WeightedFairScheduler()
        for i in range(9):
            wfq.enqueue("heavy", 2.0, ("heavy", i))
        for i in range(9):
            wfq.enqueue("light", 1.0, ("light", i))
        first_six = [wfq.dequeue().tenant for _ in range(6)]
        assert first_six.count("heavy") == 4
        assert first_six.count("light") == 2

    def test_newly_active_lane_is_not_punished_for_idling(self):
        wfq = WeightedFairScheduler()
        for i in range(100):
            wfq.enqueue("hot", 1.0, i)
        for _ in range(50):
            wfq.dequeue()
        # A light tenant shows up after the hot lane pushed virtual time
        # ahead: its first request must not wait out the whole backlog.
        wfq.enqueue("light", 1.0, "first")
        next_two = [wfq.dequeue() for _ in range(2)]
        assert "first" in {e.item for e in next_two}

    def test_work_conserving(self):
        wfq = WeightedFairScheduler()
        wfq.enqueue("only", 0.25, "x")
        assert wfq.dequeue().item == "x"
        with pytest.raises(SchedulerError):
            wfq.dequeue()


class TestDequeueFrom:
    def test_restricts_to_eligible_lanes(self):
        wfq = WeightedFairScheduler()
        wfq.enqueue("a", 1.0, "a0")
        wfq.enqueue("b", 1.0, "b0")
        assert wfq.dequeue_from({"b"}).item == "b0"
        # The heap's stale entry for b0 must not break later dequeues.
        assert wfq.dequeue().item == "a0"

    def test_eligible_set_with_no_work_raises(self):
        wfq = WeightedFairScheduler()
        wfq.enqueue("a", 1.0, "a0")
        with pytest.raises(SchedulerError):
            wfq.dequeue_from({"b"})

    def test_min_tag_among_eligible(self):
        wfq = WeightedFairScheduler()
        wfq.enqueue("a", 1.0, "a0")
        wfq.enqueue("b", 2.0, "b0")
        wfq.enqueue("c", 1.0, "c0")
        # b has the smallest tag (weight 2); among {a, c}, seq decides.
        assert wfq.dequeue_from({"a", "c"}).item == "a0"


class TestBookkeeping:
    def test_depths_and_counters(self):
        wfq = WeightedFairScheduler()
        wfq.enqueue("a", 1.0, 1)
        wfq.enqueue("a", 1.0, 2)
        wfq.enqueue("b", 1.0, 3)
        assert len(wfq) == 3
        assert wfq.depth("a") == 2
        assert wfq.depths() == {"a": 2, "b": 1}
        assert wfq.tenants() == ["a", "b"]
        wfq.drain()
        assert wfq.enqueued == 3 and wfq.dequeued == 3
        assert len(wfq) == 0

    def test_invalid_enqueue_parameters(self):
        wfq = WeightedFairScheduler()
        with pytest.raises(SchedulerError):
            wfq.enqueue("t", 0.0, "x")
        with pytest.raises(SchedulerError):
            wfq.enqueue("t", 1.0, "x", cost=0.0)


class TestRequeueFront:
    def test_front_entry_dequeues_before_existing_lane(self):
        from repro.gateway.scheduler import WeightedFairScheduler

        scheduler = WeightedFairScheduler()
        scheduler.enqueue("t", 1.0, "first")
        scheduler.enqueue("t", 1.0, "second")
        released = scheduler.dequeue()
        assert released.item == "first"
        # Take "first" back: it must come out again before "second".
        scheduler.requeue_front("t", "first")
        assert scheduler.dequeue().item == "first"
        assert scheduler.dequeue().item == "second"

    def test_front_requeue_does_not_double_charge_fair_share(self):
        from repro.gateway.scheduler import WeightedFairScheduler

        scheduler = WeightedFairScheduler()
        scheduler.enqueue("t", 1.0, "a")
        before = scheduler._last_finish["t"]
        scheduler.requeue_front("t", "b")
        # The tenant's WFQ frontier is untouched: the re-queued item's
        # cost was charged at its original enqueue.
        assert scheduler._last_finish["t"] == before

    def test_front_requeue_into_empty_lane_is_immediately_served(self):
        from repro.gateway.scheduler import WeightedFairScheduler

        scheduler = WeightedFairScheduler()
        scheduler.enqueue("hot", 1.0, "x")
        scheduler.dequeue()
        scheduler.requeue_front("hot", "x")
        scheduler.enqueue("cold", 1.0, "y")
        # The reclaimed item (oldest in system) wins the next dequeue.
        assert scheduler.dequeue().item == "x"

    def test_front_ordering_across_multiple_requeues(self):
        from repro.gateway.scheduler import WeightedFairScheduler

        scheduler = WeightedFairScheduler()
        for name in ("a", "b", "c"):
            scheduler.enqueue("t", 1.0, name)
        a, b = scheduler.dequeue(), scheduler.dequeue()
        # Taking back newest-first (b then a) must restore FIFO: a, b, c.
        scheduler.requeue_front("t", b.item)
        scheduler.requeue_front("t", a.item)
        assert [scheduler.dequeue().item for _ in range(3)] == ["a", "b", "c"]
