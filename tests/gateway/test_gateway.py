"""Behavior tests for the ServingGateway: admission failure paths,
work conservation, fairness under skew, and tenant tagging through
micro-batch coalescing."""

import numpy as np
import pytest

from repro.core.tasks import TaskRequest
from repro.core.zoo import build_zoo, sample_input
from repro.gateway import (
    AdmissionOutcome,
    AdmissionRejected,
    GatewayError,
    ServingGateway,
    TenantPolicy,
    TenantPolicyTable,
)


def build_gateway(tenant_policies, n_workers=2, max_batch_size=8, **gateway_kwargs):
    """Testbed + placed 'noop'/'matminer_util' + gateway with bound users.

    ``tenant_policies`` maps username -> TenantPolicy; returns
    (testbed, gateway, {username: token}).
    """
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False, memoize_tm=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    policies = TenantPolicyTable()
    tokens = {}
    identities = {}
    for username, policy in tenant_policies.items():
        policies.register(policy)
        identity, token = testbed.new_user(username)
        policies.bind_identity(identity, policy.name)
        tokens[username] = token
        identities[username] = identity
    workers = [testbed.add_fleet_worker(f"w{i}") for i in range(n_workers)]
    from repro.core.runtime import ServingRuntime

    runtime = ServingRuntime(
        testbed.clock,
        testbed.management.queue,
        workers,
        max_batch_size=max_batch_size,
        max_coalesce_delay_s=0.005,
        # The tracer attaches to the runtime (one attach point covers
        # the whole path); the gateway inherits it at construction.
        tracer=gateway_kwargs.pop("tracer", None),
    )
    for name in ("noop", "matminer_util"):
        published = testbed.management.publish(testbed.token, zoo[name])
        runtime.place(zoo[name], published.build.image, copies=n_workers)
    gateway = ServingGateway(testbed.auth, runtime, policies, **gateway_kwargs)
    testbed._identities = identities  # convenience for tests
    return testbed, gateway, tokens


def requests_at(rate_rps, duration_s, token, servable="noop", args=(1,)):
    return [
        (i / rate_rps, token, TaskRequest(servable, args=args))
        for i in range(int(rate_rps * duration_s))
    ]


class TestAdmissionFailurePaths:
    def test_invalid_token_is_a_typed_outcome_not_an_exception(self):
        testbed, gateway, tokens = build_gateway({"u": TenantPolicy(name="t")})
        results = gateway.serve(
            [(0.0, "not-a-token", TaskRequest("noop", args=(1,)))]
        )
        assert len(results) == 1
        assert results[0].decision.outcome is AdmissionOutcome.REJECTED_AUTH
        assert not results[0].admitted
        assert gateway.runtime.items_served == 0

    def test_expired_token_rejected_at_admission(self):
        testbed, gateway, tokens = build_gateway({"u": TenantPolicy(name="t")})
        expiring = testbed.auth.tokens.issue(
            testbed._identities["u"], ["dlhub:all"], lifetime_s=1.0
        )
        testbed.clock.advance(2.0)
        results = gateway.serve(
            [(0.0, expiring.token, TaskRequest("noop", args=(1,)))]
        )
        assert results[0].decision.outcome is AdmissionOutcome.REJECTED_AUTH
        assert "expired" in results[0].decision.detail

    def test_unknown_tenant_rejected(self):
        testbed, gateway, tokens = build_gateway({"u": TenantPolicy(name="t")})
        _, stranger_token = testbed.new_user("stranger")  # no binding, no default
        results = gateway.serve(
            [(0.0, stranger_token, TaskRequest("noop", args=(1,)))]
        )
        assert (
            results[0].decision.outcome
            is AdmissionOutcome.REJECTED_UNKNOWN_TENANT
        )

    def test_sync_path_raises_typed_rejection(self):
        testbed, gateway, tokens = build_gateway(
            {"u": TenantPolicy(name="t", rate_limit_rps=1.0, burst=1)}
        )
        identity = testbed._identities["u"]
        assert gateway.invoke_sync(
            TaskRequest("noop", args=(1,)), identity=identity
        ).ok
        with pytest.raises(AdmissionRejected) as excinfo:
            gateway.invoke_sync(TaskRequest("noop", args=(2,)), identity=identity)
        assert (
            excinfo.value.decision.outcome
            is AdmissionOutcome.REJECTED_RATE_LIMIT
        )

    def test_shed_when_lane_full(self):
        testbed, gateway, tokens = build_gateway(
            {"u": TenantPolicy(name="t", max_queued=2)},
            max_dispatch_slots=1,
            slot_reserve=0,
        )
        # Burst of 10 at one instant: 1 released to the runtime, 2 lane
        # slots, the rest shed with a typed outcome.
        results = gateway.serve(
            [(0.0, tokens["u"], TaskRequest("noop", args=(i,))) for i in range(10)]
        )
        outcomes = [r.decision.outcome for r in results]
        assert outcomes.count(AdmissionOutcome.ADMITTED) == 3
        assert outcomes.count(AdmissionOutcome.SHED_LANE_FULL) == 7
        shed = gateway.metrics.counters("t").denied
        assert shed == {"shed_lane_full": 7}

    def test_unplaced_servable_is_a_gateway_error(self):
        testbed, gateway, tokens = build_gateway({"u": TenantPolicy(name="t")})
        with pytest.raises(Exception):
            gateway.offer(
                TaskRequest("missing", args=(1,)),
                identity=testbed._identities["u"],
            )

    def test_unplaced_servable_batch_charges_nothing(self):
        """invoke_sync_many must fail the placement guard *before*
        admission, or the denial would strand in-flight charges and
        lane entries forever (regression)."""
        testbed, gateway, tokens = build_gateway(
            {"u": TenantPolicy(name="t", max_in_flight=8)}
        )
        identity = testbed._identities["u"]
        with pytest.raises(Exception):
            gateway.invoke_sync_many(
                [TaskRequest("missing", args=(i,)) for i in range(3)],
                identity=identity,
            )
        assert gateway.admission.in_flight("t") == 0
        assert gateway.pending() == 0
        # The gateway is still fully usable afterwards.
        assert gateway.invoke_sync(
            TaskRequest("noop", args=(1,)), identity=identity
        ).ok

    def test_minimal_slot_budget_constructs(self):
        """max_dispatch_slots=1 must not trip the derived-reserve
        validation (regression)."""
        testbed, gateway, tokens = build_gateway(
            {"u": TenantPolicy(name="t")}, max_dispatch_slots=1
        )
        assert gateway.slot_reserve == 0
        results = gateway.serve(
            [(0.0, tokens["u"], TaskRequest("noop", args=(i,))) for i in range(3)]
        )
        assert all(r.admitted and r.ok for r in results)


class TestWorkConservationAndQuotas:
    def test_over_quota_tenant_while_others_idle_is_work_conserving(self):
        """A quota-capped tenant's denials never idle the fleet for the
        others — and an idle fleet still serves the capped tenant up to
        its cap."""
        testbed, gateway, tokens = build_gateway(
            {
                "capped": TenantPolicy(
                    name="capped", rate_limit_rps=10.0, burst=5
                ),
                "free": TenantPolicy(name="free"),
            }
        )
        arrivals = requests_at(200.0, 0.5, tokens["capped"]) + requests_at(
            100.0, 0.5, tokens["free"], args=(2,)
        )
        results = gateway.serve(sorted(arrivals, key=lambda a: a[0]))
        capped = [r for r in results if r.decision.tenant == "capped"]
        free = [r for r in results if r.decision.tenant == "free"]
        # The free tenant is untouched by its neighbour's denials.
        assert all(r.admitted and r.ok for r in free)
        # The capped tenant got its bucket's worth (burst + refill), and
        # every denial is the rate-limit outcome.
        admitted_capped = [r for r in capped if r.admitted]
        assert 5 <= len(admitted_capped) <= 12
        assert all(
            r.decision.outcome is AdmissionOutcome.REJECTED_RATE_LIMIT
            for r in capped
            if not r.admitted
        )
        assert all(r.ok for r in admitted_capped)

    def test_lone_backlogged_tenant_overflows_its_share(self):
        """Work conservation: with no competition, one tenant may use
        (almost) all dispatch slots, not just its weighted share."""
        testbed, gateway, tokens = build_gateway(
            {"solo": TenantPolicy(name="solo"), "ghost": TenantPolicy(name="ghost")},
            max_dispatch_slots=16,
            slot_reserve=2,
        )
        results = gateway.serve(
            [
                (0.0, tokens["solo"], TaskRequest("noop", args=(i,)))
                for i in range(14)
            ]
        )
        assert all(r.admitted and r.ok for r in results)
        # At some point the solo tenant's outstanding exceeded its
        # 50% share (8) — the fallback released beyond it.
        assert gateway.runtime.items_served == 14

    def test_slot_reserve_keeps_headroom_for_new_tenant(self):
        testbed, gateway, tokens = build_gateway(
            {"hog": TenantPolicy(name="hog"), "late": TenantPolicy(name="late")},
            max_dispatch_slots=8,
            slot_reserve=2,
        )
        hog_burst = [
            (0.0, tokens["hog"], TaskRequest("matminer_util", args=sample_input("matminer_util")))
            for _ in range(30)
        ]
        late_one = [(0.010, tokens["late"], TaskRequest("noop", args=(1,)))]
        results = gateway.serve(sorted(hog_burst + late_one, key=lambda a: a[0]))
        late = [r for r in results if r.decision.tenant == "late"]
        assert late[0].admitted and late[0].ok
        # The late arrival was released immediately (reserve headroom),
        # not parked behind the hog's 30-deep burst.
        late_runtime = late[0].runtime_result
        assert late_runtime.enqueued_at - late[0].arrived_at < 1e-9


class TestFairnessUnderSkew:
    def test_10_to_1_skew_protects_the_light_tenant(self):
        testbed, gateway, tokens = build_gateway(
            {"hot": TenantPolicy(name="hot"), "light": TenantPolicy(name="light")},
            n_workers=2,
            max_batch_size=8,
        )
        fixed = sample_input("matminer_util")
        arrivals = sorted(
            requests_at(400.0, 1.0, tokens["hot"], "matminer_util", fixed)
            + requests_at(40.0, 1.0, tokens["light"], "matminer_util", fixed),
            key=lambda a: a[0],
        )
        results = gateway.serve(arrivals)
        assert all(r.admitted and r.ok for r in results)
        lat = {
            tenant: np.array(
                [r.latency for r in results if r.request.tenant == tenant]
            )
            for tenant in ("hot", "light")
        }
        light_p95 = float(np.percentile(lat["light"], 95))
        hot_p95 = float(np.percentile(lat["hot"], 95))
        # The hot tenant eats its own backlog; the light tenant doesn't.
        assert light_p95 < hot_p95 / 3
        # And the light tenant's tail stays in the tens of milliseconds
        # even though the fleet is saturated.
        assert light_p95 < 0.120

    def test_weights_divide_dispatch_bandwidth(self):
        testbed, gateway, tokens = build_gateway(
            {
                "paid": TenantPolicy(name="paid", weight=3.0),
                "free": TenantPolicy(name="free", weight=1.0),
            },
            n_workers=2,
            max_batch_size=4,
        )
        fixed = sample_input("matminer_util")
        arrivals = sorted(
            requests_at(300.0, 1.0, tokens["paid"], "matminer_util", fixed)
            + requests_at(300.0, 1.0, tokens["free"], "matminer_util", fixed),
            key=lambda a: a[0],
        )
        results = gateway.serve(arrivals)
        lat = {
            tenant: np.median(
                [r.latency for r in results if r.request.tenant == tenant]
            )
            for tenant in ("paid", "free")
        }
        # Equal offered load, 3:1 weights: the paid tenant's backlog
        # drains ~3x faster, so its median latency sits well below.
        assert lat["paid"] < 0.6 * lat["free"]


class TestTenantTagging:
    def test_tags_survive_micro_batch_coalescing(self):
        testbed, gateway, tokens = build_gateway(
            {"a": TenantPolicy(name="a"), "b": TenantPolicy(name="b")},
            n_workers=2,
            max_batch_size=8,
        )
        fixed = sample_input("matminer_util")
        arrivals = sorted(
            requests_at(500.0, 0.4, tokens["a"], "matminer_util", fixed)
            + requests_at(500.0, 0.4, tokens["b"], "matminer_util", fixed),
            key=lambda a: a[0],
        )
        results = gateway.serve(arrivals)
        assert all(r.admitted and r.ok for r in results)
        coalesced = [r for r in results if r.runtime_result.batch_size > 1]
        assert coalesced, "the burst must have produced real micro-batches"
        # Every item kept its tenant through batching...
        for result in results:
            assert result.request.tenant == result.decision.tenant
        # ...and lanes are tenant-pure: checking any coalesced batch's
        # members (same worker + completion) agree on tenant.
        by_batch = {}
        for r in results:
            key = (r.runtime_result.worker, r.runtime_result.completed_at)
            by_batch.setdefault(key, set()).add(r.request.tenant)
        assert all(len(tenants) == 1 for tenants in by_batch.values())

    def test_in_flight_ledger_settles_after_serve(self):
        testbed, gateway, tokens = build_gateway(
            {"t": TenantPolicy(name="t", max_in_flight=64)}
        )
        results = gateway.serve(requests_at(200.0, 0.5, tokens["t"]))
        assert all(r.admitted for r in results)
        assert gateway.admission.in_flight("t") == 0
        assert gateway.outstanding == 0
        assert gateway.pending() == 0
        counters = gateway.metrics.counters("t")
        assert counters.admitted == counters.completed == len(results)


class TestServeGuards:
    def test_serve_is_not_reentrant(self):
        testbed, gateway, tokens = build_gateway({"t": TenantPolicy(name="t")})
        gateway._serving = True
        try:
            with pytest.raises(GatewayError):
                gateway.serve([])
        finally:
            gateway._serving = False

    def test_offer_requires_identity_or_token(self):
        testbed, gateway, tokens = build_gateway({"t": TenantPolicy(name="t")})
        with pytest.raises(GatewayError):
            gateway.offer(TaskRequest("noop", args=(1,)))

    def test_batch_requests_must_be_split(self):
        testbed, gateway, tokens = build_gateway({"t": TenantPolicy(name="t")})
        with pytest.raises(GatewayError):
            gateway.offer(
                TaskRequest("noop", batch=[1, 2]),
                identity=testbed._identities["t"],
            )


class TestDrainDeadline:
    """A live budget that shrinks below ``outstanding`` must not suspend
    fairness forever: past ``drain_deadline_s`` the gateway reclaims
    released-but-unclaimed requests back into its WFQ lanes."""

    def _overcommitted_gateway(self, drain_deadline_s=1.0):
        testbed, gateway, tokens = build_gateway(
            {"u": TenantPolicy(name="t")},
            n_workers=3,
            max_batch_size=8,
            drain_deadline_s=drain_deadline_s,
        )
        # Fill the releasable budget (a lone tenant never eats the slot
        # reserve): every admitted request is released straight into
        # the runtime queue (nothing is being served yet).
        releasable = gateway.max_dispatch_slots - gateway.slot_reserve
        for i in range(releasable):
            result = gateway.offer(
                TaskRequest("noop", args=(i,)), token=tokens["u"]
            )
            assert result.admitted
        assert gateway.outstanding == releasable
        assert len(gateway.scheduler) == 0
        # Two of three workers drop out: the budget re-derives smaller
        # than what is already outstanding.
        gateway.runtime.mark_down("w1")
        gateway.runtime.mark_down("w2")
        assert gateway.outstanding > gateway.max_dispatch_slots
        return testbed, gateway, tokens

    def test_reclaims_unclaimed_releases_after_deadline(self):
        testbed, gateway, tokens = self._overcommitted_gateway()
        assert gateway.requests_reclaimed == 0
        excess = gateway.outstanding - gateway.max_dispatch_slots
        testbed.clock.advance(1.0)
        gateway.on_tick(testbed.clock.now())
        assert gateway.requests_reclaimed == excess
        assert gateway.outstanding == gateway.max_dispatch_slots
        # Reclaimed requests wait in lanes again (still admitted, still
        # counted as pending so the serve loop cannot strand them).
        assert len(gateway.scheduler) == excess
        assert gateway.pending() == excess

    def test_reclaimed_requests_complete_when_capacity_returns(self):
        testbed, gateway, tokens = self._overcommitted_gateway()
        offered = gateway.outstanding
        testbed.clock.advance(1.0)
        gateway.on_tick(testbed.clock.now())
        assert gateway.requests_reclaimed > 0
        gateway.runtime.mark_up("w1")
        gateway.runtime.mark_up("w2")
        gateway.runtime.drain()
        counters = gateway.metrics.counters("t")
        assert counters.completed == offered
        assert counters.in_progress == 0
        assert gateway.outstanding == 0

    def test_deadline_not_fired_before_it_lapses(self):
        testbed, gateway, tokens = self._overcommitted_gateway(
            drain_deadline_s=5.0
        )
        testbed.clock.advance(1.0)
        gateway.on_tick(testbed.clock.now())
        assert gateway.requests_reclaimed == 0

    def test_next_event_wakes_the_loop_at_the_deadline(self):
        testbed, gateway, tokens = self._overcommitted_gateway()
        armed_at = testbed.clock.now()
        assert gateway.next_event() == pytest.approx(armed_at + 1.0)

    def test_none_disables_reclamation(self):
        testbed, gateway, tokens = self._overcommitted_gateway(
            drain_deadline_s=None
        )
        testbed.clock.advance(60.0)
        gateway.on_tick(testbed.clock.now())
        assert gateway.requests_reclaimed == 0

    def test_recovery_before_deadline_disarms_the_timer(self):
        testbed, gateway, tokens = self._overcommitted_gateway()
        gateway.runtime.mark_up("w1")
        gateway.runtime.mark_up("w2")
        # Budget is back above outstanding: the timer must clear.
        assert gateway.next_event() == float("inf")
        testbed.clock.advance(5.0)
        gateway.on_tick(testbed.clock.now())
        assert gateway.requests_reclaimed == 0

    def test_validation(self):
        with pytest.raises(GatewayError):
            build_gateway({"u": TenantPolicy(name="t")}, drain_deadline_s=0.0)

    def test_reclaimed_requests_keep_their_enqueue_age(self):
        """Re-released reclaimed work must not look freshly arrived to
        the queue-wait metric: the original enqueue timestamp rides
        along, so waits include the over-commit stall."""
        testbed, gateway, tokens = self._overcommitted_gateway()
        testbed.clock.advance(1.0)
        gateway.on_tick(testbed.clock.now())
        assert gateway.requests_reclaimed > 0
        gateway.runtime.mark_up("w1")
        gateway.runtime.mark_up("w2")
        gateway.runtime.drain()
        waits = gateway.runtime.stage_metrics.samples("queue_wait", "noop")
        # The reclaimed requests stalled >= 1 s (the drain deadline)
        # before re-release; an un-anchored re-submit would record
        # only the few-ms post-re-release wait.
        assert max(waits) >= 1.0

    def test_reclaim_round_robins_across_tenants(self):
        """No tenant's queue positions are sacrificed wholesale: the
        reclaim sweep takes one request per tenant lane per pass."""
        testbed, gateway, tokens = build_gateway(
            {"a": TenantPolicy(name="ta"), "z": TenantPolicy(name="tz")},
            n_workers=3,
            max_batch_size=8,
            drain_deadline_s=1.0,
        )
        # Alternate offers so both tenants fill their slot shares.
        for i in range(40):
            user = "a" if i % 2 == 0 else "z"
            gateway.offer(TaskRequest("noop", args=(i,)), token=tokens[user])
        before = dict(gateway._outstanding_by_tenant)
        assert before["ta"] > 4 and before["tz"] > 4
        gateway.runtime.mark_down("w1")
        gateway.runtime.mark_down("w2")
        testbed.clock.advance(1.0)
        gateway.on_tick(testbed.clock.now())
        assert gateway.requests_reclaimed > 0
        after = gateway._outstanding_by_tenant
        lost = {t: before[t] - after[t] for t in before}
        # Round-robin: the reclaim burden splits evenly (± one sweep).
        assert abs(lost["ta"] - lost["tz"]) <= 1

    def test_foreign_tail_message_does_not_shield_reclamation(self):
        """A hand-tagged request submitted straight to the runtime sits
        at the lane tail; the reclaim sweep must dig past it instead of
        endlessly re-popping it while gateway releases beneath go
        unreclaimed."""
        testbed, gateway, tokens = build_gateway(
            {"u": TenantPolicy(name="t")},
            n_workers=3,
            max_batch_size=8,
            drain_deadline_s=1.0,
        )
        releasable = gateway.max_dispatch_slots - gateway.slot_reserve
        for i in range(releasable):
            assert gateway.offer(
                TaskRequest("noop", args=(i,)), token=tokens["u"]
            ).admitted
        # Foreign request on the same tenant lane, newest position.
        foreign = TaskRequest("noop", args=("foreign",))
        foreign.tenant = "t"
        gateway.runtime.submit(foreign)
        gateway.runtime.mark_down("w1")
        gateway.runtime.mark_down("w2")
        excess = gateway.outstanding - gateway.max_dispatch_slots
        testbed.clock.advance(1.0)
        gateway.on_tick(testbed.clock.now())
        # Full reclamation despite the foreign shield...
        assert gateway.requests_reclaimed == excess
        assert gateway.outstanding == gateway.max_dispatch_slots
        # ...and the foreign message survives untouched in the queue.
        from repro.messaging.queue import servable_topic

        lane = servable_topic("noop", lane="tenant-t")
        bodies = [
            m.body.args
            for m in gateway.runtime.queue._ready[lane]
        ]
        assert ("foreign",) in bodies

    def test_reclaimed_requests_rerelease_before_younger_lane_mates(self):
        """Per-tenant FIFO survives reclamation: taken-back releases go
        to the *front* of the lane, ahead of requests admitted later."""
        testbed, gateway, tokens = build_gateway(
            {"u": TenantPolicy(name="t")},
            n_workers=3,
            max_batch_size=8,
            drain_deadline_s=1.0,
        )
        releasable = gateway.max_dispatch_slots - gateway.slot_reserve
        # Fill the releasable budget, then three younger lane-queued.
        for i in range(releasable + 3):
            assert gateway.offer(
                TaskRequest("noop", args=(i,)), token=tokens["u"]
            ).admitted
        gateway.runtime.mark_down("w1")
        gateway.runtime.mark_down("w2")
        excess = gateway.outstanding - gateway.max_dispatch_slots
        testbed.clock.advance(1.0)
        gateway.on_tick(testbed.clock.now())
        assert gateway.requests_reclaimed == excess
        lane = [entry.item.args[0] for entry in gateway.scheduler._lanes["t"]]
        # Reclaimed (older, previously released) requests sit ahead of
        # the three younger lane-queued ones, in FIFO order.
        assert lane == sorted(lane)
        assert lane[-3:] == [releasable, releasable + 1, releasable + 2]
        assert all(i < releasable for i in lane[:-3])


class TestReactiveAdmissionTightening:
    def test_tighten_caps_one_tenant_relax_restores(self):
        testbed, gateway, tokens = build_gateway(
            {"u": TenantPolicy(name="t"), "v": TenantPolicy(name="other")}
        )
        gateway.tighten_admission("t", 40.0)
        assert gateway.admission_override("t") == 40.0
        assert gateway.admission_override("other") is None
        # 40 rps cap, quarter-second burst: 10 of 30 instant arrivals
        # pass; the untouched tenant takes no collateral damage.
        capped = gateway.serve(
            [(0.0, tokens["u"], TaskRequest("noop", args=(i,)))
             for i in range(30)]
            + [(0.0, tokens["v"], TaskRequest("noop", args=(i,)))
               for i in range(5)]
        )
        by_tenant = {"t": [], "other": []}
        for result in capped:
            by_tenant[result.decision.tenant].append(result.admitted)
        assert sum(by_tenant["t"]) == 10
        assert all(by_tenant["other"])
        rejected = [
            r.decision for r in capped if not r.admitted
        ]
        assert all(
            d.outcome is AdmissionOutcome.REJECTED_RATE_LIMIT
            for d in rejected
        )
        assert gateway.relax_admission("t") is True
        assert gateway.relax_admission("t") is False
        assert gateway.admission_override("t") is None
        again = gateway.serve(
            [(0.0, tokens["u"], TaskRequest("noop", args=(i,)))
             for i in range(5)]
        )
        assert all(r.admitted for r in again)
