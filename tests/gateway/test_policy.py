"""Unit tests: tenant policies, token buckets, and tenant resolution."""

import pytest

from repro.auth.identity import Identity
from repro.gateway.policy import (
    PolicyError,
    TenantPolicy,
    TenantPolicyTable,
    TokenBucket,
)
from repro.sim.clock import VirtualClock


def ident(n: str) -> Identity:
    return Identity(identity_id=f"id-{n}", username=n, provider="globusid.org")


class TestTenantPolicy:
    def test_defaults_are_unlimited(self):
        policy = TenantPolicy(name="t")
        assert policy.weight == 1.0
        assert policy.rate_limit_rps is None
        assert policy.max_in_flight is None
        assert policy.max_queued is None
        assert policy.servable_quota("anything") is None

    def test_effective_burst_defaults_to_rate(self):
        assert TenantPolicy(name="t", rate_limit_rps=7.0).effective_burst == 7.0
        assert TenantPolicy(name="t", rate_limit_rps=0.2).effective_burst == 1.0
        assert (
            TenantPolicy(name="t", rate_limit_rps=7.0, burst=3).effective_burst == 3
        )

    def test_quotas_are_frozen_after_registration(self):
        quotas = {"cifar10": 2}
        policy = TenantPolicy(name="t", servable_quotas=quotas)
        quotas["cifar10"] = 99  # caller's dict mutation must not leak in
        assert policy.servable_quota("cifar10") == 2
        with pytest.raises(TypeError):
            policy.servable_quotas["cifar10"] = 99

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name=""),
            dict(name="t", weight=0),
            dict(name="t", rate_limit_rps=0),
            dict(name="t", burst=0),
            dict(name="t", max_in_flight=0),
            dict(name="t", max_queued=0),
            dict(name="t", servable_quotas={"x": 0}),
        ],
    )
    def test_invalid_declarations(self, kwargs):
        with pytest.raises(PolicyError):
            TenantPolicy(**kwargs)


class TestTokenBucket:
    def test_burst_then_refill_on_virtual_time(self):
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate_rps=10.0, burst=3)
        assert [bucket.try_take() for _ in range(4)] == [True, True, True, False]
        clock.advance(0.1)  # one token refills
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_bucket_caps_at_burst(self):
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate_rps=100.0, burst=2)
        clock.advance(10.0)
        assert bucket.tokens == 2.0

    def test_multi_token_take(self):
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate_rps=1.0, burst=5)
        assert bucket.try_take(5)
        assert not bucket.try_take(1)
        clock.advance(2.0)
        assert bucket.try_take(2)


class TestTenantPolicyTable:
    def build(self):
        table = TenantPolicyTable()
        table.register(TenantPolicy(name="alpha"))
        table.register(TenantPolicy(name="beta", weight=2.0))
        return table

    def test_identity_binding_wins_over_group_and_default(self):
        table = self.build()
        table.register(TenantPolicy(name="fallback"))
        table.set_default("fallback")
        table.bind_group("astro", "beta")
        user = ident("u")
        table.bind_identity(user, "alpha")
        assert table.resolve(user, frozenset({"astro"})).name == "alpha"

    def test_group_binding_with_deterministic_tie_break(self):
        table = self.build()
        table.bind_group("zeta-group", "alpha")
        table.bind_group("astro", "beta")
        resolved = table.resolve(ident("u"), frozenset({"zeta-group", "astro"}))
        assert resolved.name == "beta"  # 'astro' < 'zeta-group'

    def test_default_and_unresolvable(self):
        table = self.build()
        assert table.resolve(ident("u")) is None
        table.set_default("alpha")
        assert table.resolve(ident("u")).name == "alpha"

    def test_bindings_require_registered_tenants(self):
        table = self.build()
        with pytest.raises(PolicyError):
            table.bind_identity(ident("u"), "nope")
        with pytest.raises(PolicyError):
            table.bind_group("g", "nope")
        with pytest.raises(PolicyError):
            table.set_default("nope")
        with pytest.raises(PolicyError):
            table.register(TenantPolicy(name="alpha"))
