"""Unit tests for the Auth service: login, authorization, dependent tokens."""

import pytest

from repro.auth.service import AuthorizationError, AuthService
from repro.sim.clock import VirtualClock


@pytest.fixture
def auth():
    service = AuthService(VirtualClock())
    service.identities.add_provider("globus", "globusid.org")
    service.identities.add_provider("orcid", "orcid.org")
    service.register_resource_server("dlhub", ["all"])
    service.register_resource_server("search", ["query", "ingest"])
    service.identities.register_identity("globus", "kyle")
    return service


class TestLogin:
    def test_login_grants_all_scopes_by_default(self, auth):
        tok = auth.login("globus", "kyle")
        assert tok.has_scope("dlhub:all")
        assert tok.has_scope("search:query")

    def test_login_with_requested_scopes(self, auth):
        tok = auth.login("globus", "kyle", requested_scopes=["search:query"])
        assert tok.has_scope("search:query")
        assert not tok.has_scope("dlhub:all")

    def test_unknown_scope_rejected(self, auth):
        with pytest.raises(AuthorizationError):
            auth.login("globus", "kyle", requested_scopes=["nope:scope"])

    def test_unknown_provider_rejected(self, auth):
        with pytest.raises(AuthorizationError):
            auth.login("github", "kyle")

    def test_unknown_user_rejected(self, auth):
        from repro.auth.identity import IdentityError

        with pytest.raises(IdentityError):
            auth.login("globus", "ghost")

    def test_multiple_identity_providers(self, auth):
        """Users can authenticate with any of hundreds of providers."""
        auth.identities.register_identity("orcid", "0000-0003")
        tok = auth.login("orcid", "0000-0003")
        assert tok.identity.provider == "orcid.org"


class TestAuthorize:
    def test_valid_token_returns_identity(self, auth):
        tok = auth.login("globus", "kyle")
        ident = auth.authorize(tok.token, "dlhub:all")
        assert ident.username == "kyle"

    def test_bad_token_rejected(self, auth):
        with pytest.raises(AuthorizationError):
            auth.authorize("junk", "dlhub:all")

    def test_insufficient_scope_rejected(self, auth):
        tok = auth.login("globus", "kyle", requested_scopes=["search:query"])
        with pytest.raises(AuthorizationError):
            auth.authorize(tok.token, "dlhub:all")

    def test_expired_token_rejected(self, auth):
        tok = auth.tokens.issue(
            auth.identities.providers["globus"].authenticate("kyle"),
            ["dlhub:all"],
            lifetime_s=10.0,
        )
        auth.clock.advance(11.0)
        with pytest.raises(AuthorizationError):
            auth.authorize(tok.token, "dlhub:all")


class TestDependentTokens:
    def test_dependent_token_exchange(self, auth):
        """The MS exchanges a user token for downstream (Search) access."""
        user_tok = auth.login("globus", "kyle")
        dep = auth.dependent_token(user_tok.token, "search:ingest")
        assert dep.identity.username == "kyle"
        assert dep.has_scope("search:ingest")
        assert not dep.has_scope("dlhub:all")  # least privilege

    def test_dependent_token_short_lived(self, auth):
        user_tok = auth.login("globus", "kyle")
        dep = auth.dependent_token(user_tok.token, "search:query")
        assert dep.expires_at - dep.issued_at == pytest.approx(3600.0)

    def test_dependent_from_bad_token(self, auth):
        with pytest.raises(AuthorizationError):
            auth.dependent_token("junk", "search:query")


class TestGroups:
    def test_require_group(self, auth):
        group = auth.identities.create_group("team")
        kyle = auth.identities.providers["globus"].authenticate("kyle")
        with pytest.raises(AuthorizationError):
            auth.require_group(kyle, "team")
        group.add(kyle)
        auth.require_group(kyle, "team")  # no raise


def test_duplicate_resource_server():
    service = AuthService(VirtualClock())
    service.register_resource_server("x", ["a"])
    with pytest.raises(ValueError):
        service.register_resource_server("x", ["a"])
