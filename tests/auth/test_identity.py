"""Unit tests for identities, providers, linking, and groups."""

import pytest

from repro.auth.identity import IdentityError, IdentityStore


@pytest.fixture
def store():
    s = IdentityStore()
    s.add_provider("globus", "globusid.org")
    s.add_provider("orcid", "orcid.org")
    return s


class TestProviders:
    def test_register_and_authenticate(self, store):
        ident = store.register_identity("globus", "kyle")
        assert store.providers["globus"].authenticate("kyle") is ident
        assert ident.qualified_name == "kyle@globusid.org"

    def test_duplicate_provider_rejected(self, store):
        with pytest.raises(IdentityError):
            store.add_provider("globus")

    def test_duplicate_username_rejected(self, store):
        store.register_identity("globus", "kyle")
        with pytest.raises(IdentityError):
            store.register_identity("globus", "kyle")

    def test_unknown_provider(self, store):
        with pytest.raises(IdentityError):
            store.register_identity("facebook", "kyle")

    def test_unknown_user_authentication(self, store):
        with pytest.raises(IdentityError):
            store.providers["globus"].authenticate("ghost")

    def test_default_email(self, store):
        ident = store.register_identity("globus", "ryan")
        assert ident.email == "ryan@globusid.org"

    def test_lookup_by_id(self, store):
        ident = store.register_identity("globus", "a")
        assert store.get(ident.identity_id) is ident
        with pytest.raises(IdentityError):
            store.get("no-such-id")


class TestLinking:
    def test_link_two_identities(self, store):
        a = store.register_identity("globus", "kyle")
        b = store.register_identity("orcid", "0000-0001")
        store.link(a, b)
        assert store.same_principal(a, b)
        linked = store.linked_identities(a)
        assert {i.username for i in linked} == {"kyle", "0000-0001"}

    def test_linking_is_transitive(self, store):
        store.add_provider("google")
        a = store.register_identity("globus", "u1")
        b = store.register_identity("orcid", "u2")
        c = store.register_identity("google", "u3")
        store.link(a, b)
        store.link(b, c)
        assert store.same_principal(a, c)
        assert len(store.linked_identities(a)) == 3

    def test_unlinked_are_distinct(self, store):
        a = store.register_identity("globus", "u1")
        b = store.register_identity("orcid", "u2")
        assert not store.same_principal(a, b)

    def test_self_link_is_noop(self, store):
        a = store.register_identity("globus", "u1")
        store.link(a, a)
        assert store.linked_identities(a) == [a]

    def test_profile_merges_linked(self, store):
        a = store.register_identity("globus", "kyle", email="k@anl.gov")
        b = store.register_identity("orcid", "0000-0001", email="k@orcid.org")
        store.link(a, b)
        profile = store.profile(a)
        assert set(profile["emails"]) == {"k@anl.gov", "k@orcid.org"}
        assert len(profile["identities"]) == 2


class TestGroups:
    def test_membership(self, store):
        group = store.create_group("candle-testers")
        member = store.register_identity("globus", "tester")
        outsider = store.register_identity("globus", "outsider")
        group.add(member)
        assert store.in_group(member, "candle-testers")
        assert not store.in_group(outsider, "candle-testers")

    def test_linked_identity_inherits_membership(self, store):
        """Group checks consider ALL of a principal's linked identities."""
        group = store.create_group("g")
        campus = store.register_identity("globus", "campus-id")
        orcid = store.register_identity("orcid", "0000-0002")
        store.link(campus, orcid)
        group.add(campus)
        assert store.in_group(orcid, "g")

    def test_remove_member(self, store):
        group = store.create_group("g")
        member = store.register_identity("globus", "m")
        group.add(member)
        group.remove(member)
        assert not store.in_group(member, "g")

    def test_unknown_group_is_false(self, store):
        member = store.register_identity("globus", "m")
        assert not store.in_group(member, "nonexistent")

    def test_duplicate_group_rejected(self, store):
        store.create_group("g")
        with pytest.raises(IdentityError):
            store.create_group("g")
