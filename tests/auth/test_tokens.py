"""Unit tests for access tokens: scopes, expiry, revocation."""

import pytest

from repro.auth.identity import IdentityStore
from repro.auth.tokens import Scope, TokenError, TokenStore
from repro.sim.clock import VirtualClock


@pytest.fixture
def env():
    clock = VirtualClock()
    store = IdentityStore()
    store.add_provider("globus")
    ident = store.register_identity("globus", "user")
    return clock, TokenStore(clock), ident


class TestIssueIntrospect:
    def test_issue_and_introspect(self, env):
        clock, tokens, ident = env
        tok = tokens.issue(ident, ["dlhub:all"])
        found = tokens.introspect(tok.token)
        assert found.identity is ident
        assert found.has_scope("dlhub:all")

    def test_unknown_token(self, env):
        _, tokens, _ = env
        with pytest.raises(TokenError):
            tokens.introspect("bogus")

    def test_scope_enforcement(self, env):
        _, tokens, ident = env
        tok = tokens.issue(ident, ["search:query"])
        with pytest.raises(TokenError):
            tokens.require_scope(tok.token, "dlhub:all")
        assert tokens.require_scope(tok.token, "search:query")

    def test_scope_object_accepted(self, env):
        _, tokens, ident = env
        tok = tokens.issue(ident, [Scope("dlhub:all")])
        assert tok.has_scope(Scope("dlhub:all"))

    def test_tokens_are_unique(self, env):
        _, tokens, ident = env
        a = tokens.issue(ident, ["s:a"])
        b = tokens.issue(ident, ["s:a"])
        assert a.token != b.token


class TestExpiry:
    def test_expired_token_rejected(self, env):
        clock, tokens, ident = env
        tok = tokens.issue(ident, ["s:a"], lifetime_s=100.0)
        clock.advance(101.0)
        with pytest.raises(TokenError):
            tokens.introspect(tok.token)

    def test_valid_until_expiry(self, env):
        clock, tokens, ident = env
        tok = tokens.issue(ident, ["s:a"], lifetime_s=100.0)
        clock.advance(99.9)
        assert tokens.introspect(tok.token)

    def test_zero_lifetime_rejected(self, env):
        _, tokens, ident = env
        with pytest.raises(ValueError):
            tokens.issue(ident, ["s:a"], lifetime_s=0.0)

    def test_active_count(self, env):
        clock, tokens, ident = env
        tokens.issue(ident, ["s:a"], lifetime_s=10.0)
        tokens.issue(ident, ["s:a"], lifetime_s=1000.0)
        clock.advance(20.0)
        assert tokens.active_count() == 1


class TestRevocationRefresh:
    def test_revoked_token_rejected(self, env):
        _, tokens, ident = env
        tok = tokens.issue(ident, ["s:a"])
        tokens.revoke(tok.token)
        with pytest.raises(TokenError):
            tokens.introspect(tok.token)

    def test_refresh_rotates_token(self, env):
        _, tokens, ident = env
        old = tokens.issue(ident, ["s:a", "s:b"])
        new = tokens.refresh(old.token)
        assert new.token != old.token
        assert new.scopes == old.scopes
        with pytest.raises(TokenError):
            tokens.introspect(old.token)

    def test_revoke_unknown(self, env):
        _, tokens, _ = env
        with pytest.raises(TokenError):
            tokens.revoke("missing")


def test_invalid_scope_name():
    with pytest.raises(ValueError):
        Scope("has space")
    with pytest.raises(ValueError):
        Scope("")
