"""Unit tests for seeded RNG streams."""

import numpy as np

from repro.sim.rng import SeededRNG


class TestSeededRNG:
    def test_same_seed_same_stream(self):
        a, b = SeededRNG(42), SeededRNG(42)
        assert np.array_equal(a.random(16), b.random(16))

    def test_different_seeds_differ(self):
        a, b = SeededRNG(1), SeededRNG(2)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_children_independent_by_label(self):
        root = SeededRNG(0)
        a = root.child("latency")
        b = root.child("dataset")
        assert not np.array_equal(a.random(16), b.random(16))

    def test_child_streams_stable(self):
        """Adding consumers never perturbs an existing child stream."""
        x = SeededRNG(5).child("alpha").random(8)
        root = SeededRNG(5)
        root.child("beta")  # new consumer
        y = root.child("alpha").random(8)
        assert np.array_equal(x, y)

    def test_nested_children(self):
        a = SeededRNG(0).child("x").child("y")
        b = SeededRNG(0).child("x").child("y")
        assert np.array_equal(a.random(4), b.random(4))

    def test_passthroughs(self):
        rng = SeededRNG(0)
        assert rng.integers(0, 10, size=5).shape == (5,)
        assert -10 < rng.normal(0, 1) < 10
        assert 0 <= rng.uniform() < 1
        assert rng.choice([1, 2, 3]) in (1, 2, 3)
        seq = list(range(10))
        rng.shuffle(seq)
        assert sorted(seq) == list(range(10))
