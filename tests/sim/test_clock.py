"""Unit tests for the virtual clock."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.clock import ClockError, Stopwatch, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(start=5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock(start=-1.0)

    def test_advance_returns_new_time(self):
        clock = VirtualClock()
        assert clock.advance(0.5) == 0.5
        assert clock.advance(0.25) == 0.75

    def test_advance_zero_allowed(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now() == 0.0

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_nan_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ClockError):
            clock.advance(float("nan"))

    def test_advance_to_forward(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        assert clock.now() == 3.0

    def test_advance_to_same_time_allowed(self):
        clock = VirtualClock()
        clock.advance_to(1.0)
        clock.advance_to(1.0)
        assert clock.now() == 1.0

    def test_advance_to_backwards_rejected(self):
        clock = VirtualClock()
        clock.advance_to(2.0)
        with pytest.raises(ClockError):
            clock.advance_to(1.0)

    def test_advances_counter(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.advance_to(2.0)
        assert clock.advances == 2

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=50))
    def test_monotonicity_property(self, deltas):
        """The clock never goes backwards under any advance sequence."""
        clock = VirtualClock()
        previous = clock.now()
        for delta in deltas:
            current = clock.advance(delta)
            assert current >= previous
            previous = current

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3), max_size=30))
    def test_sum_of_advances_property(self, deltas):
        clock = VirtualClock()
        for delta in deltas:
            clock.advance(delta)
        assert clock.now() == pytest.approx(sum(deltas), abs=1e-6)


class TestStopwatch:
    def test_elapsed_tracks_clock(self):
        clock = VirtualClock()
        sw = clock.stopwatch()
        clock.advance(1.5)
        assert sw.elapsed() == pytest.approx(1.5)

    def test_stop_freezes(self):
        clock = VirtualClock()
        sw = clock.stopwatch()
        clock.advance(1.0)
        assert sw.stop() == pytest.approx(1.0)
        clock.advance(2.0)
        assert sw.elapsed() == pytest.approx(1.0)

    def test_restart(self):
        clock = VirtualClock()
        sw = clock.stopwatch()
        clock.advance(1.0)
        sw.restart()
        clock.advance(0.5)
        assert sw.elapsed() == pytest.approx(0.5)

    def test_context_manager(self):
        clock = VirtualClock()
        with Stopwatch(clock) as sw:
            clock.advance(0.7)
        clock.advance(9.0)
        assert sw.elapsed() == pytest.approx(0.7)

    def test_start_time(self):
        clock = VirtualClock()
        clock.advance(2.0)
        sw = clock.stopwatch()
        assert sw.start_time == pytest.approx(2.0)
