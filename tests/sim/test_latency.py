"""Unit tests for network links and the latency model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import calibration as cal
from repro.sim.clock import VirtualClock
from repro.sim.latency import GaussianJitter, LatencyModel, NetworkLink, NoJitter
from repro.sim.rng import SeededRNG


class TestNetworkLink:
    def test_one_way_is_half_rtt(self):
        link = NetworkLink("l", rtt_s=0.020, bandwidth_bps=1e12)
        assert link.one_way_latency(0) == pytest.approx(0.010)

    def test_payload_adds_transfer_time(self):
        link = NetworkLink("l", rtt_s=0.0, bandwidth_bps=1000.0)
        assert link.one_way_latency(500) == pytest.approx(0.5)

    def test_round_trip(self):
        link = NetworkLink("l", rtt_s=0.010, bandwidth_bps=1000.0)
        assert link.round_trip_latency(100, 100) == pytest.approx(0.010 + 0.2)

    def test_charge_advances_clock(self):
        clock = VirtualClock()
        link = NetworkLink("l", rtt_s=0.010, bandwidth_bps=1e12)
        cost = link.charge_send(clock, 0)
        assert clock.now() == pytest.approx(cost) == pytest.approx(0.005)

    def test_charge_round_trip_advances_clock(self):
        clock = VirtualClock()
        link = NetworkLink("l", rtt_s=0.010, bandwidth_bps=1e12)
        link.charge_round_trip(clock)
        assert clock.now() == pytest.approx(0.010)

    def test_negative_payload_rejected(self):
        link = NetworkLink("l", rtt_s=0.01)
        with pytest.raises(ValueError):
            link.one_way_latency(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            NetworkLink("l", rtt_s=-0.1)
        with pytest.raises(ValueError):
            NetworkLink("l", rtt_s=0.1, bandwidth_bps=0)

    @given(
        rtt=st.floats(min_value=0.0, max_value=1.0),
        payload=st.integers(min_value=0, max_value=10**9),
    )
    def test_latency_nonnegative_property(self, rtt, payload):
        link = NetworkLink("l", rtt_s=rtt, bandwidth_bps=1e9)
        assert link.one_way_latency(payload) >= 0

    @given(p1=st.integers(0, 10**6), p2=st.integers(0, 10**6))
    def test_latency_monotone_in_payload(self, p1, p2):
        link = NetworkLink("l", rtt_s=0.01, bandwidth_bps=1e6)
        lo, hi = sorted((p1, p2))
        assert link.one_way_latency(lo) <= link.one_way_latency(hi)


class TestJitter:
    def test_no_jitter_is_identity(self):
        assert NoJitter().sample(0.5) == 0.5

    def test_gaussian_jitter_reproducible(self):
        a = GaussianJitter(SeededRNG(1, "x"), 0.1)
        b = GaussianJitter(SeededRNG(1, "x"), 0.1)
        assert [a.sample(1.0) for _ in range(5)] == [b.sample(1.0) for _ in range(5)]

    def test_gaussian_jitter_floor(self):
        jitter = GaussianJitter(SeededRNG(0), relative_sigma=5.0, floor_fraction=0.5)
        for _ in range(200):
            assert jitter.sample(1.0) >= 0.5

    def test_zero_nominal_stays_zero(self):
        jitter = GaussianJitter(SeededRNG(0), 0.1)
        assert jitter.sample(0.0) == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GaussianJitter(SeededRNG(0), relative_sigma=-1)
        with pytest.raises(ValueError):
            GaussianJitter(SeededRNG(0), floor_fraction=0.0)


class TestLatencyModel:
    def test_paper_testbed_rtts(self):
        model = LatencyModel.paper_testbed(jitter=False)
        assert model.management_to_task_manager.rtt_s == pytest.approx(cal.RTT_MS_TM_S)
        assert model.task_manager_to_cluster.rtt_s == pytest.approx(
            cal.RTT_TM_CLUSTER_S
        )

    def test_ms_tm_is_dominant_hop(self):
        """The 20.7 ms EC2 hop dominates all other links (SS V-A)."""
        model = LatencyModel.paper_testbed(jitter=False)
        assert model.management_to_task_manager.rtt_s > 50 * model.task_manager_to_cluster.rtt_s

    def test_zero_model_charges_nothing(self):
        clock = VirtualClock()
        model = LatencyModel.zero()
        model.client_to_management.charge_round_trip(clock, 10**6, 10**6)
        model.management_to_task_manager.charge_send(clock, 10**6)
        assert clock.now() < 1e-9

    def test_jittered_model_uses_seeded_streams(self):
        a = LatencyModel.paper_testbed(SeededRNG(7), jitter=True)
        b = LatencyModel.paper_testbed(SeededRNG(7), jitter=True)
        xs = [a.management_to_task_manager.one_way_latency(100) for _ in range(5)]
        ys = [b.management_to_task_manager.one_way_latency(100) for _ in range(5)]
        assert xs == ys
