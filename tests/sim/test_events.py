"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.events import EventLoop


@pytest.fixture
def loop():
    return EventLoop(VirtualClock())


class TestScheduling:
    def test_schedule_and_run(self, loop):
        fired = []
        loop.schedule(1.0, lambda: fired.append("a"))
        loop.run_next()
        assert fired == ["a"]
        assert loop.clock.now() == 1.0

    def test_negative_delay_rejected(self, loop):
        with pytest.raises(ValueError):
            loop.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self, loop):
        loop.clock.advance(1.0)
        fired = []
        loop.schedule_at(2.5, lambda: fired.append(1))
        loop.run_next()
        assert loop.clock.now() == 2.5

    def test_schedule_at_past_rejected(self, loop):
        loop.clock.advance(5.0)
        with pytest.raises(ValueError):
            loop.schedule_at(1.0, lambda: None)

    def test_events_fire_in_time_order(self, loop):
        fired = []
        loop.schedule(3.0, lambda: fired.append("late"))
        loop.schedule(1.0, lambda: fired.append("early"))
        loop.schedule(2.0, lambda: fired.append("middle"))
        loop.run_all()
        assert fired == ["early", "middle", "late"]

    def test_ties_broken_fifo(self, loop):
        fired = []
        for label in ("first", "second", "third"):
            loop.schedule(1.0, lambda l=label: fired.append(l))
        loop.run_all()
        assert fired == ["first", "second", "third"]


class TestCancellation:
    def test_cancelled_event_skipped(self, loop):
        fired = []
        ev = loop.schedule(1.0, lambda: fired.append("cancelled"))
        loop.schedule(2.0, lambda: fired.append("kept"))
        ev.cancel()
        loop.run_all()
        assert fired == ["kept"]

    def test_len_excludes_cancelled(self, loop):
        ev = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        ev.cancel()
        assert len(loop) == 1


class TestRunUntil:
    def test_run_until_deadline(self, loop):
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(5.0, lambda: fired.append(5))
        count = loop.run_until(3.0)
        assert count == 1
        assert fired == [1]
        assert loop.clock.now() == 3.0
        assert len(loop) == 1

    def test_run_until_advances_clock_even_when_empty(self, loop):
        loop.run_until(7.0)
        assert loop.clock.now() == 7.0

    def test_run_all_bounded(self, loop):
        for i in range(5):
            loop.schedule(float(i + 1), lambda: None)
        assert loop.run_all(max_events=3) == 3
        assert len(loop) == 2

    def test_fired_counter(self, loop):
        loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        loop.run_all()
        assert loop.fired == 2

    def test_events_may_schedule_events(self, loop):
        fired = []

        def chain():
            fired.append("first")
            loop.schedule(1.0, lambda: fired.append("second"))

        loop.schedule(1.0, chain)
        loop.run_all()
        assert fired == ["first", "second"]
        assert loop.clock.now() == 2.0
