"""Sanity tests on the calibration constants (the paper-evidence layer)."""

from repro.sim import calibration as cal


class TestTopology:
    def test_paper_rtts(self):
        """The two measured RTTs from SS V-A, verbatim."""
        assert cal.RTT_MS_TM_S == 0.0207
        assert cal.RTT_TM_CLUSTER_S == 0.00017

    def test_lan_faster_than_wan(self):
        assert cal.BANDWIDTH_LAN_BPS > cal.BANDWIDTH_WAN_BPS


class TestInferenceCosts:
    def test_all_six_servables_calibrated(self):
        for key in (
            "noop",
            "inception",
            "cifar10",
            "matminer_util",
            "matminer_featurize",
            "matminer_model",
        ):
            assert cal.inference_cost(key) > 0
            assert cal.payload_bytes(key) > 0
            assert cal.response_bytes(key) > 0

    def test_cost_ordering(self):
        """Inception > CIFAR-10 > noop, per Fig. 3's inference bars."""
        assert (
            cal.inference_cost("inception")
            > cal.inference_cost("cifar10")
            > cal.inference_cost("noop")
        )

    def test_unknown_key_uses_default(self):
        assert cal.inference_cost("never-heard-of-it") == cal.DEFAULT_INFERENCE_COST_S
        assert cal.payload_bytes("never-heard-of-it") == cal.DEFAULT_PAYLOAD_BYTES

    def test_image_payloads_dominate(self):
        """Inception/CIFAR inputs are the large payloads of Fig. 3."""
        assert cal.payload_bytes("inception") > 50 * cal.payload_bytes("matminer_util")
        assert cal.payload_bytes("cifar10") > cal.payload_bytes("noop")


class TestServingCosts:
    def test_cpp_core_beats_python(self):
        """TF Serving's C++ core is cheaper than Flask's Python stack."""
        assert cal.TFSERVING_CORE_S < cal.FLASK_SERVER_S

    def test_grpc_beats_rest(self):
        assert cal.GRPC_PROTOCOL_S < cal.REST_PROTOCOL_S

    def test_memo_lookup_is_1ms_class(self):
        assert cal.TASK_MANAGER_CACHE_LOOKUP_S <= 0.001

    def test_fig7_saturation_band(self):
        """Dispatch vs inception cost must place saturation near 15 replicas."""
        ratio = (cal.SERVABLE_SHIM_S + cal.inference_cost("inception")) / cal.PARSL_DISPATCH_S
        assert 10 <= ratio <= 22

    def test_batch_marginal_below_dispatch(self):
        assert cal.BATCH_ITEM_MARGINAL_S < cal.PARSL_DISPATCH_S
