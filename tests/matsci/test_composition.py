"""Unit tests for chemical-formula parsing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matsci.composition import Composition, CompositionError
from repro.matsci.elements import ELEMENTS


class TestParsing:
    def test_simple_binary(self):
        assert Composition.parse("NaCl").as_dict() == {"Na": 1.0, "Cl": 1.0}

    def test_subscripts(self):
        assert Composition.parse("SiO2").as_dict() == {"Si": 1.0, "O": 2.0}
        assert Composition.parse("Fe2O3").as_dict() == {"Fe": 2.0, "O": 3.0}

    def test_fractional_subscripts(self):
        comp = Composition.parse("Fe0.5Ni0.5")
        assert comp.as_dict() == {"Fe": 0.5, "Ni": 0.5}

    def test_parentheses(self):
        assert Composition.parse("Ba(NO3)2").as_dict() == {
            "Ba": 1.0,
            "N": 2.0,
            "O": 6.0,
        }

    def test_nested_parentheses(self):
        comp = Composition.parse("Ca(Al(OH)4)2")
        assert comp.as_dict() == {"Ca": 1.0, "Al": 2.0, "O": 8.0, "H": 8.0}

    def test_repeated_element_accumulates(self):
        assert Composition.parse("CHOOH").as_dict() == {"C": 1.0, "H": 2.0, "O": 2.0}

    def test_two_letter_symbols(self):
        comp = Composition.parse("HeNe")
        assert comp.as_dict() == {"He": 1.0, "Ne": 1.0}

    def test_whitespace_tolerated(self):
        assert Composition.parse(" Na Cl ").as_dict() == {"Na": 1.0, "Cl": 1.0}


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        ["", "  ", "Xx", "Na)Cl", "(NaCl", "NaCl)", "2NaCl", "Na-Cl", "J2O"],
    )
    def test_invalid_formulas(self, bad):
        with pytest.raises(CompositionError):
            Composition.parse(bad)

    def test_from_dict_validation(self):
        with pytest.raises(CompositionError):
            Composition.from_dict({"Zz": 1.0})
        with pytest.raises(CompositionError):
            Composition.from_dict({"Na": 0.0})


class TestAccessors:
    def test_fractions_normalized(self):
        fracs = Composition.parse("SiO2").fractions()
        assert fracs["Si"] == pytest.approx(1 / 3)
        assert fracs["O"] == pytest.approx(2 / 3)
        assert sum(fracs.values()) == pytest.approx(1.0)

    def test_fraction_of_absent_element(self):
        assert Composition.parse("NaCl").fraction("Au") == 0.0

    def test_molar_mass(self):
        mass = Composition.parse("H2O").molar_mass
        assert mass == pytest.approx(2 * 1.008 + 15.999, abs=0.01)

    def test_contains(self):
        comp = Composition.parse("NaCl")
        assert "Na" in comp and "Au" not in comp

    def test_n_elements_and_total_atoms(self):
        comp = Composition.parse("Fe2O3")
        assert comp.n_elements == 2
        assert comp.total_atoms == 5.0

    def test_reduced_formula(self):
        assert Composition.parse("Fe2O4").reduced_formula() == "Fe1O2".replace("1", "")
        assert Composition.parse("Na2Cl2").reduced_formula() == "Cl1Na1".replace("1", "")

    def test_str_is_reduced(self):
        assert str(Composition.parse("O2Si")) == "O2Si"


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(sorted(ELEMENTS)),
                st.integers(min_value=1, max_value=9),
            ),
            min_size=1,
            max_size=4,
            unique_by=lambda t: t[0],
        )
    )
    def test_parse_roundtrip_property(self, parts):
        """Build a formula string from parts; parsing recovers the amounts."""
        formula = "".join(f"{sym}{amt}" for sym, amt in parts)
        comp = Composition.parse(formula)
        assert comp.as_dict() == {sym: float(amt) for sym, amt in parts}

    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from(sorted(ELEMENTS)),
            st.floats(min_value=0.1, max_value=10, allow_nan=False),
            min_size=1,
            max_size=5,
        )
    )
    def test_fractions_sum_to_one_property(self, amounts):
        comp = Composition.from_dict(amounts)
        assert sum(comp.fractions().values()) == pytest.approx(1.0)
