"""Unit tests for the Ward/Magpie-style featurizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matsci.composition import Composition
from repro.matsci.elements import ELEMENTS, element
from repro.matsci.featurize import FEATURE_NAMES, MagpieFeaturizer


@pytest.fixture
def featurizer():
    return MagpieFeaturizer()


class TestVectorStructure:
    def test_length_matches_names(self, featurizer):
        vec = featurizer.featurize("NaCl")
        assert vec.shape == (len(FEATURE_NAMES),)
        assert featurizer.n_features == len(FEATURE_NAMES)

    def test_accepts_composition_or_string(self, featurizer):
        a = featurizer.featurize("NaCl")
        b = featurizer.featurize(Composition.parse("NaCl"))
        assert np.array_equal(a, b)

    def test_featurize_many_shape(self, featurizer):
        mat = featurizer.featurize_many(["NaCl", "SiO2", "Fe2O3"])
        assert mat.shape == (3, len(FEATURE_NAMES))

    def test_featurize_many_empty(self, featurizer):
        assert featurizer.featurize_many([]).shape == (0, len(FEATURE_NAMES))


class TestStoichiometric:
    def test_n_components(self, featurizer):
        idx = FEATURE_NAMES.index("NComponents")
        assert featurizer.featurize("NaCl")[idx] == 2
        assert featurizer.featurize("Ba(NO3)2")[idx] == 3

    def test_norms_for_equal_fractions(self, featurizer):
        """For a 50/50 binary, the p-norm is (2 * 0.5^p)^(1/p)."""
        vec = featurizer.featurize("NaCl")
        for p, name in ((2, "Norm2"), (3, "Norm3"), (5, "Norm5")):
            expected = (2 * 0.5**p) ** (1.0 / p)
            assert vec[FEATURE_NAMES.index(name)] == pytest.approx(expected)

    def test_norm_decreasing_in_p(self, featurizer):
        vec = featurizer.featurize("SiO2")
        n2 = vec[FEATURE_NAMES.index("Norm2")]
        n3 = vec[FEATURE_NAMES.index("Norm3")]
        n5 = vec[FEATURE_NAMES.index("Norm5")]
        assert n2 >= n3 >= n5

    def test_single_element_norms_are_one(self, featurizer):
        vec = featurizer.featurize("Fe")
        for name in ("Norm2", "Norm3", "Norm5"):
            assert vec[FEATURE_NAMES.index(name)] == pytest.approx(1.0)


class TestPropertyStatistics:
    def test_mean_is_fraction_weighted(self, featurizer):
        vec = featurizer.featurize("SiO2")
        expected = element("Si").mass / 3 + element("O").mass * 2 / 3
        assert vec[FEATURE_NAMES.index("AtomicWeight_mean")] == pytest.approx(expected)

    def test_range_min_max(self, featurizer):
        vec = featurizer.featurize("NaCl")
        z_na, z_cl = element("Na").z, element("Cl").z
        assert vec[FEATURE_NAMES.index("Number_min")] == z_na
        assert vec[FEATURE_NAMES.index("Number_max")] == z_cl
        assert vec[FEATURE_NAMES.index("Number_range")] == z_cl - z_na

    def test_mode_is_most_abundant(self, featurizer):
        vec = featurizer.featurize("SiO2")  # O dominates
        assert vec[FEATURE_NAMES.index("Number_mode")] == element("O").z

    def test_single_element_devs_zero(self, featurizer):
        vec = featurizer.featurize("Cu")
        for prop in ("Number", "AtomicWeight", "Electronegativity"):
            assert vec[FEATURE_NAMES.index(f"{prop}_avg_dev")] == pytest.approx(0.0)
            assert vec[FEATURE_NAMES.index(f"{prop}_range")] == pytest.approx(0.0)

    def test_ionic_character_bounds(self, featurizer):
        idx = FEATURE_NAMES.index("MaxIonicChar")
        for formula in ("NaCl", "SiO2", "Fe", "Ba(NO3)2"):
            assert 0.0 <= featurizer.featurize(formula)[idx] <= 1.0


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from(sorted(ELEMENTS)),
            st.integers(min_value=1, max_value=6),
            min_size=1,
            max_size=4,
        )
    )
    def test_features_always_finite_property(self, amounts, ):
        featurizer = MagpieFeaturizer()
        comp = Composition.from_dict({k: float(v) for k, v in amounts.items()})
        vec = featurizer.featurize(comp)
        assert np.isfinite(vec).all()

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(sorted(ELEMENTS)), st.sampled_from(sorted(ELEMENTS)))
    def test_order_invariance_property(self, a, b):
        """AB and BA (same amounts) featurize identically."""
        if a == b:
            return
        featurizer = MagpieFeaturizer()
        x = featurizer.featurize(Composition.from_dict({a: 1.0, b: 2.0}))
        y = featurizer.featurize(Composition.from_dict({b: 2.0, a: 1.0}))
        assert np.allclose(x, y)

    def test_scale_invariance(self, featurizer):
        """Fe2O4 and FeO2 have identical fractions, identical features."""
        assert np.allclose(
            featurizer.featurize("Fe2O4"), featurizer.featurize("FeO2")
        )
