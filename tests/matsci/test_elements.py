"""Unit tests for the periodic-table data."""

import pytest

from repro.matsci.elements import ELEMENTS, PROPERTY_NAMES, UnknownElement, element


class TestTable:
    def test_common_elements_present(self):
        for sym in ("H", "C", "O", "Na", "Cl", "Fe", "Si", "Au", "U"):
            assert sym in ELEMENTS

    def test_atomic_numbers_unique_and_ordered(self):
        zs = [el.z for el in ELEMENTS.values()]
        assert len(zs) == len(set(zs))

    def test_lookup(self):
        fe = element("Fe")
        assert fe.z == 26
        assert fe.mass == pytest.approx(55.845)

    def test_unknown_symbol(self):
        with pytest.raises(UnknownElement):
            element("Xx")

    def test_property_vector_matches_names(self):
        vec = element("Si").property_vector()
        assert len(vec) == len(PROPERTY_NAMES)
        assert vec[PROPERTY_NAMES.index("Number")] == 14.0

    def test_chemistry_sanity(self):
        """Spot-check well-known chemical orderings."""
        assert element("F").electronegativity > element("Cs").electronegativity
        assert element("Cs").covalent_radius > element("F").covalent_radius
        assert element("W").melting_point > element("Hg").melting_point
        assert element("Na").valence == 1
        assert element("O").valence == 6

    def test_rows_and_groups_in_range(self):
        for el in ELEMENTS.values():
            assert 1 <= el.row <= 7
            assert 1 <= el.group <= 18

    def test_all_properties_finite_positive(self):
        for el in ELEMENTS.values():
            assert el.mass > 0
            assert el.electronegativity > 0
            assert el.covalent_radius > 0
            assert el.melting_point > 0
            assert el.valence >= 1
