"""Unit tests for the synthetic OQMD dataset generator."""

import numpy as np
import pytest

from repro.matsci.featurize import MagpieFeaturizer
from repro.matsci.oqmd import generate_oqmd_dataset, train_test_split
from repro.ml.sklearn_like import RandomForestRegressor


class TestGeneration:
    def test_requested_size(self):
        assert len(generate_oqmd_dataset(50)) == 50

    def test_deterministic_by_seed(self):
        a = generate_oqmd_dataset(30, seed=1)
        b = generate_oqmd_dataset(30, seed=1)
        assert [e.formula for e in a] == [e.formula for e in b]
        assert [e.formation_energy for e in a] == [e.formation_energy for e in b]

    def test_seeds_differ(self):
        a = generate_oqmd_dataset(30, seed=1)
        b = generate_oqmd_dataset(30, seed=2)
        assert [e.formula for e in a] != [e.formula for e in b]

    def test_formulas_unique(self):
        entries = generate_oqmd_dataset(100)
        formulas = [e.formula for e in entries]
        assert len(formulas) == len(set(formulas))

    def test_energies_physical_range(self):
        entries = generate_oqmd_dataset(200)
        energies = np.array([e.formation_energy for e in entries])
        # Formation energies of real compounds live in roughly [-5, +1].
        assert energies.min() > -6.0
        assert energies.max() < 2.0

    def test_stability_flag_consistent(self):
        for entry in generate_oqmd_dataset(50):
            assert entry.stable == (entry.formation_energy < -0.5)

    def test_compositions_have_anion(self):
        from repro.matsci.oqmd import ANIONS

        for entry in generate_oqmd_dataset(40):
            assert any(a in entry.composition for a in ANIONS)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_oqmd_dataset(0)


class TestLearnability:
    def test_forest_learns_formation_energy(self):
        """The headline requirement: the target is learnable from Ward
        features, so the served matminer model predicts something real."""
        entries = generate_oqmd_dataset(300, seed=42)
        train, test = train_test_split(entries, test_fraction=0.25, seed=0)
        featurizer = MagpieFeaturizer()
        x_train = featurizer.featurize_many([e.composition for e in train])
        y_train = np.array([e.formation_energy for e in train])
        x_test = featurizer.featurize_many([e.composition for e in test])
        y_test = np.array([e.formation_energy for e in test])
        forest = RandomForestRegressor(n_estimators=20, max_depth=12, random_state=0)
        forest.fit(x_train, y_train)
        assert forest.score(x_test, y_test) > 0.5


class TestSplit:
    def test_split_partitions(self):
        entries = generate_oqmd_dataset(100)
        train, test = train_test_split(entries, test_fraction=0.2, seed=3)
        assert len(train) + len(test) == 100
        assert len(test) == 20
        assert set(e.formula for e in train).isdisjoint(e.formula for e in test)

    def test_split_deterministic(self):
        entries = generate_oqmd_dataset(50)
        t1 = train_test_split(entries, seed=1)[1]
        t2 = train_test_split(entries, seed=1)[1]
        assert [e.formula for e in t1] == [e.formula for e in t2]

    def test_invalid_fraction(self):
        entries = generate_oqmd_dataset(10)
        with pytest.raises(ValueError):
            train_test_split(entries, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(entries, test_fraction=1.0)
