"""Unit tests for text analysis."""

from hypothesis import given
from hypothesis import strategies as st

from repro.search.tokenizer import STOPWORDS, prefix_grams, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("CIFAR Model") == ["cifar", "model"]

    def test_drops_stopwords(self):
        assert tokenize("the model of science") == ["model", "science"]

    def test_keeps_hyphenated_and_splits(self):
        tokens = tokenize("cifar-10 classifier")
        assert "cifar-10" in tokens
        assert "cifar" in tokens and "10" in tokens

    def test_underscores(self):
        tokens = tokenize("matminer_model")
        assert "matminer_model" in tokens
        assert "matminer" in tokens and "model" in tokens

    def test_empty_and_punctuation(self):
        assert tokenize("") == []
        assert tokenize("!!! ???") == []

    def test_numbers_survive(self):
        assert "2019" in tokenize("published 2019")

    @given(st.text(max_size=100))
    def test_never_raises_property(self, text):
        tokens = tokenize(text)
        assert all(t == t.lower() for t in tokens)
        assert all(t not in STOPWORDS for t in tokens)


class TestPrefixGrams:
    def test_basic(self):
        assert prefix_grams("cifar", min_len=2) == ["ci", "cif", "cifa", "cifar"]

    def test_short_token(self):
        assert prefix_grams("a") == ["a"]
        assert prefix_grams("") == []

    @given(st.text(alphabet="abcdefg", min_size=2, max_size=12))
    def test_all_are_prefixes_property(self, token):
        for gram in prefix_grams(token):
            assert token.startswith(gram)
