"""Unit tests for the query AST, parser, facets, and execution."""

import pytest

from repro.search.index import SearchIndex, ViewerContext, Visibility
from repro.search.query import (
    And,
    FacetRequest,
    FieldMatch,
    MatchAll,
    Not,
    Or,
    Prefix,
    QueryError,
    RangeQuery,
    Term,
    execute,
    parse_query,
)


@pytest.fixture
def index():
    idx = SearchIndex()
    idx.ingest(
        "keras1",
        {
            "datacite": {"title": "CIFAR-10 image classifier"},
            "dlhub": {"model_type": "keras", "domain": "vision", "version": 3},
        },
    )
    idx.ingest(
        "keras2",
        {
            "datacite": {"title": "Inception image classifier"},
            "dlhub": {"model_type": "keras", "domain": "vision", "version": 1},
        },
    )
    idx.ingest(
        "forest",
        {
            "datacite": {"title": "Formation enthalpy predictor"},
            "dlhub": {"model_type": "sklearn", "domain": "materials", "version": 2},
        },
    )
    return idx


class TestAST:
    def test_term(self, index):
        assert Term("classifier").match_ids(index) == {"keras1", "keras2"}

    def test_multiword_term_is_and(self, index):
        assert Term("image classifier").match_ids(index) == {"keras1", "keras2"}

    def test_prefix(self, index):
        assert Prefix("incep").match_ids(index) == {"keras2"}

    def test_field_match_text(self, index):
        assert FieldMatch("dlhub.model_type", "keras").match_ids(index) == {
            "keras1",
            "keras2",
        }

    def test_field_match_numeric(self, index):
        assert FieldMatch("dlhub.version", 2).match_ids(index) == {"forest"}

    def test_range_query(self, index):
        assert RangeQuery("dlhub.version", 2, None).match_ids(index) == {
            "keras1",
            "forest",
        }
        assert RangeQuery("dlhub.version", None, 1).match_ids(index) == {"keras2"}
        assert RangeQuery("dlhub.version", 1, 3).match_ids(index) == {
            "keras1",
            "keras2",
            "forest",
        }

    def test_boolean_combinators(self, index):
        q = And([Term("classifier"), FieldMatch("dlhub.domain", "vision")])
        assert q.match_ids(index) == {"keras1", "keras2"}
        q = Or([FieldMatch("dlhub.domain", "materials"), Prefix("cifar")])
        assert q.match_ids(index) == {"forest", "keras1"}
        q = Not(Term("classifier"))
        assert q.match_ids(index) == {"forest"}

    def test_operator_overloads(self, index):
        q = Term("classifier") & ~Prefix("incep")
        assert q.match_ids(index) == {"keras1"}
        q = Term("enthalpy") | Term("inception")
        assert q.match_ids(index) == {"forest", "keras2"}

    def test_match_all(self, index):
        assert MatchAll().match_ids(index) == {"keras1", "keras2", "forest"}


class TestParser:
    def test_bare_words_and(self, index):
        q = parse_query("image classifier")
        assert q.match_ids(index) == {"keras1", "keras2"}

    def test_field_syntax(self, index):
        q = parse_query("dlhub.model_type:sklearn")
        assert q.match_ids(index) == {"forest"}

    def test_prefix_syntax(self, index):
        assert parse_query("cifar*").match_ids(index) == {"keras1"}

    def test_range_syntax(self, index):
        q = parse_query("dlhub.version:[2 TO *]")
        assert q.match_ids(index) == {"keras1", "forest"}

    def test_or_and_not(self, index):
        q = parse_query("enthalpy OR inception")
        assert q.match_ids(index) == {"forest", "keras2"}
        q = parse_query("classifier NOT inception")
        assert q.match_ids(index) == {"keras1"}

    def test_quoted_value(self, index):
        q = parse_query('dlhub.domain:"materials"')
        assert q.match_ids(index) == {"forest"}

    def test_star_matches_all(self, index):
        assert parse_query("*").match_ids(index) == {"keras1", "keras2", "forest"}

    def test_numeric_field_value_parsed(self, index):
        q = parse_query("dlhub.version:3")
        assert q.match_ids(index) == {"keras1"}

    def test_malformed_queries(self):
        with pytest.raises(QueryError):
            parse_query("OR foo")
        with pytest.raises(QueryError):
            parse_query("foo OR")
        with pytest.raises(QueryError):
            parse_query("foo NOT")
        with pytest.raises(QueryError):
            parse_query('bad "quote')


class TestExecution:
    def test_ranked_results(self, index):
        result = execute(index, parse_query("image classifier"))
        assert result.total == 2
        assert set(result.ids()) == {"keras1", "keras2"}
        assert result.hits[0].score >= result.hits[1].score

    def test_limit(self, index):
        result = execute(index, MatchAll(), limit=2)
        assert len(result.hits) == 2
        assert result.total == 3

    def test_acl_filtering_in_execute(self):
        idx = SearchIndex()
        idx.ingest("pub", {"t": "model"})
        idx.ingest("priv", {"t": "model"}, Visibility.restricted(principals=["vip"]))
        anon = execute(idx, Term("model"))
        assert anon.ids() == ["pub"]
        vip = execute(idx, Term("model"), ViewerContext(principal_id="vip"))
        assert set(vip.ids()) == {"pub", "priv"}

    def test_facets(self, index):
        result = execute(
            index,
            MatchAll(),
            facet_requests=[FacetRequest("dlhub.model_type")],
        )
        facet = result.facets[0]
        assert dict(facet.buckets) == {"keras": 2, "sklearn": 1}
        assert facet.buckets[0] == ("keras", 2)  # descending count

    def test_facet_size_cap(self, index):
        result = execute(
            index, MatchAll(), facet_requests=[FacetRequest("dlhub.domain", size=1)]
        )
        assert len(result.facets[0].buckets) == 1
