"""Unit tests for the inverted index and ACL-filtered access."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.search.index import (
    IndexError_,
    SearchIndex,
    ViewerContext,
    Visibility,
    flatten,
)


@pytest.fixture
def index():
    idx = SearchIndex()
    idx.ingest(
        "m1",
        {
            "datacite": {"title": "CIFAR-10 classifier"},
            "dlhub": {"model_type": "keras", "version": 2},
        },
    )
    idx.ingest(
        "m2",
        {
            "datacite": {"title": "Formation enthalpy forest"},
            "dlhub": {"model_type": "sklearn", "version": 1},
        },
    )
    return idx


class TestFlatten:
    def test_nested_paths(self):
        flat = flatten({"a": {"b": {"c": 1}}, "d": "x"})
        assert flat == {"a.b.c": 1, "d": "x"}

    def test_lists_kept_as_values(self):
        assert flatten({"tags": ["a", "b"]}) == {"tags": ["a", "b"]}


class TestIngestDelete:
    def test_ingest_and_get(self, index):
        doc = index.get("m1")
        assert doc.source["dlhub"]["model_type"] == "keras"
        assert len(index) == 2

    def test_token_postings(self, index):
        assert index.docs_with_token("classifier") == {"m1"}
        assert index.docs_with_token("keras") == {"m1"}

    def test_field_postings(self, index):
        assert index.docs_with_field_token("dlhub.model_type", "sklearn") == {"m2"}

    def test_numeric_fields(self, index):
        assert index.get("m1").numeric_fields["dlhub.version"] == 2.0

    def test_reingest_replaces(self, index):
        index.ingest("m1", {"datacite": {"title": "renamed model"}})
        assert index.docs_with_token("cifar") == set()
        assert index.docs_with_token("renamed") == {"m1"}
        assert len(index) == 2

    def test_delete_removes_postings(self, index):
        index.delete("m1")
        assert "m1" not in index
        assert index.docs_with_token("classifier") == set()

    def test_delete_unknown_raises(self, index):
        with pytest.raises(IndexError_):
            index.delete("ghost")

    def test_prefix_matching(self, index):
        assert index.docs_with_prefix("classif") == {"m1"}
        assert index.docs_with_prefix("f") >= {"m2"}

    def test_generation_bumps(self, index):
        before = index.generation
        index.ingest("m3", {"x": "y"})
        assert index.generation == before + 1


class TestACL:
    def test_public_visible_to_anonymous(self, index):
        assert index.get("m1", ViewerContext.anonymous())

    def test_restricted_hidden_from_anonymous(self):
        idx = SearchIndex()
        idx.ingest("secret", {"title": "x"}, Visibility.restricted(principals=["p1"]))
        with pytest.raises(IndexError_):
            idx.get("secret", ViewerContext.anonymous())

    def test_principal_access(self):
        idx = SearchIndex()
        idx.ingest("doc", {"t": "x"}, Visibility.restricted(principals=["p1"]))
        assert idx.get("doc", ViewerContext(principal_id="p1"))
        with pytest.raises(IndexError_):
            idx.get("doc", ViewerContext(principal_id="p2"))

    def test_group_access(self):
        idx = SearchIndex()
        idx.ingest("doc", {"t": "x"}, Visibility.restricted(groups=["team"]))
        assert idx.get("doc", ViewerContext(principal_id="p9", groups=frozenset(["team"])))

    def test_admin_sees_everything(self):
        idx = SearchIndex()
        idx.ingest("doc", {"t": "x"}, Visibility.restricted(principals=["p1"]))
        assert idx.get("doc", ViewerContext(is_admin=True))

    def test_visible_docs_filtering(self):
        idx = SearchIndex()
        idx.ingest("pub", {"t": "a"})
        idx.ingest("priv", {"t": "b"}, Visibility.restricted(principals=["p1"]))
        anon = idx.visible_docs(ViewerContext.anonymous())
        assert [d.doc_id for d in anon] == ["pub"]


class TestScoring:
    def test_tfidf_prefers_matching_doc(self, index):
        score_m1 = index.tfidf(["classifier"], "m1")
        score_m2 = index.tfidf(["classifier"], "m2")
        assert score_m1 > score_m2 == 0.0

    def test_rare_terms_weigh_more(self):
        idx = SearchIndex()
        for i in range(10):
            idx.ingest(f"d{i}", {"text": "common model"})
        idx.ingest("rare", {"text": "common unicorn model"})
        assert idx.tfidf(["unicorn"], "rare") > idx.tfidf(["common"], "rare")

    @given(st.lists(st.sampled_from(["alpha", "beta", "gamma"]), max_size=5))
    def test_scores_nonnegative_property(self, tokens):
        idx = SearchIndex()
        idx.ingest("d", {"text": "alpha beta"})
        assert idx.tfidf(tokens, "d") >= 0.0
