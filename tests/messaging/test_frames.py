"""Unit tests for multipart frames and envelopes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.messaging.frames import DELIMITER, Frame, Message


class TestFrame:
    def test_frame_holds_bytes(self):
        assert Frame(b"abc").data == b"abc"

    def test_bytearray_coerced(self):
        assert Frame(bytearray(b"xy")).data == b"xy"

    def test_non_bytes_rejected(self):
        with pytest.raises(TypeError):
            Frame("string")  # type: ignore[arg-type]

    def test_len_and_empty(self):
        assert len(Frame(b"abc")) == 3
        assert Frame(b"").empty
        assert not Frame(b"x").empty


class TestMessage:
    def test_of_mixed_parts(self):
        msg = Message.of(b"a", Frame(b"b"))
        assert msg.to_parts() == [b"a", b"b"]

    def test_nbytes(self):
        assert Message.of(b"abc", b"de").nbytes == 5

    def test_push_pop_front(self):
        msg = Message.of(b"x")
        msg2 = msg.push_front(b"id")
        assert msg2.to_parts() == [b"id", b"x"]
        first, rest = msg2.pop_front()
        assert first.data == b"id"
        assert rest.to_parts() == [b"x"]
        # Original is unchanged (messages are persistent-ish).
        assert msg.to_parts() == [b"x"]

    def test_pop_front_empty_raises(self):
        with pytest.raises(IndexError):
            Message().pop_front()

    def test_wrap_unwrap_roundtrip(self):
        payload = Message.of(b"hello", b"world")
        wrapped = payload.wrap(b"client-1")
        assert wrapped.to_parts() == [b"client-1", b"", b"hello", b"world"]
        identity, unwrapped = wrapped.unwrap()
        assert identity == b"client-1"
        assert unwrapped.to_parts() == [b"hello", b"world"]

    def test_unwrap_without_delimiter(self):
        msg = Message.of(b"id", b"payload")
        identity, rest = msg.unwrap()
        assert identity == b"id"
        assert rest.to_parts() == [b"payload"]

    def test_unwrap_empty_raises(self):
        with pytest.raises(ValueError):
            Message().unwrap()

    def test_payload_frames_after_delimiter(self):
        msg = Message.of(b"id", b"", b"data1", b"data2")
        assert [f.data for f in msg.payload_frames()] == [b"data1", b"data2"]

    def test_payload_frames_no_delimiter(self):
        msg = Message.of(b"a", b"b")
        assert [f.data for f in msg.payload_frames()] == [b"a", b"b"]

    def test_indexing_and_iteration(self):
        msg = Message.of(b"a", b"b", b"c")
        assert msg[1].data == b"b"
        assert len(msg) == 3
        assert [f.data for f in msg] == [b"a", b"b", b"c"]

    @given(st.lists(st.binary(max_size=64), min_size=1, max_size=8))
    def test_wrap_unwrap_property(self, parts):
        """wrap(identity) then unwrap() is the identity transform."""
        msg = Message.from_parts(parts)
        identity, restored = msg.wrap(b"me").unwrap()
        assert identity == b"me"
        assert restored.to_parts() == parts

    @given(st.lists(st.binary(max_size=64), max_size=8))
    def test_nbytes_property(self, parts):
        assert Message.from_parts(parts).nbytes == sum(len(p) for p in parts)


def test_delimiter_is_empty():
    assert DELIMITER.empty
