"""Unit tests for ZeroMQ-style socket patterns."""

import pytest

from repro.messaging.frames import Message
from repro.messaging.sockets import (
    AgainError,
    Context,
    SocketError,
    SocketType,
    StateError,
)
from repro.sim.clock import VirtualClock
from repro.sim.latency import NetworkLink


@pytest.fixture
def ctx():
    return Context(VirtualClock())


class TestReqRep:
    def test_basic_request_reply(self, ctx):
        rep = ctx.socket(SocketType.REP).bind("inproc://svc")
        req = ctx.socket(SocketType.REQ).connect("inproc://svc")
        req.send(b"ping")
        request = rep.recv()
        assert request.to_parts() == [b"ping"]
        rep.send(b"pong")
        reply = req.recv()
        assert reply.to_parts() == [b"pong"]

    def test_req_lockstep_enforced(self, ctx):
        rep = ctx.socket(SocketType.REP).bind("inproc://svc")
        req = ctx.socket(SocketType.REQ).connect("inproc://svc")
        req.send(b"one")
        with pytest.raises(StateError):
            req.send(b"two")

    def test_req_recv_before_send_rejected(self, ctx):
        ctx.socket(SocketType.REP).bind("inproc://svc")
        req = ctx.socket(SocketType.REQ).connect("inproc://svc")
        with pytest.raises(StateError):
            req.recv()

    def test_rep_send_before_recv_rejected(self, ctx):
        rep = ctx.socket(SocketType.REP).bind("inproc://svc")
        ctx.socket(SocketType.REQ).connect("inproc://svc")
        with pytest.raises(StateError):
            rep.send(b"unsolicited")

    def test_two_clients_replies_routed_correctly(self, ctx):
        rep = ctx.socket(SocketType.REP).bind("inproc://svc")
        req1 = ctx.socket(SocketType.REQ, identity=b"c1").connect("inproc://svc")
        req2 = ctx.socket(SocketType.REQ, identity=b"c2").connect("inproc://svc")
        req1.send(b"from-1")
        req2.send(b"from-2")
        rep.recv()
        rep.send(b"to-1")
        rep.recv()
        rep.send(b"to-2")
        assert req1.recv().to_parts() == [b"to-1"]
        assert req2.recv().to_parts() == [b"to-2"]


class TestPushPull:
    def test_round_robin_distribution(self, ctx):
        pull_a = ctx.socket(SocketType.PULL).bind("inproc://a")
        pull_b = ctx.socket(SocketType.PULL).bind("inproc://b")
        push = ctx.socket(SocketType.PUSH)
        push.connect("inproc://a")
        push.connect("inproc://b")
        for i in range(4):
            push.send(f"task{i}".encode())
        assert pull_a.pending == 2 and pull_b.pending == 2
        assert pull_a.recv().to_parts() == [b"task0"]
        assert pull_b.recv().to_parts() == [b"task1"]

    def test_pull_cannot_send(self, ctx):
        pull = ctx.socket(SocketType.PULL).bind("inproc://a")
        with pytest.raises(SocketError):
            pull.send(b"nope")

    def test_push_cannot_recv(self, ctx):
        ctx.socket(SocketType.PULL).bind("inproc://a")
        push = ctx.socket(SocketType.PUSH)
        push.connect("inproc://a")
        with pytest.raises(SocketError):
            push.recv()

    def test_recv_empty_raises_again(self, ctx):
        pull = ctx.socket(SocketType.PULL).bind("inproc://a")
        with pytest.raises(AgainError):
            pull.recv()

    def test_push_skips_closed_peer(self, ctx):
        pull_a = ctx.socket(SocketType.PULL).bind("inproc://a")
        pull_b = ctx.socket(SocketType.PULL).bind("inproc://b")
        push = ctx.socket(SocketType.PUSH)
        push.connect("inproc://a")
        push.connect("inproc://b")
        pull_a.close()
        push.send(b"x")
        push.send(b"y")
        assert pull_b.pending == 2


class TestRouterDealer:
    def test_dealer_to_router_carries_identity(self, ctx):
        router = ctx.socket(SocketType.ROUTER).bind("inproc://broker")
        dealer = ctx.socket(SocketType.DEALER, identity=b"worker-1")
        dealer.connect("inproc://broker")
        dealer.send(Message.of(b"ready"))
        msg = router.recv()
        assert msg.to_parts() == [b"worker-1", b"ready"]

    def test_router_routes_by_identity(self, ctx):
        router = ctx.socket(SocketType.ROUTER).bind("inproc://broker")
        d1 = ctx.socket(SocketType.DEALER, identity=b"w1")
        d2 = ctx.socket(SocketType.DEALER, identity=b"w2")
        d1.connect("inproc://broker")
        d2.connect("inproc://broker")
        router.send(Message.of(b"w2", b"job"))
        assert d2.recv().to_parts() == [b"job"]
        assert d1.pending == 0

    def test_router_unknown_identity_raises(self, ctx):
        router = ctx.socket(SocketType.ROUTER).bind("inproc://broker")
        d = ctx.socket(SocketType.DEALER, identity=b"w1")
        d.connect("inproc://broker")
        with pytest.raises(SocketError):
            router.send(Message.of(b"ghost", b"job"))


class TestWiring:
    def test_incompatible_pairs_rejected(self, ctx):
        ctx.socket(SocketType.PULL).bind("inproc://a")
        req = ctx.socket(SocketType.REQ)
        with pytest.raises(SocketError):
            req.connect("inproc://a")

    def test_double_bind_rejected(self, ctx):
        ctx.socket(SocketType.REP).bind("inproc://svc")
        with pytest.raises(SocketError):
            ctx.socket(SocketType.REP).bind("inproc://svc")

    def test_connect_unknown_address(self, ctx):
        with pytest.raises(SocketError):
            ctx.socket(SocketType.REQ).connect("inproc://nowhere")

    def test_close_releases_binding(self, ctx):
        sock = ctx.socket(SocketType.REP).bind("inproc://svc")
        sock.close()
        ctx.socket(SocketType.REP).bind("inproc://svc")  # rebind works

    def test_send_with_no_peers(self, ctx):
        push = ctx.socket(SocketType.PUSH)
        with pytest.raises(SocketError):
            push.send(b"x")

    def test_link_charges_clock(self, ctx):
        pull = ctx.socket(SocketType.PULL).bind("inproc://a")
        push = ctx.socket(SocketType.PUSH)
        push.connect("inproc://a")
        push.link = NetworkLink("test", rtt_s=0.010, bandwidth_bps=1e12)
        push.send(b"payload")
        assert ctx.clock.now() == pytest.approx(0.005)
        assert pull.pending == 1

    def test_message_counters(self, ctx):
        pull = ctx.socket(SocketType.PULL).bind("inproc://a")
        push = ctx.socket(SocketType.PUSH)
        push.connect("inproc://a")
        push.send(b"1")
        push.send(b"2")
        pull.recv()
        assert push.messages_sent == 2
        assert pull.messages_received == 1
