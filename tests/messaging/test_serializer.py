"""Unit tests for size-accounted serialization."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.messaging.serializer import (
    JsonSerializer,
    PickleSerializer,
    SerializationError,
    estimate_nbytes,
)
from repro.sim.clock import VirtualClock


class TestPickleSerializer:
    def test_roundtrip(self):
        s = PickleSerializer()
        obj = {"a": [1, 2, 3], "b": np.arange(4)}
        restored = s.loads(s.dumps(obj))
        assert restored["a"] == [1, 2, 3]
        assert np.array_equal(restored["b"], np.arange(4))

    def test_charges_clock(self):
        clock = VirtualClock()
        s = PickleSerializer(clock)
        s.dumps({"x": 1})
        assert clock.now() > 0

    def test_byte_accounting(self):
        s = PickleSerializer()
        data = s.dumps([1, 2, 3])
        assert s.bytes_serialized == len(data)
        s.loads(data)
        assert s.bytes_deserialized == len(data)

    def test_unpicklable_raises(self):
        s = PickleSerializer()
        with pytest.raises(SerializationError):
            s.dumps(lambda x: x)

    def test_garbage_load_raises(self):
        with pytest.raises(SerializationError):
            PickleSerializer().loads(b"not a pickle")

    @given(
        st.recursive(
            st.none() | st.booleans() | st.integers() | st.text(max_size=20),
            lambda children: st.lists(children, max_size=4)
            | st.dictionaries(st.text(max_size=8), children, max_size=4),
            max_leaves=20,
        )
    )
    def test_roundtrip_property(self, obj):
        s = PickleSerializer()
        assert s.loads(s.dumps(obj)) == obj


class TestJsonSerializer:
    def test_roundtrip_plain(self):
        s = JsonSerializer()
        obj = {"name": "cifar10", "n": 10, "tags": ["image", "cnn"]}
        assert s.loads(s.dumps(obj)) == obj

    def test_ndarray_support(self):
        s = JsonSerializer()
        arr = np.array([[1.5, 2.5], [3.5, 4.5]])
        restored = s.loads(s.dumps({"x": arr}))
        assert np.allclose(restored["x"], arr)

    def test_numpy_scalars(self):
        s = JsonSerializer()
        restored = s.loads(s.dumps({"i": np.int64(3), "f": np.float64(2.5)}))
        assert restored == {"i": 3, "f": 2.5}

    def test_bytes_support(self):
        s = JsonSerializer()
        assert s.loads(s.dumps({"blob": b"\x00\x01"}))["blob"] == b"\x00\x01"

    def test_unserializable_raises(self):
        with pytest.raises(SerializationError):
            JsonSerializer().dumps({"f": lambda: None})

    def test_bad_json_raises(self):
        with pytest.raises(SerializationError):
            JsonSerializer().loads(b"{broken")


class TestEstimate:
    def test_ndarray_estimate_uses_nbytes(self):
        arr = np.zeros(1000)
        assert estimate_nbytes(arr) >= arr.nbytes

    def test_bytes_and_str(self):
        assert estimate_nbytes(b"abcd") == 4
        assert estimate_nbytes("abcd") == 4

    def test_generic_object(self):
        assert estimate_nbytes({"a": 1}) > 0

    def test_unpicklable_falls_back(self):
        assert estimate_nbytes(lambda: None) == 512
