"""Unit tests for the reliable task queue (at-least-once semantics)."""

import pytest

from repro.messaging.queue import QueueEmpty, TaskQueue, UnknownDelivery, servable_topic
from repro.sim.clock import VirtualClock


@pytest.fixture
def queue():
    return TaskQueue(VirtualClock(), visibility_timeout_s=10.0, max_deliveries=3)


class TestBasicFlow:
    def test_put_claim_ack(self, queue):
        queue.put({"task": 1})
        msg = queue.claim()
        assert msg.body == {"task": 1}
        queue.ack(msg.delivery_tag)
        assert len(queue) == 0
        assert queue.inflight_count == 0
        assert queue.total_acked == 1

    def test_fifo_order(self, queue):
        for i in range(3):
            queue.put(i)
        assert [queue.claim().body for _ in range(3)] == [0, 1, 2]

    def test_claim_empty_raises(self, queue):
        with pytest.raises(QueueEmpty):
            queue.claim()

    def test_topics_are_independent(self, queue):
        queue.put("a", topic="alpha")
        queue.put("b", topic="beta")
        assert queue.claim("beta").body == "b"
        assert queue.ready_count("alpha") == 1
        with pytest.raises(QueueEmpty):
            queue.claim("beta")

    def test_len_counts_all_topics(self, queue):
        queue.put(1, topic="a")
        queue.put(2, topic="b")
        assert len(queue) == 2


class TestClaimMany:
    def test_claims_up_to_n_in_fifo_order(self, queue):
        for i in range(5):
            queue.put(i)
        msgs = queue.claim_many(n=3)
        assert [m.body for m in msgs] == [0, 1, 2]
        assert queue.inflight_count == 3
        assert len(queue) == 2

    def test_returns_fewer_when_queue_short(self, queue):
        queue.put("only")
        msgs = queue.claim_many(n=10)
        assert [m.body for m in msgs] == ["only"]

    def test_empty_topic_raises(self, queue):
        with pytest.raises(QueueEmpty):
            queue.claim_many(n=4)

    def test_n_must_be_positive(self, queue):
        queue.put(1)
        with pytest.raises(ValueError):
            queue.claim_many(n=0)

    def test_each_message_settles_independently(self, queue):
        """A partially-failed batch acks the successes and nacks the rest."""
        for i in range(3):
            queue.put(i)
        msgs = queue.claim_many(n=3)
        queue.ack(msgs[0].delivery_tag)
        queue.nack(msgs[1].delivery_tag)
        queue.nack(msgs[2].delivery_tag, requeue=False)
        assert queue.total_acked == 1
        assert queue.claim().body == 1  # requeued
        assert [m.body for m in queue.dead_letters] == [2]

    def test_respects_topic_boundaries(self, queue):
        queue.put("a", topic=servable_topic("noop"))
        queue.put("b", topic=servable_topic("noop"))
        queue.put("c", topic=servable_topic("cifar10"))
        msgs = queue.claim_many(servable_topic("noop"), n=10)
        assert [m.body for m in msgs] == ["a", "b"]
        assert queue.ready_count(servable_topic("cifar10")) == 1


class TestPeek:
    def test_oldest_ready_peeks_without_claiming(self, queue):
        queue.put("head")
        queue.put("tail")
        head = queue.oldest_ready()
        assert head is not None and head.body == "head"
        assert queue.inflight_count == 0
        assert len(queue) == 2

    def test_oldest_ready_empty_returns_none(self, queue):
        assert queue.oldest_ready("nothing-here") is None

    def test_servable_topic_is_stable(self):
        assert servable_topic("noop") == servable_topic("noop")
        assert servable_topic("noop") != servable_topic("cifar10")

    def test_servable_topic_lanes_are_disjoint(self):
        """The sync dispatch lane never collides with the coalescing
        lane, even for the same servable."""
        assert servable_topic("noop", lane="sync") != servable_topic("noop")

    def test_next_inflight_expiry(self, queue):
        assert queue.next_inflight_expiry() is None
        queue.put("a")
        queue.put("b")
        first = queue.claim()
        queue.clock.advance(2.0)
        queue.claim()
        # Earliest claim governs the next expiry.
        assert queue.next_inflight_expiry() == pytest.approx(
            first.claimed_at + queue.visibility_timeout_s
        )
        queue.ack(first.delivery_tag)
        assert queue.next_inflight_expiry() == pytest.approx(
            2.0 + queue.visibility_timeout_s
        )


class TestAckNack:
    def test_double_ack_rejected(self, queue):
        queue.put(1)
        msg = queue.claim()
        queue.ack(msg.delivery_tag)
        with pytest.raises(UnknownDelivery):
            queue.ack(msg.delivery_tag)

    def test_nack_requeues_at_front(self, queue):
        queue.put("first")
        queue.put("second")
        msg = queue.claim()
        queue.nack(msg.delivery_tag)
        assert queue.claim().body == "first"  # requeued ahead of "second"

    def test_nack_without_requeue_dead_letters(self, queue):
        queue.put("poison")
        msg = queue.claim()
        queue.nack(msg.delivery_tag, requeue=False)
        assert len(queue) == 0
        assert [m.body for m in queue.dead_letters] == ["poison"]

    def test_max_deliveries_dead_letters(self, queue):
        queue.put("flaky")
        for _ in range(3):  # max_deliveries = 3
            msg = queue.claim()
            queue.nack(msg.delivery_tag)
        assert len(queue) == 0
        assert len(queue.dead_letters) == 1
        assert queue.dead_letters[0].deliveries == 3


class TestVisibilityTimeout:
    def test_expired_inflight_redelivered(self, queue):
        """A claimed-but-never-acked task is redelivered after the
        visibility timeout — 'ensures tasks are received and executed'."""
        queue.put("important")
        msg = queue.claim()
        assert queue.inflight_count == 1
        queue.clock.advance(10.0)
        redelivered = queue.expire_inflight()
        assert redelivered == 1
        again = queue.claim()
        assert again.body == "important"
        assert again.deliveries == 2
        assert again.message_id == msg.message_id

    def test_unexpired_not_redelivered(self, queue):
        queue.put("x")
        queue.claim()
        queue.clock.advance(5.0)  # < timeout
        assert queue.expire_inflight() == 0
        assert queue.inflight_count == 1

    def test_redelivery_counter(self, queue):
        queue.put("x")
        queue.claim()
        queue.clock.advance(10.0)
        queue.expire_inflight()
        assert queue.total_redelivered == 1


class TestValidation:
    def test_bad_construction(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            TaskQueue(clock, visibility_timeout_s=0)
        with pytest.raises(ValueError):
            TaskQueue(clock, max_deliveries=0)

    def test_unknown_nack(self, queue):
        with pytest.raises(UnknownDelivery):
            queue.nack(999)

    def test_topics_listing(self, queue):
        queue.put(1, topic="x")
        queue.put(2, topic="y")
        queue.claim("x")
        assert queue.topics() == ["y"]


class TestTopicCounters:
    def test_enqueued_count_per_topic(self, queue):
        for _ in range(3):
            queue.put("a", topic="x")
        queue.put("b", topic="y")
        assert queue.enqueued_count("x") == 3
        assert queue.enqueued_count("y") == 1
        assert queue.enqueued_count("ghost") == 0

    def test_enqueued_count_monotonic_across_redelivery(self, queue):
        """Redeliveries are not arrivals: the counter only moves on put,
        so rate estimators reading deltas never double-count."""
        queue.put("a", topic="x")
        queue.claim("x")
        queue.clock.advance(10.0)
        queue.expire_inflight()
        assert queue.enqueued_count("x") == 1
        queue.claim("x")  # redelivered message
        assert queue.enqueued_count("x") == 1


class TestWithdraw:
    def test_withdraw_newest_takes_from_the_tail(self, queue):
        for i in range(4):
            queue.put(f"m{i}", topic="x")
        withdrawn = queue.withdraw_newest("x", 2)
        assert [m.body for m in withdrawn] == ["m3", "m2"]
        assert queue.ready_count("x") == 2
        # FIFO order of the survivors is untouched.
        assert queue.claim("x").body == "m0"

    def test_withdraw_more_than_ready_returns_what_exists(self, queue):
        queue.put("only", topic="x")
        withdrawn = queue.withdraw_newest("x", 10)
        assert [m.body for m in withdrawn] == ["only"]
        assert queue.withdraw_newest("x", 1) == []

    def test_withdraw_does_not_roll_back_arrival_counter(self, queue):
        queue.put("a", topic="x")
        queue.withdraw_newest("x", 1)
        assert queue.enqueued_count("x") == 1

    def test_restore_returns_message_with_original_enqueue_time(self, queue):
        queue.put("a", topic="x")
        msg = queue.withdraw_newest("x", 1)[0]
        queue.clock.advance(5.0)
        queue.restore(msg)
        head = queue.oldest_ready("x")
        assert head is msg
        assert head.enqueued_at == msg.enqueued_at
        assert queue.enqueued_count("x") == 1

    def test_withdraw_validation(self, queue):
        with pytest.raises(ValueError):
            queue.withdraw_newest("x", 0)

    def test_backdated_put_does_not_recount_arrival(self, queue):
        queue.put("a", topic="x")
        msg = queue.withdraw_newest("x", 1)[0]
        queue.clock.advance(2.0)
        resub = queue.put("a", topic="x", enqueued_at=msg.enqueued_at)
        assert resub.enqueued_at == msg.enqueued_at
        # One real arrival, one re-submission: the counter saw one.
        assert queue.enqueued_count("x") == 1
        assert queue.total_enqueued == 1

    def test_backdated_put_rejects_future_timestamps(self, queue):
        with pytest.raises(ValueError):
            queue.put("a", topic="x", enqueued_at=queue.clock.now() + 1.0)
