"""Unit tests for the experiment harnesses (reduced sizes — structure and
shape checks; the full-protocol runs live in benchmarks/)."""

import pytest

from repro.bench.workloads import build_context, percentile_row


@pytest.fixture(scope="module")
def small_ctx():
    return build_context(
        servables=("noop", "cifar10", "matminer_featurize"),
        seed=0,
        jitter=False,
        memoize=False,
    )


class TestWorkloads:
    def test_context_deploys_requested_servables(self, small_ctx):
        assert small_ctx.deployed == ["noop", "cifar10", "matminer_featurize"]
        assert set(small_ctx.testbed.task_manager.registered_servables()) == set(
            small_ctx.deployed
        )

    def test_run_sequential_counts(self, small_ctx):
        records = small_ctx.run_sequential("noop", 5)
        assert len(records) == 5
        assert all(r.ok for r in records)

    def test_fixed_input_stable(self, small_ctx):
        import numpy as np

        a = small_ctx.fixed_input("cifar10")
        b = small_ctx.fixed_input("cifar10")
        assert np.array_equal(a[0], b[0])

    def test_percentile_row(self):
        row = percentile_row([1.0, 2.0, 3.0, 4.0, 5.0])
        assert row["median_ms"] == 3.0
        assert row["n"] == 5
        assert row["p5_ms"] <= row["median_ms"] <= row["p95_ms"]

    def test_clear_caches(self, small_ctx):
        small_ctx.testbed.task_manager.cache.store(("x", (), ()), 1)
        small_ctx.clear_caches()
        assert len(small_ctx.testbed.task_manager.cache) == 0


class TestFig3Harness:
    def test_structure(self, small_ctx):
        from repro.bench.fig3_servables import format_report, run_experiment

        results = run_experiment(
            n_requests=5, servables=("noop", "cifar10"), context=small_ctx
        )
        assert set(results) == {"noop", "cifar10"}
        for metrics in results.values():
            assert set(metrics) == {
                "inference_time",
                "invocation_time",
                "request_time",
            }
            for row in metrics.values():
                assert row["n"] == 5
        report = format_report(results)
        assert "noop" in report and "cifar10" in report


class TestFig4Harness:
    def test_reductions_computed(self):
        from repro.bench.fig4_memoization import run_experiment

        results = run_experiment(n_requests=5, servables=("noop",))
        data = results["noop"]
        assert data["reduction_pct"]["invocation_time"] > 50
        assert 0 < data["reduction_pct"]["request_time"] < 100


class TestFig5And6Harness:
    def test_fig5_series_shape(self, small_ctx):
        from repro.bench.fig5_batching import run_experiment

        results = run_experiment(
            request_counts=(1, 5, 10),
            servables=("noop",),
            context=small_ctx,
        )
        series = results["noop"]
        assert set(series["unbatched"]) == {1, 5, 10}
        assert series["batched"][10] < series["unbatched"][10]

    def test_fig6_linearity(self, small_ctx):
        from repro.bench.fig6_batch_scaling import run_experiment

        results = run_experiment(
            request_counts=(10, 50, 100),
            servables=("noop",),
            context=small_ctx,
        )
        assert results["noop"]["r_squared"] > 0.99
        assert results["noop"]["slope_ms_per_request"] > 0


class TestFig7Harness:
    def test_saturation_detected(self, small_ctx):
        from repro.bench.fig7_scalability import run_experiment

        results = run_experiment(
            n_inferences=300,
            replica_counts=(1, 4, 10, 20),
            servables=("cifar10",),
            context=small_ctx,
        )
        data = results["cifar10"]
        assert data["saturation_replicas"] in (1, 4, 10, 20)
        assert data["peak_throughput_rps"] > 0
        assert len(data["makespan_s"]) == 4


class TestTablesHarness:
    def test_tables_render(self):
        from repro.bench.tables import run_tables

        t = run_tables()
        assert "DLHub" in t["table1"] and "DLHub" in t["table2"]
