"""Unit tests for the pod scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.node import Node, ResourceSpec
from repro.cluster.pod import Pod, PodPhase
from repro.cluster.scheduler import Scheduler, SchedulingError
from repro.containers.image import Image, Layer
from repro.containers.registry import ContainerRegistry
from repro.sim.clock import VirtualClock


def make_env(node_cpus=(8000, 8000)):
    clock = VirtualClock()
    registry = ContainerRegistry()
    image = Image(
        repository="m", tag="v", layers=[Layer("l", extra_bytes=10)], handler=lambda: 1
    )
    registry.push(image)
    nodes = [
        Node(f"n{i}", ResourceSpec(cpu, 2**40), clock, registry)
        for i, cpu in enumerate(node_cpus)
    ]
    return clock, Scheduler(clock), nodes, image


def make_pod(image, cpu=1000, name="p"):
    return Pod(name=name, image=image, request=ResourceSpec(cpu, 2**20))


class TestScheduling:
    def test_schedules_and_starts(self):
        clock, scheduler, nodes, image = make_env()
        pod = make_pod(image)
        node = scheduler.schedule(pod, nodes)
        assert pod.node is node
        assert pod.phase is PodPhase.RUNNING
        assert pod.ready
        assert scheduler.scheduled == 1

    def test_least_loaded_placement(self):
        clock, scheduler, nodes, image = make_env()
        pods = [make_pod(image, name=f"p{i}") for i in range(4)]
        for pod in pods:
            scheduler.schedule(pod, nodes)
        # Round-robins across the two equal nodes via least-loaded.
        placements = [p.node.name for p in pods]
        assert placements.count("n0") == 2 and placements.count("n1") == 2

    def test_charges_schedule_and_start_cost(self):
        clock, scheduler, nodes, image = make_env()
        scheduler.schedule(make_pod(image), nodes)
        assert clock.now() > 0

    def test_no_fit_raises(self):
        clock, scheduler, nodes, image = make_env(node_cpus=(500,))
        with pytest.raises(SchedulingError):
            scheduler.schedule(make_pod(image, cpu=1000), nodes)
        assert scheduler.failures == 1

    def test_cordoned_nodes_skipped(self):
        clock, scheduler, nodes, image = make_env()
        nodes[0].cordon()
        pod = make_pod(image)
        assert scheduler.schedule(pod, nodes).name == "n1"

    def test_schedule_all(self):
        clock, scheduler, nodes, image = make_env()
        pods = [make_pod(image, name=f"p{i}") for i in range(3)]
        scheduled = scheduler.schedule_all(pods, nodes)
        assert len(scheduled) == 3

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(100, 4000), min_size=1, max_size=25))
    def test_capacity_invariant_property(self, cpu_requests):
        """However pods are packed, no node ever exceeds capacity."""
        clock, scheduler, nodes, image = make_env(node_cpus=(8000, 6000, 4000))
        for i, cpu in enumerate(cpu_requests):
            try:
                scheduler.schedule(make_pod(image, cpu=cpu, name=f"p{i}"), nodes)
            except SchedulingError:
                pass
            for node in nodes:
                assert node.allocated.fits_within(node.capacity)
