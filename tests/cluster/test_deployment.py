"""Unit tests for deployments: scaling and self-healing."""

import pytest

from repro.cluster.cluster import KubernetesCluster
from repro.cluster.node import ResourceSpec
from repro.containers.image import Image, Layer
from repro.containers.registry import ContainerRegistry
from repro.sim.clock import VirtualClock


@pytest.fixture
def env():
    clock = VirtualClock()
    registry = ContainerRegistry()
    image = Image(
        repository="dlhub/m",
        tag="v1",
        layers=[Layer("l", extra_bytes=100)],
        handler=lambda: "ok",
    )
    registry.push(image)
    cluster = KubernetesCluster(name="test", clock=clock, registry=registry)
    for i in range(3):
        cluster.add_node(f"n{i}", 16000, 2**40)
    return cluster, image


class TestScaling:
    def test_initial_replicas(self, env):
        cluster, image = env
        d = cluster.create_deployment("m", image, replicas=3)
        assert len(d.ready_pods()) == 3

    def test_scale_up(self, env):
        cluster, image = env
        d = cluster.create_deployment("m", image, replicas=1)
        d.scale(4)
        assert len(d.ready_pods()) == 4

    def test_scale_down_releases_resources(self, env):
        cluster, image = env
        d = cluster.create_deployment(
            "m", image, replicas=4, request=ResourceSpec(2000, 2**30)
        )
        allocated_before = cluster.total_allocated.cpu_millicores
        d.scale(1)
        assert len(d.ready_pods()) == 1
        assert cluster.total_allocated.cpu_millicores == allocated_before - 3 * 2000

    def test_scale_to_zero(self, env):
        cluster, image = env
        d = cluster.create_deployment("m", image, replicas=2)
        d.scale(0)
        assert d.ready_pods() == []

    def test_negative_replicas_rejected(self, env):
        cluster, image = env
        d = cluster.create_deployment("m", image, replicas=1)
        with pytest.raises(ValueError):
            d.scale(-1)

    def test_pod_names_unique(self, env):
        cluster, image = env
        d = cluster.create_deployment("m", image, replicas=3)
        d.scale(1)
        d.scale(4)
        names = [p.name for p in d.pods]
        assert len(names) == len(set(names))


class TestSelfHealing:
    def test_reconcile_replaces_failed(self, env):
        cluster, image = env
        d = cluster.create_deployment("m", image, replicas=3)
        victim = d.ready_pods()[0]
        victim.fail()
        assert len(d.ready_pods()) == 2
        replaced = d.reconcile()
        assert replaced == 1
        assert len(d.ready_pods()) == 3
        assert victim not in d.pods

    def test_reconcile_noop_when_healthy(self, env):
        cluster, image = env
        d = cluster.create_deployment("m", image, replicas=2)
        assert d.reconcile() == 0

    def test_failed_pod_resources_released(self, env):
        cluster, image = env
        d = cluster.create_deployment(
            "m", image, replicas=1, request=ResourceSpec(2000, 2**30)
        )
        before = cluster.total_allocated.cpu_millicores
        d.ready_pods()[0].fail()
        d.reconcile()
        assert cluster.total_allocated.cpu_millicores == before


class TestDelete:
    def test_delete_terminates_all(self, env):
        cluster, image = env
        cluster.create_deployment("m", image, replicas=3)
        cluster.delete_deployment("m")
        assert cluster.pod_count() == 0
        assert cluster.total_allocated.cpu_millicores == 0

    def test_duplicate_name_rejected(self, env):
        cluster, image = env
        cluster.create_deployment("m", image)
        with pytest.raises(ValueError):
            cluster.create_deployment("m", image)

    def test_delete_unknown(self, env):
        cluster, image = env
        with pytest.raises(KeyError):
            cluster.delete_deployment("ghost")
