"""Parallel pod scale-up: N replicas cost max, not sum, of cold starts.

Real kubelets start pods concurrently; ``Deployment.scale`` models that
with :meth:`VirtualClock.concurrent`, so an N-replica scale-up charges
the longest single pod start to the clock instead of N serial starts —
the ROADMAP item that previously restricted the fleet controller's
replica scaling to idle workers.
"""

import pytest

from repro.cluster.cluster import KubernetesCluster
from repro.containers.image import Image, Layer
from repro.containers.registry import ContainerRegistry
from repro.sim import calibration as cal
from repro.sim.clock import ClockError, VirtualClock


class TestConcurrentRegion:
    def test_charges_max_of_branches(self):
        clock = VirtualClock()
        with clock.concurrent() as region:
            for cost in (0.5, 2.0, 1.0):
                with region.branch():
                    clock.advance(cost)
        assert clock.now() == pytest.approx(2.0)

    def test_empty_region_charges_nothing(self):
        clock = VirtualClock()
        with clock.concurrent():
            pass
        assert clock.now() == 0.0

    def test_timestamps_inside_branches_start_at_region_base(self):
        clock = VirtualClock()
        clock.advance(10.0)
        stamps = []
        with clock.concurrent() as region:
            for cost in (1.0, 3.0):
                with region.branch():
                    clock.advance(cost)
                    stamps.append(clock.now())
        assert stamps == [pytest.approx(11.0), pytest.approx(13.0)]
        assert clock.now() == pytest.approx(13.0)

    def test_branch_outside_region_and_nesting_are_errors(self):
        clock = VirtualClock()
        region = clock.concurrent()
        with pytest.raises(ClockError):
            with region.branch():
                pass
        with region:
            with region.branch():
                with pytest.raises(ClockError):
                    with region.branch():
                        pass

    def test_exception_in_branch_keeps_clock_monotonic(self):
        clock = VirtualClock()
        clock.advance(5.0)
        with pytest.raises(RuntimeError):
            with clock.concurrent() as region:
                with region.branch():
                    clock.advance(1.0)
                    raise RuntimeError("pod failed")
        assert clock.now() >= 5.0


class TestDeploymentScale:
    def build_deployment(self, replicas=1):
        clock = VirtualClock()
        registry = ContainerRegistry()
        image = Image(
            repository="dlhub/m",
            tag="v1",
            layers=[Layer("l", extra_bytes=50_000_000)],
            handler=lambda: "ok",
        )
        registry.push(image)
        cluster = KubernetesCluster(name="test", clock=clock, registry=registry)
        for i in range(8):
            cluster.add_node(f"n{i}", 16000, 2**40)
        deployment = cluster.create_deployment("m", image, replicas=replicas)
        return clock, deployment

    def test_scale_up_charges_one_cold_start_not_n(self):
        clock, deployment = self.build_deployment(replicas=1)
        start = clock.now()
        deployment.scale(5)
        elapsed_parallel = clock.now() - start
        assert len(deployment.ready_pods()) == 5

        clock2, deployment2 = self.build_deployment(replicas=1)
        start2 = clock2.now()
        for n in (2, 3, 4, 5):  # one-at-a-time = serial scale-up
            deployment2.scale(n)
        elapsed_serial = clock2.now() - start2
        assert len(deployment2.ready_pods()) == 5
        # Concurrent start: the 4 added pods cost ~one pod start; the
        # serial baseline costs ~4. (Layer cache warmth differs per
        # node, so compare against a loose 2x bound.)
        assert elapsed_parallel < elapsed_serial / 2
        # And no less than a single pod's schedule + container start.
        assert elapsed_parallel >= cal.POD_SCHEDULE_S + cal.CONTAINER_START_S

    def test_scale_down_and_mixed_paths_unchanged(self):
        clock, deployment = self.build_deployment(replicas=4)
        before = clock.now()
        deployment.scale(2)
        assert len(deployment.ready_pods()) == 2
        assert clock.now() == before  # termination is free, as before

    def test_single_replica_add_cost_matches_pre_parallel_behaviour(self):
        """A 1-pod scale-up is degenerate concurrency: identical cost to
        the old serial path (bit-for-bit reproducibility)."""
        clock, deployment = self.build_deployment(replicas=1)
        start = clock.now()
        deployment.scale(2)
        one_pod = clock.now() - start
        assert one_pod >= cal.POD_SCHEDULE_S + cal.CONTAINER_START_S
