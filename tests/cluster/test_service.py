"""Unit tests for services (load balancing) and pod execution."""

import pytest

from repro.cluster.cluster import KubernetesCluster
from repro.cluster.service import NoReadyPods
from repro.containers.image import Image, Layer
from repro.containers.registry import ContainerRegistry
from repro.sim.clock import VirtualClock


@pytest.fixture
def env():
    clock = VirtualClock()
    registry = ContainerRegistry()
    image = Image(
        repository="m",
        tag="v",
        layers=[Layer("l")],
        handler=lambda x=0: x + 1,
    )
    registry.push(image)
    cluster = KubernetesCluster(name="t", clock=clock, registry=registry)
    cluster.add_node("n0", 64000, 2**42)
    deployment = cluster.create_deployment("m", image, replicas=3)
    service = cluster.expose(deployment)
    return cluster, deployment, service


class TestRouting:
    def test_round_robin(self, env):
        _, deployment, service = env
        chosen = [service.route().name for _ in range(6)]
        pods = [p.name for p in deployment.ready_pods()]
        assert chosen == pods * 2

    def test_call_executes(self, env):
        _, _, service = env
        assert service.call(41) == 42

    def test_route_skips_failed(self, env):
        _, deployment, service = env
        deployment.ready_pods()[0].fail()
        names = {service.route().name for _ in range(4)}
        assert len(names) == 2

    def test_no_ready_pods_raises(self, env):
        _, deployment, service = env
        deployment.scale(0)
        with pytest.raises(NoReadyPods):
            service.route()

    def test_route_least_busy(self, env):
        _, deployment, service = env
        pods = deployment.ready_pods()
        pods[0].busy_until = 10.0
        pods[1].busy_until = 5.0
        pods[2].busy_until = 1.0
        assert service.route_least_busy() is pods[2]

    def test_backend_count(self, env):
        _, deployment, service = env
        assert service.backend_count == 3
        deployment.scale(1)
        assert service.backend_count == 1

    def test_served_counter_increments(self, env):
        _, deployment, service = env
        pod = service.route()
        pod.exec(1)
        pod.exec(2)
        assert pod.served == 2

    def test_duplicate_service_rejected(self, env):
        cluster, deployment, _ = env
        with pytest.raises(ValueError):
            cluster.expose(deployment)


class TestClusterFacade:
    def test_petrelkube_shape(self):
        """The SS V-A testbed: 14 nodes, 2x E5-2670, 128 GB RAM."""
        from repro.cluster.cluster import petrelkube

        cluster = petrelkube(VirtualClock(), ContainerRegistry())
        assert len(cluster.nodes) == 14
        assert cluster.nodes[0].capacity.cpu_millicores == 15_000
        assert cluster.nodes[0].capacity.memory_bytes == 125 * 1024**3

    def test_capacity_totals(self, env):
        cluster, _, _ = env
        assert cluster.total_capacity.cpu_millicores == 64000
        assert cluster.total_allocated.cpu_millicores == 3000  # 3 default pods
