"""Unit tests for nodes and resource accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.node import InsufficientResources, Node, ResourceSpec
from repro.containers.registry import ContainerRegistry
from repro.sim.clock import VirtualClock


def make_node(cpu=16000, mem=128 * 1024**3):
    return Node(
        name="n0",
        capacity=ResourceSpec(cpu, mem),
        clock=VirtualClock(),
        registry=ContainerRegistry(),
    )


class TestResourceSpec:
    def test_arithmetic(self):
        a = ResourceSpec(1000, 100)
        b = ResourceSpec(500, 50)
        assert (a + b) == ResourceSpec(1500, 150)
        assert (a - b) == ResourceSpec(500, 50)

    def test_fits_within(self):
        assert ResourceSpec(1000, 100).fits_within(ResourceSpec(1000, 100))
        assert not ResourceSpec(1001, 100).fits_within(ResourceSpec(1000, 100))
        assert not ResourceSpec(1000, 101).fits_within(ResourceSpec(1000, 100))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceSpec(-1, 0)


class TestAllocation:
    def test_allocate_release_cycle(self):
        node = make_node()
        request = ResourceSpec(4000, 8 * 1024**3)
        node.allocate(request)
        assert node.allocated == request
        node.release(request)
        assert node.allocated == ResourceSpec.zero()

    def test_overallocation_rejected(self):
        node = make_node(cpu=1000)
        with pytest.raises(InsufficientResources):
            node.allocate(ResourceSpec(2000, 1))

    def test_cumulative_allocation_respects_capacity(self):
        node = make_node(cpu=1000)
        node.allocate(ResourceSpec(600, 1))
        with pytest.raises(InsufficientResources):
            node.allocate(ResourceSpec(600, 1))

    def test_release_more_than_allocated_rejected(self):
        node = make_node()
        node.allocate(ResourceSpec(100, 100))
        with pytest.raises(ValueError):
            node.release(ResourceSpec(200, 100))

    def test_cordon_blocks_allocation(self):
        node = make_node()
        node.cordon()
        assert not node.can_fit(ResourceSpec(1, 1))
        node.uncordon()
        assert node.can_fit(ResourceSpec(1, 1))

    def test_utilization(self):
        node = make_node(cpu=1000)
        node.allocate(ResourceSpec(250, 0))
        assert node.utilization == pytest.approx(0.25)

    @given(
        st.lists(
            st.tuples(st.integers(1, 2000), st.integers(1, 2**30)),
            max_size=20,
        )
    )
    def test_never_exceeds_capacity_property(self, requests):
        """The allocation invariant: allocated <= capacity always."""
        node = make_node(cpu=8000, mem=2**33)
        for cpu, mem in requests:
            spec = ResourceSpec(cpu, mem)
            try:
                node.allocate(spec)
            except InsufficientResources:
                pass
            assert node.allocated.fits_within(node.capacity)
