"""Unit tests for the HPC batch resource (Cobalt/Slurm-like)."""

import pytest

from repro.cluster.hpc import HPCError, HPCResource, JobState
from repro.containers.image import Image, Layer
from repro.sim.clock import VirtualClock


def make_image():
    return Image(
        repository="dlhub/sim",
        tag="v1",
        layers=[Layer("l", extra_bytes=1000)],
        handler=lambda x: x * 10,
    )


@pytest.fixture
def hpc():
    return HPCResource(VirtualClock(), total_nodes=4, base_queue_wait_s=30.0)


class TestSubmission:
    def test_submit_starts_when_nodes_free(self, hpc):
        job = hpc.submit(make_image(), nodes=2)
        assert job.state is JobState.RUNNING
        assert hpc.free_nodes == 2
        assert len(job.instances) == 2

    def test_queue_wait_charged(self, hpc):
        job = hpc.submit(make_image())
        assert job.queue_wait >= 30.0

    def test_oversized_request_rejected(self, hpc):
        with pytest.raises(HPCError):
            hpc.submit(make_image(), nodes=5)
        with pytest.raises(HPCError):
            hpc.submit(make_image(), nodes=0)

    def test_jobs_queue_when_full(self, hpc):
        hpc.submit(make_image(), nodes=4)
        waiting = hpc.submit(make_image(), nodes=1)
        assert waiting.state is JobState.QUEUED
        assert hpc.queued_jobs() == [waiting]


class TestExecution:
    def test_exec_on_running_job(self, hpc):
        job = hpc.submit(make_image(), nodes=2)
        assert hpc.exec(job, 0, 4) == 40
        assert hpc.exec(job, 1, 5) == 50

    def test_exec_on_queued_job_rejected(self, hpc):
        hpc.submit(make_image(), nodes=4)
        queued = hpc.submit(make_image(), nodes=1)
        with pytest.raises(HPCError):
            hpc.exec(queued, 0, 1)

    def test_instance_index_wraps(self, hpc):
        job = hpc.submit(make_image(), nodes=2)
        assert hpc.exec(job, 5, 1) == 10  # 5 % 2 -> instance 1


class TestReleaseAndBackfill:
    def test_release_frees_and_starts_queued(self, hpc):
        first = hpc.submit(make_image(), nodes=4)
        queued = hpc.submit(make_image(), nodes=2)
        assert queued.state is JobState.QUEUED
        hpc.release(first)
        assert first.state is JobState.COMPLETED
        assert queued.state is JobState.RUNNING
        assert hpc.free_nodes == 2

    def test_fifo_backfill_smaller_job(self, hpc):
        hpc.submit(make_image(), nodes=3)
        big = hpc.submit(make_image(), nodes=4)  # cannot fit yet
        small = hpc.submit(make_image(), nodes=1)  # fits the 1 free node
        assert big.state is JobState.QUEUED
        assert small.state is JobState.RUNNING

    def test_double_release_rejected(self, hpc):
        job = hpc.submit(make_image())
        hpc.release(job)
        with pytest.raises(HPCError):
            hpc.release(job)


class TestCancel:
    def test_cancel_queued(self, hpc):
        hpc.submit(make_image(), nodes=4)
        queued = hpc.submit(make_image(), nodes=1)
        hpc.cancel(queued)
        assert queued.state is JobState.CANCELLED
        assert hpc.queued_jobs() == []

    def test_cancel_running_frees_nodes(self, hpc):
        job = hpc.submit(make_image(), nodes=3)
        hpc.cancel(job)
        assert hpc.free_nodes == 4
        with pytest.raises(HPCError):
            hpc.exec(job, 0, 1)
