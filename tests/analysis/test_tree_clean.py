"""Meta-test: the live tree must be detlint-clean.

This is the tier-1 guard the CI detlint job duplicates: a regression
that reintroduces a wall-clock read, unseeded randomness, unordered
iteration in a decision module, or a hot-path allocation fails locally
with `pytest tests/analysis`, not just in CI.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.domains import HOT_FUNCTIONS

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE = REPO_ROOT / "src" / "repro"


class TestTreeIsClean:
    def test_package_exists_where_expected(self):
        assert (PACKAGE / "analysis" / "domains.py").is_file()

    def test_no_unsuppressed_findings(self):
        findings, scanned = analyze_paths([PACKAGE])
        assert scanned > 100  # the whole tree, not a partial glob
        offending = [f for f in findings if not f.suppressed]
        assert not offending, "\n".join(
            f"{f.location()}: {f.rule} {f.message}" for f in offending
        )

    def test_every_suppression_carries_a_reason(self):
        findings, _ = analyze_paths([PACKAGE])
        waived = [f for f in findings if f.suppressed]
        # The sweep left real, justified pragmas behind (e.g. the
        # reconcile-cadence comprehensions in FleetController.observe);
        # their presence proves suppression machinery runs on the live
        # tree, and every one must carry its why.
        assert waived
        assert all(f.reason for f in waived)

    def test_registered_hot_functions_still_exist(self):
        """HOT001's registry must not rot when code moves."""
        import importlib

        for relpath, qualnames in HOT_FUNCTIONS.items():
            module_name = "repro." + relpath[: -len(".py")].replace("/", ".")
            module = importlib.import_module(module_name)
            for qualname in qualnames:
                cls_name, method = qualname.split(".")
                cls = getattr(module, cls_name)
                assert callable(getattr(cls, method)), qualname
