"""Framework-level tests: pragma parsing, suppression scope, reports, CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    analyze_paths,
    analyze_source,
    parse_pragmas,
    render_human,
    render_json,
)
from repro.analysis.cli import main
from repro.analysis.framework import MALFORMED_PRAGMA, all_rules


class TestPragmaParsing:
    def test_basic_pragma(self):
        src = "x = 1  # detlint: allow[DET001] — bench harness is wall-clock\n"
        (pragma,) = parse_pragmas(src)
        assert pragma.rules == ("DET001",)
        assert pragma.reason == "bench harness is wall-clock"
        assert pragma.line == 1
        assert not pragma.standalone

    def test_multiple_rule_ids(self):
        src = "x = 1  # detlint: allow[DET001, HOT001] — shared justification\n"
        (pragma,) = parse_pragmas(src)
        assert pragma.rules == ("DET001", "HOT001")

    def test_hyphen_separators_accepted(self):
        for sep in ("—", "--", "-"):
            src = f"x = 1  # detlint: allow[DET001] {sep} why\n"
            (pragma,) = parse_pragmas(src)
            assert pragma.reason == "why", sep

    def test_standalone_pragma_detected(self):
        src = "# detlint: allow[DET002] — fixture\nx = 1\n"
        (pragma,) = parse_pragmas(src)
        assert pragma.standalone
        assert pragma.covers(1) and pragma.covers(2)
        assert not pragma.covers(3)

    def test_docstring_mention_is_not_a_pragma(self):
        src = '"""Example: # detlint: allow[DET001] — not real."""\nx = 1\n'
        assert parse_pragmas(src) == []

    def test_missing_reason_is_a_problem(self):
        src = "x = 1  # detlint: allow[DET001]\n"
        (pragma,) = parse_pragmas(src)
        known = frozenset({"DET001"})
        assert any("missing reason" in p for p in pragma.problems(known))

    def test_unknown_rule_is_a_problem(self):
        src = "x = 1  # detlint: allow[DET999] — whatever\n"
        (pragma,) = parse_pragmas(src)
        assert any("unknown rule" in p for p in pragma.problems(frozenset({"DET001"})))

    def test_empty_rule_list_is_a_problem(self):
        src = "x = 1  # detlint: allow[] — whatever\n"
        (pragma,) = parse_pragmas(src)
        assert any("empty rule list" in p for p in pragma.problems(frozenset()))


class TestSuppression:
    def test_same_line_pragma_suppresses(self):
        src = (
            "import time\n"
            "t = time.time()  # detlint: allow[DET001] — test fixture needs real time\n"
        )
        findings = analyze_source(src, "core/example.py")
        flagged = [f for f in findings if f.rule == "DET001"]
        assert flagged and all(f.suppressed for f in flagged)
        assert flagged[0].reason == "test fixture needs real time"

    def test_line_above_pragma_suppresses(self):
        src = (
            "import time\n"
            "# detlint: allow[DET001] — fixture\n"
            "t = time.time()\n"
        )
        findings = analyze_source(src, "core/example.py")
        assert all(f.suppressed for f in findings if f.rule == "DET001")

    def test_pragma_for_other_rule_does_not_suppress(self):
        src = (
            "import time\n"
            "t = time.time()  # detlint: allow[DET002] — wrong rule id\n"
        )
        findings = analyze_source(src, "core/example.py")
        assert any(f.rule == "DET001" and not f.suppressed for f in findings)

    def test_malformed_pragma_is_det000_and_does_not_suppress(self):
        src = (
            "import time\n"
            "t = time.time()  # detlint: allow[DET001]\n"
        )
        findings = analyze_source(src, "core/example.py")
        rules = {f.rule for f in findings}
        assert MALFORMED_PRAGMA in rules
        assert any(f.rule == "DET001" and not f.suppressed for f in findings)

    def test_det000_cannot_be_suppressed(self):
        src = "x = 1  # detlint: allow[DET000] — trying to waive the waiver rule\n"
        findings = analyze_source(src, "core/example.py")
        assert any(
            f.rule == MALFORMED_PRAGMA and not f.suppressed for f in findings
        )

    def test_syntax_error_reports_instead_of_raising(self):
        findings = analyze_source("def broken(:\n", "core/example.py")
        assert findings and findings[0].rule == MALFORMED_PRAGMA
        assert "does not parse" in findings[0].message


class TestReports:
    def _findings(self):
        src = (
            "import time\n"
            "a = time.time()\n"
            "b = time.perf_counter()  # detlint: allow[DET001] — waived for the test\n"
        )
        return analyze_source(src, "core/example.py")

    def test_human_report_lists_live_and_counts_suppressed(self):
        text = render_human(self._findings(), files_scanned=1)
        assert "DET001" in text
        assert "1 finding(s), 1 suppressed" in text

    def test_human_verbose_lists_waivers(self):
        text = render_human(self._findings(), files_scanned=1, verbose=True)
        assert "waived for the test" in text

    def test_json_report_round_trips(self):
        doc = json.loads(render_json(self._findings(), files_scanned=1))
        assert doc["version"] == 1
        assert doc["summary"] == {"unsuppressed": 1, "suppressed": 1}
        rules = {f["rule"] for f in doc["findings"]}
        assert rules == {"DET001"}
        assert any(f["suppressed"] for f in doc["findings"])


class TestRegistryAndPaths:
    def test_all_five_rules_plus_framework_registered(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == ["DET001", "DET002", "DET003", "DET004", "HOT001"]

    def test_analyze_paths_maps_package_relpath(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        target = pkg / "sample.py"
        target.write_text("import time\nt = time.time()\n")
        findings, scanned = analyze_paths([tmp_path])
        assert scanned == 1
        assert findings and findings[0].relpath == "core/sample.py"
        assert findings[0].rule == "DET001"


class TestCLI:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "repro" / "core" / "clean.py"
        target.parent.mkdir(parents=True)
        target.write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        target = tmp_path / "repro" / "core" / "dirty.py"
        target.parent.mkdir(parents=True)
        target.write_text("import time\nt = time.time()\n")
        assert main([str(target)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "repro" / "core" / "dirty.py"
        target.parent.mkdir(parents=True)
        target.write_text("import time\nt = time.time()\n")
        assert main(["--format", "json", str(target)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["unsuppressed"] == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "DET004", "HOT001"):
            assert rule_id in out

    def test_missing_tree_exits_two(self, tmp_path):
        assert main([str(tmp_path / "nothing")]) == 2

    @pytest.mark.parametrize("flag", ["--verbose"])
    def test_verbose_shows_waivers(self, tmp_path, capsys, flag):
        target = tmp_path / "repro" / "core" / "waived.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import time\n"
            "t = time.time()  # detlint: allow[DET001] — demo waiver\n"
        )
        assert main([flag, str(target)]) == 0
        assert "demo waiver" in capsys.readouterr().out
