"""Fixture tests for HOT001 — hot-path allocation lint."""

from __future__ import annotations

from repro.analysis import analyze_source
from tests.analysis.test_det_rules import live


def _runtime_src(body: str) -> str:
    """A fake ServingRuntime with ``body`` inside ``_next_window``."""
    return (
        "class ServingRuntime:\n"
        "    def _next_window(self, now):\n"
        f"{body}"
    )


class TestHOT001:
    def test_flags_list_comprehension_in_hot_function(self):
        src = _runtime_src("        return [t for t in self.topics]\n")
        assert live(analyze_source(src, "core/runtime.py"), "HOT001")

    def test_flags_set_and_dict_comprehensions(self):
        src = _runtime_src(
            "        a = {t for t in self.topics}\n"
            "        b = {t: 0 for t in self.topics}\n"
            "        return a, b\n"
        )
        assert len(live(analyze_source(src, "core/runtime.py"), "HOT001")) == 2

    def test_flags_copy_call(self):
        src = _runtime_src("        return self.windows.copy()\n")
        assert live(analyze_source(src, "core/runtime.py"), "HOT001")

    def test_flags_nested_helper_inside_hot_function(self):
        src = _runtime_src(
            "        def pick():\n"
            "            return [t for t in self.topics]\n"
            "        return pick()\n"
        )
        assert live(analyze_source(src, "core/runtime.py"), "HOT001")

    def test_generator_expression_is_clean(self):
        src = _runtime_src("        return min(t for t in self.topics)\n")
        assert not analyze_source(src, "core/runtime.py")

    def test_other_methods_in_same_module_are_clean(self):
        src = (
            "class ServingRuntime:\n"
            "    def _next_window_scan(self, now):\n"
            "        return [t for t in self.topics]\n"
        )
        assert not analyze_source(src, "core/runtime.py")

    def test_same_method_name_in_other_class_is_clean(self):
        src = (
            "class SomethingElse:\n"
            "    def _next_window(self, now):\n"
            "        return [t for t in self.topics]\n"
        )
        assert not analyze_source(src, "core/runtime.py")

    def test_unregistered_module_is_clean(self):
        src = _runtime_src("        return [t for t in self.topics]\n")
        assert not analyze_source(src, "core/metrics.py")

    def test_all_registered_hot_functions_fire(self):
        cases = {
            "core/runtime.py": ("ServingRuntime", "_next_window"),
            "gateway/gateway.py": ("ServingGateway", "_pump"),
            "gateway/scheduler.py": ("WeightedFairScheduler", "dequeue_eligible"),
            "core/fleet.py": ("FleetController", "observe"),
        }
        for relpath, (cls, method) in cases.items():
            src = (
                f"class {cls}:\n"
                f"    def {method}(self):\n"
                "        return [x for x in self.items]\n"
            )
            assert live(analyze_source(src, relpath), "HOT001"), relpath

    def test_pragma_suppresses_with_reason(self):
        src = _runtime_src(
            "        # detlint: allow[HOT001] — cold branch, runs only on topology change\n"
            "        return [t for t in self.topics]\n"
        )
        findings = analyze_source(src, "core/runtime.py")
        assert not live(findings, "HOT001")
        assert any(f.rule == "HOT001" and f.suppressed for f in findings)
