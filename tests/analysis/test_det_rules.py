"""Fixture tests per determinism rule: positive, negative, and
pragma-suppressed cases, each seeded violation proven to fail."""

from __future__ import annotations

from repro.analysis import analyze_source


def live(findings, rule):
    """Unsuppressed findings for one rule."""
    return [f for f in findings if f.rule == rule and not f.suppressed]


class TestDET001WallClock:
    def test_flags_time_time_in_virtual_clock_domain(self):
        src = "import time\nnow = time.time()\n"
        assert live(analyze_source(src, "core/runtime.py"), "DET001")

    def test_flags_perf_counter_and_monotonic_and_sleep(self):
        src = (
            "import time\n"
            "a = time.perf_counter()\n"
            "b = time.monotonic()\n"
            "time.sleep(1)\n"
        )
        assert len(live(analyze_source(src, "gateway/gateway.py"), "DET001")) == 3

    def test_flags_datetime_now(self):
        src = "import datetime\nstamp = datetime.datetime.now()\n"
        assert live(analyze_source(src, "messaging/queue.py"), "DET001")

    def test_flags_from_import_of_clock_reader(self):
        src = "from time import perf_counter\n"
        assert live(analyze_source(src, "cluster/node.py"), "DET001")

    def test_flags_aliased_module(self):
        src = "import time as wallclock\nt = wallclock.time()\n"
        assert live(analyze_source(src, "core/runtime.py"), "DET001")

    def test_clock_free_packages_are_checked_too(self):
        src = "import time\nt = time.time()\n"
        assert live(analyze_source(src, "ml/layers.py"), "DET001")

    def test_allowlisted_files_are_exempt(self):
        src = "import time\nt = time.perf_counter()\n"
        for relpath in ("sim/clock.py", "bench/dispatch_overhead.py"):
            assert not analyze_source(src, relpath), relpath

    def test_virtual_clock_use_is_clean(self):
        src = "def tick(clock):\n    return clock.now() + 1.0\n"
        assert not analyze_source(src, "core/runtime.py")

    def test_non_clock_time_attribute_is_clean(self):
        src = "import time\nzone = time.tzname\n"
        assert not live(analyze_source(src, "core/runtime.py"), "DET001")

    def test_pragma_suppresses_with_reason(self):
        src = (
            "import time\n"
            "t = time.time()  # detlint: allow[DET001] — calibration needs real time\n"
        )
        findings = analyze_source(src, "core/runtime.py")
        assert not live(findings, "DET001")
        assert any(f.rule == "DET001" and f.suppressed for f in findings)


class TestDET002Randomness:
    def test_flags_module_level_random_calls(self):
        src = "import random\nx = random.random()\ny = random.randint(0, 9)\n"
        assert len(live(analyze_source(src, "core/adaptive.py"), "DET002")) == 2

    def test_flags_bare_random_instance_but_not_seeded(self):
        src = "import random\na = random.Random()\nb = random.Random(42)\n"
        findings = live(analyze_source(src, "sim/latency.py"), "DET002")
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_flags_numpy_default_rng_outside_chokepoint(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert live(analyze_source(src, "ml/layers.py"), "DET002")

    def test_flags_legacy_numpy_random(self):
        src = "import numpy as np\nx = np.random.rand(4)\n"
        assert live(analyze_source(src, "matsci/oqmd.py"), "DET002")

    def test_flags_uuid4(self):
        src = "import uuid\nident = str(uuid.uuid4())\n"
        assert live(analyze_source(src, "core/tasks.py"), "DET002")

    def test_flags_from_import_random(self):
        src = "from random import shuffle\n"
        assert live(analyze_source(src, "core/runtime.py"), "DET002")

    def test_chokepoint_module_is_exempt(self):
        src = "import numpy as np\ngen = np.random.default_rng(7)\n"
        assert not analyze_source(src, "sim/rng.py")

    def test_passed_in_generator_is_clean(self):
        src = (
            "def jitter(rng):\n"
            "    return rng.normal(0.0, 1.0)\n"
        )
        assert not analyze_source(src, "sim/latency.py")

    def test_pragma_suppresses(self):
        src = (
            "import uuid\n"
            "# detlint: allow[DET002] — external correlation id, never ordered or replayed\n"
            "ident = uuid.uuid4()\n"
        )
        assert not live(analyze_source(src, "auth/identity.py"), "DET002")


class TestDET003UnorderedIteration:
    def test_flags_for_loop_over_set_call(self):
        src = "def drop(d, keep):\n    for k in set(d) - keep:\n        del d[k]\n"
        assert live(analyze_source(src, "core/fleet.py"), "DET003")

    def test_flags_list_comprehension_over_known_set_local(self):
        src = (
            "def pick(workers):\n"
            "    ready = {w for w in workers}\n"
            "    return [w for w in ready]\n"
        )
        assert live(analyze_source(src, "core/runtime.py"), "DET003")

    def test_flags_tuple_materialization_of_set(self):
        src = "def order(xs):\n    return tuple(set(xs))\n"
        assert live(analyze_source(src, "gateway/scheduler.py"), "DET003")

    def test_flags_sorted_by_id(self):
        src = "def arrange(xs):\n    return sorted(xs, key=id)\n"
        assert live(analyze_source(src, "gateway/gateway.py"), "DET003")

    def test_flags_id_keyed_mapping(self):
        src = "def note(table, obj, v):\n    table[id(obj)] = v\n"
        assert live(analyze_source(src, "core/obsloop.py"), "DET003")

    def test_sorted_wrap_is_clean(self):
        src = "def drop(d, keep):\n    for k in sorted(set(d) - keep):\n        del d[k]\n"
        assert not analyze_source(src, "core/fleet.py")

    def test_membership_test_is_clean(self):
        src = (
            "def check(workers, alive):\n"
            "    names = {w.name for w in alive}\n"
            "    return [w for w in workers if w.name in names]\n"
        )
        assert not analyze_source(src, "core/fleet.py")

    def test_set_name_in_other_function_does_not_taint(self):
        src = (
            "def a(xs):\n"
            "    items = {x for x in xs}\n"
            "    return len(items)\n"
            "def b(xs):\n"
            "    items = list(xs)\n"
            "    return [x for x in items]\n"
        )
        assert not analyze_source(src, "core/fleet.py")

    def test_outside_decision_modules_is_clean(self):
        src = "def order(xs):\n    return tuple(set(xs))\n"
        assert not analyze_source(src, "ml/layers.py")

    def test_pragma_suppresses(self):
        src = (
            "def drop(d, gone):\n"
            "    # detlint: allow[DET003] — deletion is commutative; order cannot observe\n"
            "    for k in set(d) & gone:\n"
            "        del d[k]\n"
        )
        assert not live(analyze_source(src, "core/fleet.py"), "DET003")


class TestDET004FloatOrder:
    def test_flags_sum_over_set_call(self):
        src = "def total(samples):\n    return sum(set(samples))\n"
        assert live(analyze_source(src, "core/metrics.py"), "DET004")

    def test_flags_sum_over_known_set_local(self):
        src = (
            "def total(samples):\n"
            "    uniq = {s for s in samples}\n"
            "    return sum(uniq)\n"
        )
        assert live(analyze_source(src, "core/adaptive.py"), "DET004")

    def test_flags_sum_of_generator_over_set(self):
        src = (
            "def total(weights):\n"
            "    active = set(weights)\n"
            "    return sum(weights[k] for k in active)\n"
        )
        assert live(analyze_source(src, "core/telemetry.py"), "DET004")

    def test_sum_over_list_is_clean(self):
        src = "def total(samples):\n    return sum(list(samples))\n"
        assert not analyze_source(src, "core/metrics.py")

    def test_sum_over_sorted_set_is_clean(self):
        src = "def total(samples):\n    return sum(sorted(set(samples)))\n"
        assert not analyze_source(src, "core/obsloop.py")

    def test_dict_values_is_clean(self):
        src = "def total(by_tenant):\n    return sum(by_tenant.values())\n"
        assert not analyze_source(src, "core/metrics.py")

    def test_outside_accumulation_modules_is_clean(self):
        src = "def total(samples):\n    return sum(set(samples))\n"
        assert not analyze_source(src, "data/store.py")

    def test_pragma_suppresses(self):
        src = (
            "def total(samples):\n"
            "    # detlint: allow[DET004] — integers only; addition associates exactly\n"
            "    return sum(set(samples))\n"
        )
        assert not live(analyze_source(src, "core/metrics.py"), "DET004")
