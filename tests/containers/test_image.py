"""Unit tests for layered images and the image builder."""

import pytest

from repro.containers.dockerfile import Dockerfile
from repro.containers.image import BASE_IMAGE_SIZES, Image, ImageBuilder, Layer


class TestLayer:
    def test_size_counts_files_and_extra(self):
        layer = Layer("l", files=(("a", b"12"), ("b", b"345")), extra_bytes=10)
        assert layer.size == 15

    def test_digest_deterministic(self):
        a = Layer("l", files=(("a", b"x"),))
        b = Layer("l", files=(("a", b"x"),))
        assert a.digest == b.digest

    def test_digest_sensitive_to_content(self):
        a = Layer("l", files=(("a", b"x"),))
        b = Layer("l", files=(("a", b"y"),))
        assert a.digest != b.digest


class TestImage:
    def _image(self):
        return Image(
            repository="dlhub/test",
            tag="v1",
            layers=[
                Layer("base", extra_bytes=100),
                Layer("code", files=(("/app/main.py", b"print()"),)),
            ],
            entrypoint="python /app/main.py",
        )

    def test_reference(self):
        assert self._image().reference == "dlhub/test:v1"

    def test_size_sums_layers(self):
        assert self._image().size == 100 + len(b"print()")

    def test_digest_stable_across_builds(self):
        assert self._image().digest == self._image().digest

    def test_read_file_shadowing(self):
        image = self._image()
        image.layers.append(Layer("patch", files=(("/app/main.py", b"new"),)))
        assert image.read_file("/app/main.py") == b"new"

    def test_read_missing_file(self):
        with pytest.raises(FileNotFoundError):
            self._image().read_file("/nope")

    def test_file_paths(self):
        assert self._image().file_paths() == ["/app/main.py"]


class TestImageBuilder:
    def _dockerfile(self):
        return (
            Dockerfile()
            .from_("python:3.7-slim")
            .pip_install(["numpy"])
            .copy("components/", "/opt/components/")
            .env("A", "1")
            .entrypoint("serve")
        )

    def test_build_produces_layers(self):
        image = ImageBuilder().build(
            self._dockerfile(),
            {"components/weights.npz": b"wwww"},
            repository="dlhub/m",
        )
        assert image.reference == "dlhub/m:latest"
        # base + pip + copy layers.
        assert len(image.layers) == 3
        assert image.env == {"A": "1"}
        assert image.entrypoint == "serve"

    def test_base_size_applied(self):
        image = ImageBuilder().build(
            self._dockerfile(), {"components/x": b""}
        )
        assert image.layers[0].size == BASE_IMAGE_SIZES["python:3.7-slim"]

    def test_copy_rewrites_paths(self):
        image = ImageBuilder().build(
            self._dockerfile(), {"components/weights.npz": b"w"}
        )
        assert image.read_file("/opt/components/weights.npz") == b"w"

    def test_missing_copy_source_raises(self):
        with pytest.raises(FileNotFoundError):
            ImageBuilder().build(self._dockerfile(), {})

    def test_handler_attached(self):
        def handler(x):
            return x + 1
        image = ImageBuilder().build(
            self._dockerfile(), {"components/x": b""}, handler=handler
        )
        assert image.handler(1) == 2

    def test_identical_builds_identical_digests(self):
        builder = ImageBuilder()
        ctx = {"components/w": b"w"}
        a = builder.build(self._dockerfile(), ctx)
        b = builder.build(self._dockerfile(), ctx)
        assert a.digest == b.digest

    def test_labels_collected(self):
        df = Dockerfile().from_("x").label("dlhub.servable", "m")
        image = ImageBuilder().build(df, {})
        assert image.labels == {"dlhub.servable": "m"}
