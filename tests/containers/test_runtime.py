"""Unit tests for the container runtime (pull/start/exec/failure)."""

import pytest

from repro.containers.image import Image, Layer
from repro.containers.registry import ContainerRegistry
from repro.containers.runtime import ContainerError, ContainerRuntime, ContainerState
from repro.sim import calibration as cal
from repro.sim.clock import VirtualClock


@pytest.fixture
def env():
    clock = VirtualClock()
    registry = ContainerRegistry()
    image = Image(
        repository="dlhub/m",
        tag="v1",
        layers=[Layer("base", extra_bytes=1_000_000)],
        handler=lambda x: x * 2,
    )
    registry.push(image)
    runtime = ContainerRuntime(clock, registry, node_name="n0")
    return clock, runtime, image


class TestPull:
    def test_cold_pull_charges_time(self, env):
        clock, runtime, image = env
        runtime.pull("dlhub/m:v1")
        assert clock.now() == pytest.approx(1_000_000 * cal.IMAGE_PULL_PER_BYTE_S)
        assert runtime.bytes_pulled == 1_000_000

    def test_warm_pull_is_free(self, env):
        clock, runtime, image = env
        runtime.pull("dlhub/m:v1")
        t = clock.now()
        runtime.pull("dlhub/m:v1")
        assert clock.now() == t

    def test_has_image(self, env):
        _, runtime, image = env
        assert not runtime.has_image(image)
        runtime.pull(image.reference)
        assert runtime.has_image(image)


class TestLifecycle:
    def test_create_start_exec(self, env):
        clock, runtime, image = env
        container = runtime.create(image)
        assert container.state is ContainerState.CREATED
        runtime.start(container)
        assert container.alive
        assert runtime.exec(container, 21) == 42
        assert container.exec_count == 1

    def test_start_charges_cold_start(self, env):
        clock, runtime, image = env
        container = runtime.create(image)
        before = clock.now()
        runtime.start(container)
        assert clock.now() - before == pytest.approx(cal.CONTAINER_START_S)

    def test_start_idempotent(self, env):
        clock, runtime, image = env
        container = runtime.run("dlhub/m:v1")
        t = clock.now()
        runtime.start(container)
        assert clock.now() == t

    def test_run_shortcut(self, env):
        _, runtime, image = env
        container = runtime.run("dlhub/m:v1", env={"X": "1"})
        assert container.alive
        assert container.env["X"] == "1"

    def test_stop_and_remove(self, env):
        _, runtime, image = env
        container = runtime.run("dlhub/m:v1")
        runtime.stop(container)
        assert container.state is ContainerState.STOPPED
        runtime.remove(container)
        assert container not in runtime.containers()

    def test_remove_running_rejected(self, env):
        _, runtime, image = env
        container = runtime.run("dlhub/m:v1")
        with pytest.raises(ContainerError):
            runtime.remove(container)


class TestFailureModes:
    def test_exec_on_stopped_raises(self, env):
        _, runtime, image = env
        container = runtime.run("dlhub/m:v1")
        runtime.stop(container)
        with pytest.raises(ContainerError):
            runtime.exec(container, 1)

    def test_kill_then_exec_raises(self, env):
        _, runtime, image = env
        container = runtime.run("dlhub/m:v1")
        runtime.kill(container)
        assert container.state is ContainerState.FAILED
        with pytest.raises(ContainerError):
            runtime.exec(container, 1)

    def test_failed_cannot_restart(self, env):
        _, runtime, image = env
        container = runtime.run("dlhub/m:v1")
        runtime.kill(container)
        with pytest.raises(ContainerError):
            runtime.start(container)

    def test_exec_without_handler(self, env):
        clock, runtime, _ = env
        bare = Image(repository="x", tag="y", layers=[Layer("l")])
        runtime.registry.push(bare)
        container = runtime.run("x:y")
        with pytest.raises(ContainerError):
            runtime.exec(container)

    def test_containers_filter_by_state(self, env):
        _, runtime, image = env
        a = runtime.run("dlhub/m:v1")
        b = runtime.run("dlhub/m:v1")
        runtime.stop(b)
        assert runtime.containers(ContainerState.RUNNING) == [a]
