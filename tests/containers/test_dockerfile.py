"""Unit tests for Dockerfile synthesis and parsing."""

import pytest

from repro.containers.dockerfile import Dockerfile, DockerfileError


class TestBuilderAPI:
    def test_fluent_construction(self):
        df = (
            Dockerfile()
            .from_("python:3.7")
            .pip_install(["numpy", "keras"])
            .copy("model/", "/opt/model/")
            .env("MODE", "serve")
            .entrypoint("python serve.py")
        )
        text = df.render()
        assert text.startswith("FROM python:3.7")
        assert "pip install --no-cache-dir keras numpy" in text
        assert "COPY model/ /opt/model/" in text
        assert "ENV MODE=serve" in text
        assert text.rstrip().endswith("ENTRYPOINT python serve.py")

    def test_from_only_once(self):
        df = Dockerfile().from_("a")
        with pytest.raises(DockerfileError):
            df.from_("b")

    def test_base_image_accessor(self):
        assert Dockerfile().from_("ubuntu:18.04").base_image == "ubuntu:18.04"
        with pytest.raises(DockerfileError):
            Dockerfile().base_image

    def test_copied_paths(self):
        df = Dockerfile().from_("x").copy("a", "/a").copy("b", "/b")
        assert df.copied_paths() == [("a", "/a"), ("b", "/b")]

    def test_labels(self):
        df = Dockerfile().from_("x").label("dlhub.servable", "cifar10")
        assert df.labels() == {"dlhub.servable": "cifar10"}

    def test_empty_pip_install_is_noop(self):
        df = Dockerfile().from_("x").pip_install([])
        assert len(df.instructions) == 1

    def test_apt_install(self):
        df = Dockerfile().from_("x").apt_install(["git", "curl"])
        assert "apt-get install -y curl git" in df.render()


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(DockerfileError):
            Dockerfile().validate()

    def test_must_start_with_from(self):
        df = Dockerfile()
        df.instructions.append(("RUN", "echo hi"))
        with pytest.raises(DockerfileError):
            df.validate()

    def test_unknown_instruction_rejected(self):
        df = Dockerfile().from_("x")
        df.instructions.append(("TELEPORT", "mars"))
        with pytest.raises(DockerfileError):
            df.validate()


class TestParser:
    def test_roundtrip(self):
        original = (
            Dockerfile()
            .from_("python:3.7")
            .run("pip install numpy")
            .copy("src", "/app")
            .entrypoint("python /app/main.py")
        )
        parsed = Dockerfile.parse(original.render())
        assert parsed.instructions == original.instructions

    def test_comments_and_blanks_skipped(self):
        text = "# a comment\n\nFROM python:3.7\n  \nRUN echo hi\n"
        df = Dockerfile.parse(text)
        assert len(df.instructions) == 2

    def test_case_insensitive_instructions(self):
        df = Dockerfile.parse("from python:3.7\nrun echo hi\n")
        assert df.instructions[0] == ("FROM", "python:3.7")

    def test_bad_line_rejected(self):
        with pytest.raises(DockerfileError):
            Dockerfile.parse("FROM python:3.7\nJUSTONEWORD\n")

    def test_unknown_instruction_in_text(self):
        with pytest.raises(DockerfileError):
            Dockerfile.parse("FROM x\nFLY away\n")
