"""Unit tests for the Singularity adapter (unprivileged HPC execution)."""

import pytest

from repro.containers.image import Image, Layer
from repro.containers.singularity import (
    SingularityError,
    SingularityImage,
    SingularityRuntime,
)
from repro.sim.clock import VirtualClock


def make_image(handler=lambda x: x + 1):
    return Image(
        repository="dlhub/hpc-model",
        tag="v1",
        layers=[Layer("base", extra_bytes=10_000_000)],
        handler=handler,
    )


@pytest.fixture
def runtime():
    return SingularityRuntime(VirtualClock(), node_name="theta")


class TestConversion:
    def test_from_docker(self):
        sif = SingularityImage.from_docker(make_image())
        assert sif.name.endswith(".sif")
        assert sif.size == 10_000_000

    def test_handlerless_image_rejected(self):
        bare = Image(repository="x", tag="y", layers=[Layer("l")])
        with pytest.raises(SingularityError):
            SingularityImage.from_docker(bare)

    def test_build_charges_flatten_cost(self, runtime):
        runtime.build(make_image())
        expected = 10_000_000 * SingularityRuntime.BUILD_PER_BYTE_S
        assert runtime.clock.now() == pytest.approx(expected)

    def test_build_cached_by_digest(self, runtime):
        image = make_image()
        runtime.build(image)
        t = runtime.clock.now()
        runtime.build(image)
        assert runtime.clock.now() == t


class TestExecution:
    def test_start_and_exec(self, runtime):
        sif = runtime.build(make_image())
        instance = runtime.start(sif)
        assert runtime.exec(instance, 41) == 42
        assert instance.exec_count == 1

    def test_start_cheaper_than_docker(self, runtime):
        from repro.sim import calibration as cal

        assert SingularityRuntime.START_COST_S < cal.CONTAINER_START_S

    def test_stopped_instance_rejects_exec(self, runtime):
        sif = runtime.build(make_image())
        instance = runtime.start(sif)
        runtime.stop(instance)
        with pytest.raises(SingularityError):
            runtime.exec(instance, 1)

    def test_unprivileged_contrast_with_clipper(self):
        """The structural point of SS III-B4: Clipper needs privileged
        Docker; Singularity path doesn't — verified via ClipperBackend."""
        from repro.cluster.cluster import petrelkube
        from repro.containers.registry import ContainerRegistry
        from repro.serving.base import ModelSpec
        from repro.serving.clipper import ClipperBackend, PrivilegeError
        from repro.sim.latency import NetworkLink

        clock = VirtualClock()
        cluster = petrelkube(clock, ContainerRegistry())
        for node in cluster.nodes:
            node.runtime.privileged = False  # HPC-style nodes
        clipper = ClipperBackend(
            clock, cluster, NetworkLink("l", 0.0001), memoization=False
        )
        spec = ModelSpec.from_calibration("m", "noop", lambda: "hi")
        with pytest.raises(PrivilegeError):
            clipper.deploy(spec)
