"""Unit tests for the container registry."""

import pytest

from repro.containers.image import Image, Layer
from repro.containers.registry import ContainerRegistry, RegistryError


def make_image(repo="dlhub/m", tag="v1", payload=b"payload"):
    return Image(
        repository=repo,
        tag=tag,
        layers=[Layer("base", extra_bytes=100), Layer("code", files=(("f", payload),))],
    )


@pytest.fixture
def registry():
    return ContainerRegistry()


class TestPushPull:
    def test_push_pull_roundtrip(self, registry):
        image = make_image()
        digest = registry.push(image)
        assert digest == image.digest
        assert registry.pull("dlhub/m:v1") is image
        assert registry.pushes == 1 and registry.pulls == 1

    def test_pull_unknown(self, registry):
        with pytest.raises(RegistryError):
            registry.pull("ghost:latest")

    def test_exists(self, registry):
        registry.push(make_image())
        assert registry.exists("dlhub/m:v1")
        assert not registry.exists("dlhub/m:v2")

    def test_metadata_pull_not_counted(self, registry):
        registry.push(make_image())
        registry.pull_metadata("dlhub/m:v1")
        assert registry.pulls == 0

    def test_resolve_digest(self, registry):
        image = make_image()
        registry.push(image)
        assert registry.resolve_digest("dlhub/m:v1") == image.digest


class TestTagsRepos:
    def test_tags_listing(self, registry):
        registry.push(make_image(tag="v1"))
        registry.push(make_image(tag="v2", payload=b"other"))
        assert registry.tags("dlhub/m") == ["v1", "v2"]

    def test_repositories_listing(self, registry):
        registry.push(make_image(repo="a/x"))
        registry.push(make_image(repo="b/y"))
        assert registry.repositories() == ["a/x", "b/y"]

    def test_retag_overwrites(self, registry):
        registry.push(make_image(payload=b"one"))
        newer = make_image(payload=b"two")
        registry.push(newer)
        assert registry.pull("dlhub/m:v1") is newer


class TestLayerDedup:
    def test_missing_bytes_full_for_cold_cache(self, registry):
        image = make_image()
        registry.push(image)
        assert registry.missing_layer_bytes(image, set()) == image.size

    def test_missing_bytes_zero_when_cached(self, registry):
        image = make_image()
        registry.push(image)
        cached = {layer.digest for layer in image.layers}
        assert registry.missing_layer_bytes(image, cached) == 0

    def test_shared_base_layer_dedup(self, registry):
        a = make_image(repo="dlhub/a", payload=b"aaa")
        b = make_image(repo="dlhub/b", payload=b"bbb")
        registry.push(a)
        registry.push(b)
        cached = {a.layers[0].digest}  # shared base layer
        missing = registry.missing_layer_bytes(b, cached)
        assert missing == b.layers[1].size  # only the unique code layer
