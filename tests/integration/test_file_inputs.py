"""Integration tests for file-input serving (Table II "Files" + the
Globus data-access integration of SS I / SS II)."""

import numpy as np
import pytest

from repro.core.client import DLHubClient
from repro.core.servable import PythonFunctionServable
from repro.core.toolbox import MetadataBuilder
from repro.data.endpoint import Endpoint, EndpointACL, EndpointError


@pytest.fixture(scope="module")
def env():
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False)

    # A servable that consumes raw file bytes: CSV of numbers -> stats.
    md = (
        MetadataBuilder("csv_stats", "CSV statistics")
        .creator("Analyst")
        .model_type("python_function")
        .input_type("file")
        .output_type("dict")
        .build()
    )

    def stats(data: bytes) -> dict:
        values = np.array(
            [float(x) for x in data.decode().replace("\n", ",").split(",") if x.strip()]
        )
        return {"n": int(values.size), "mean": float(values.mean()), "max": float(values.max())}

    testbed.publish_and_deploy(PythonFunctionServable(md, stats, key="matminer_util"))
    client = DLHubClient(testbed.management, testbed.token)

    # The user's data endpoint.
    endpoint = Endpoint(
        "lab-instrument",
        testbed.store,
        EndpointACL(owner_id=testbed.user.identity_id),
        latency_class="wan",
    )
    endpoint.put("run42.csv", b"1.0,2.0,3.0\n4.0,5.0", testbed.user)
    return testbed, client, endpoint


class TestFileServing:
    def test_run_file_fetches_and_serves(self, env):
        testbed, client, endpoint = env
        result = client.run_file("csv_stats", endpoint, "run42.csv")
        assert result == {"n": 5, "mean": 3.0, "max": 5.0}

    def test_transfer_cost_charged(self, env):
        testbed, client, endpoint = env
        big = b"1.0," * 2_000_000
        endpoint.put("big.csv", big + b"2.0", testbed.user)
        before = testbed.clock.now()
        client.run_file("csv_stats", endpoint, "big.csv")
        big_cost = testbed.clock.now() - before
        before = testbed.clock.now()
        client.run_file("csv_stats", endpoint, "run42.csv")
        small_cost = testbed.clock.now() - before
        assert big_cost > small_cost

    def test_endpoint_acl_enforced_with_caller_identity(self, env):
        """A caller without read access to the endpoint is denied even
        though the service itself could read it."""
        testbed, _, endpoint = env
        _, stranger_token = testbed.new_user("file_stranger")
        stranger_client = DLHubClient(testbed.management, stranger_token)
        with pytest.raises(EndpointError):
            stranger_client.run_file("csv_stats", endpoint, "run42.csv")

    def test_missing_file(self, env):
        testbed, client, endpoint = env
        from repro.data.store import ObjectNotFound

        with pytest.raises(ObjectNotFound):
            client.run_file("csv_stats", endpoint, "nope.csv")

    def test_task_failure_on_bad_content(self, env):
        testbed, client, endpoint = env
        endpoint.put("garbage.csv", b"not,numbers,at,all", testbed.user)
        with pytest.raises(RuntimeError, match="task failed"):
            client.run_file("csv_stats", endpoint, "garbage.csv")
