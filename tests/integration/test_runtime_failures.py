"""Queue failure paths under the ServingRuntime fleet.

The at-least-once contract must survive server-side batching: a worker
that claims a micro-batch and dies never loses the work — the visibility
timeout lapses and the requests are redelivered to a *different* Task
Manager; poisoned work dead-letters after ``max_deliveries``.
"""


from repro.core.runtime import ServingRuntime
from repro.core.task_manager import TaskManager
from repro.core.tasks import TaskRequest
from repro.core.zoo import build_zoo
from repro.messaging.queue import TaskQueue, servable_topic


def build_fleet(visibility_timeout_s=5.0, max_deliveries=2):
    """Two workers, noop replicated on both, over a short-fuse queue."""
    from repro.cluster.cluster import petrelkube
    from repro.core.executors import ParslServableExecutor
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    # A dedicated queue so the test controls timeout/delivery bounds.
    queue = TaskQueue(
        testbed.clock,
        visibility_timeout_s=visibility_timeout_s,
        max_deliveries=max_deliveries,
    )
    workers = []
    for i in range(2):
        cluster = petrelkube(testbed.clock, testbed.registry)
        tm = TaskManager(testbed.clock, queue, name=f"worker-{i}")
        tm.add_executor(
            "parsl",
            ParslServableExecutor(
                testbed.clock, cluster, testbed.latency.task_manager_to_cluster
            ),
        )
        workers.append(tm)
    runtime = ServingRuntime(testbed.clock, queue, workers, max_batch_size=8)
    published = testbed.management.publish(testbed.token, zoo["noop"])
    runtime.place(zoo["noop"], published.build.image, copies=2)
    return testbed, runtime, queue


class TestWorkerCrashRedelivery:
    def test_crashed_claim_redelivers_to_other_worker(self):
        """Worker 0 claims a micro-batch and dies before acking; after
        ``expire_inflight`` the work is served by worker 1."""
        testbed, runtime, queue = build_fleet()
        for _ in range(3):
            runtime.submit(TaskRequest("noop"))
        # Worker 0 claims the whole window, then crashes (never acks).
        crashed = runtime.workers[0]
        doomed = queue.claim_many(servable_topic("noop"), runtime.max_batch_size)
        assert len(doomed) == 3 and queue.inflight_count == 3
        runtime.mark_down(crashed.name)
        # Visibility timeout lapses; drain redelivers and re-dispatches.
        testbed.clock.advance(queue.visibility_timeout_s)
        results = runtime.drain()
        assert len(results) == 3
        assert all(r.result.ok for r in results)
        assert {r.worker for r in results} == {runtime.workers[1].name}
        assert queue.total_redelivered == 3
        assert queue.inflight_count == 0 and len(queue) == 0

    def test_redelivered_batch_keeps_batching(self):
        """Redelivered requests coalesce again on the surviving worker."""
        testbed, runtime, queue = build_fleet()
        for _ in range(4):
            runtime.submit(TaskRequest("noop"))
        queue.claim_many(servable_topic("noop"), runtime.max_batch_size)
        runtime.mark_down(runtime.workers[0].name)
        testbed.clock.advance(queue.visibility_timeout_s)
        results = runtime.drain()
        assert {r.batch_size for r in results} == {4}
        assert all(r.result.ok for r in results)
        assert queue.total_redelivered == 4

    def test_drain_waits_out_visibility_timeout_itself(self):
        """serve()/drain() sleeps until the in-flight expiry rather than
        declaring the queue drained — no manual clock advance needed."""
        testbed, runtime, queue = build_fleet()
        for _ in range(2):
            runtime.submit(TaskRequest("noop"))
        queue.claim_many(servable_topic("noop"), runtime.max_batch_size)
        runtime.mark_down(runtime.workers[0].name)
        results = runtime.drain()  # advances virtual time to the expiry
        assert len(results) == 2 and all(r.result.ok for r in results)
        assert queue.total_redelivered == 2

    def test_recovered_worker_serves_again(self):
        testbed, runtime, queue = build_fleet()
        primary = runtime.placement()["noop"][0]
        runtime.mark_down(primary)
        runtime.submit(TaskRequest("noop"))
        assert runtime.drain()[0].worker != primary
        runtime.mark_up(primary)
        runtime.submit(TaskRequest("noop"))
        assert runtime.drain()[0].worker == primary


class TestDeadLetter:
    def test_poisoned_work_dead_letters_after_max_deliveries(self):
        """Every delivery crashes its claimant; after ``max_deliveries``
        the message parks in the dead-letter list instead of looping."""
        testbed, runtime, queue = build_fleet(max_deliveries=2)
        runtime.submit(TaskRequest("noop"))
        for _ in range(queue.max_deliveries):
            claimed = queue.claim_many(servable_topic("noop"), 8)
            assert len(claimed) == 1  # still being redelivered
            testbed.clock.advance(queue.visibility_timeout_s)
            queue.expire_inflight()
        assert len(queue) == 0
        assert len(queue.dead_letters) == 1
        assert queue.dead_letters[0].deliveries == queue.max_deliveries
        # The runtime has nothing left to serve — the loop terminates.
        assert runtime.drain() == []

    def test_dead_letter_does_not_block_healthy_traffic(self):
        testbed, runtime, queue = build_fleet(max_deliveries=1)
        runtime.submit(TaskRequest("noop"))
        queue.claim_many(servable_topic("noop"), 8)
        testbed.clock.advance(queue.visibility_timeout_s)
        queue.expire_inflight()  # dead-letters immediately (max_deliveries=1)
        assert len(queue.dead_letters) == 1
        runtime.submit(TaskRequest("noop"))
        results = runtime.drain()
        assert len(results) == 1 and results[0].result.ok
