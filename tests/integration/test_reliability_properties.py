"""Property-based reliability tests: random fault patterns, random
operation sequences — the at-least-once and consistency guarantees must
hold under all of them."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.containers.dockerfile import Dockerfile
from repro.messaging.queue import QueueEmpty, TaskQueue
from repro.search.index import SearchIndex
from repro.sim.clock import VirtualClock


class TestQueueAtLeastOnce:
    @settings(max_examples=40, deadline=None)
    @given(
        crash_pattern=st.lists(st.booleans(), min_size=1, max_size=8),
    )
    def test_task_survives_any_crash_pattern_property(self, crash_pattern):
        """For any interleaving of crash/ack attempts (with at least one
        eventual success within the delivery budget), the task is either
        processed exactly once or dead-lettered — never silently lost."""
        clock = VirtualClock()
        queue = TaskQueue(clock, visibility_timeout_s=5.0, max_deliveries=20)
        queue.put("the-task")
        processed = 0
        for crashes in crash_pattern:
            try:
                msg = queue.claim()
            except QueueEmpty:
                break
            if crashes:
                clock.advance(5.0)
                queue.expire_inflight()
            else:
                queue.ack(msg.delivery_tag)
                processed += 1
                break
        # Conservation: the task is processed, still pending, in flight,
        # or dead-lettered — accounted for exactly once somewhere.
        accounted = (
            processed
            + len(queue)
            + queue.inflight_count
            + len(queue.dead_letters)
        )
        assert accounted == 1

    @settings(max_examples=30, deadline=None)
    @given(n_tasks=st.integers(1, 20), n_crashes=st.integers(0, 5))
    def test_all_tasks_eventually_processed_property(self, n_tasks, n_crashes):
        """A worker that crashes n times then behaves still drains the
        queue completely (within the delivery budget)."""
        clock = VirtualClock()
        queue = TaskQueue(clock, visibility_timeout_s=1.0, max_deliveries=n_crashes + 2)
        for i in range(n_tasks):
            queue.put(i)
        crashes_left = n_crashes
        seen = []
        while True:
            try:
                msg = queue.claim()
            except QueueEmpty:
                if queue.inflight_count == 0:
                    break
                clock.advance(1.0)
                queue.expire_inflight()
                continue
            if crashes_left > 0:
                crashes_left -= 1
                clock.advance(1.0)
                queue.expire_inflight()
            else:
                seen.append(msg.body)
                queue.ack(msg.delivery_tag)
        assert sorted(seen) == list(range(n_tasks))
        assert not queue.dead_letters


class TestSearchConsistencyUnderChurn:
    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["ingest", "delete", "reingest"]),
                st.integers(0, 5),
            ),
            max_size=25,
        )
    )
    def test_postings_match_documents_property(self, ops):
        """After any ingest/delete/reingest sequence, token postings agree
        exactly with the live document set."""
        index = SearchIndex()
        live: dict[str, str] = {}
        words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
        for op, i in ops:
            doc_id = f"d{i}"
            if op == "ingest" or (op == "reingest" and doc_id in live):
                word = words[(i + len(live)) % len(words)]
                index.ingest(doc_id, {"text": word})
                live[doc_id] = word
            elif op == "delete" and doc_id in live:
                index.delete(doc_id)
                del live[doc_id]
        assert len(index) == len(live)
        for word in words:
            expected = {d for d, w in live.items() if w == word}
            assert index.docs_with_token(word) == expected


class TestDockerfileRoundtrip:
    instructions = st.lists(
        st.sampled_from(
            [
                ("RUN", "pip install numpy"),
                ("COPY", "src /app"),
                ("ENV", "MODE=serve"),
                ("WORKDIR", "/opt"),
                ("LABEL", 'team="dlhub"'),
                ("EXPOSE", "8500"),
            ]
        ),
        max_size=8,
    )

    @settings(max_examples=40, deadline=None)
    @given(body=instructions)
    def test_render_parse_roundtrip_property(self, body):
        df = Dockerfile([("FROM", "python:3.7"), *body])
        restored = Dockerfile.parse(df.render())
        assert restored.instructions == df.instructions


class TestDeterminismEndToEnd:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 100))
    def test_full_stack_deterministic_in_seed_property(self, seed):
        """Same seed -> bit-identical request timings, any seed."""
        from repro.core.testbed import build_testbed
        from repro.core.zoo import build_zoo

        def run(seed):
            testbed = build_testbed(seed=seed, jitter=True)
            zoo = build_zoo(seed=seed, oqmd_entries=30, n_estimators=2)
            testbed.publish_and_deploy(zoo["noop"])
            return testbed.management.run(testbed.token, "noop").request_time

        assert run(seed) == pytest.approx(run(seed), rel=1e-12)
