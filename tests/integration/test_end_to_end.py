"""Integration tests: full publish -> build -> deploy -> serve round trips."""

import numpy as np
import pytest

from repro.core.client import DLHubClient
from repro.core.pipeline import Pipeline
from repro.core.zoo import ZOO_NAMES, build_zoo, sample_input


@pytest.fixture(scope="module")
def full_deployment():
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False)
    zoo = build_zoo(oqmd_entries=60, n_estimators=5)
    for name in ZOO_NAMES:
        testbed.publish_and_deploy(zoo[name], replicas=1)
    client = DLHubClient(testbed.management, testbed.token)
    return testbed, zoo, client


class TestPublishServeRoundTrip:
    def test_all_six_servables_serve_correctly(self, full_deployment):
        testbed, zoo, client = full_deployment
        for name in ZOO_NAMES:
            args = sample_input(name)
            via_service = client.run(name, *args)
            locally = zoo[name].run(*args)
            if isinstance(via_service, np.ndarray):
                assert np.allclose(via_service, locally)
            else:
                assert via_service == locally

    def test_served_model_output_matches_published_components(self, full_deployment):
        """Reproducibility: restoring the published weight archive yields a
        model that agrees with the served one."""
        testbed, zoo, client = full_deployment
        from repro.ml.models.cifar10 import build_cifar10_cnn
        from repro.ml.serialization import load_weights

        blob = zoo["cifar10"].components["weights.npz"]
        restored = load_weights(build_cifar10_cnn(seed=999), blob)
        x = sample_input("cifar10")[0]
        assert np.allclose(restored.predict(x), client.run("cifar10", x))

    def test_container_images_in_registry_for_all(self, full_deployment):
        testbed, _, _ = full_deployment
        for name in ZOO_NAMES:
            assert testbed.registry.exists(f"dlhub/{name}:v1")

    def test_cluster_hosts_one_pod_per_servable(self, full_deployment):
        testbed, _, _ = full_deployment
        assert testbed.cluster.pod_count() >= len(ZOO_NAMES)

    def test_search_finds_everything_published(self, full_deployment):
        _, _, client = full_deployment
        assert client.search("*", limit=100).total >= len(ZOO_NAMES)


class TestComponentStaging:
    def test_publish_with_endpoint_staging(self, full_deployment):
        """Model components staged from a user endpoint (the S3/Globus
        upload path of SS IV-A) end up inside the servable."""
        testbed, _, _ = full_deployment
        from repro.core.servable import PythonFunctionServable
        from repro.core.toolbox import MetadataBuilder
        from repro.data.endpoint import Endpoint, EndpointACL

        user, token = testbed.new_user("uploader")
        laptop = Endpoint(
            "uploader-laptop",
            testbed.store,
            EndpointACL(owner_id=user.identity_id),
            latency_class="wan",
        )
        laptop.put("weights.bin", b"\x01" * 2048, user)
        md = (
            MetadataBuilder("staged_model", "Staged")
            .creator("Uploader")
            .model_type("python_function")
            .input_type("dict")
            .output_type("dict")
            .build()
        )
        servable = PythonFunctionServable(md, lambda x: x)
        published = testbed.management.publish(
            token,
            servable,
            component_paths=["weights.bin"],
            source_endpoint=laptop,
        )
        assert servable.components["weights.bin"] == b"\x01" * 2048
        assert published.build.image.read_file(
            "/opt/servable/components/weights.bin"
        ) == b"\x01" * 2048


class TestPipelineEndToEnd:
    def test_formation_enthalpy_pipeline(self, full_deployment):
        testbed, zoo, client = full_deployment
        pipeline = (
            Pipeline("e2e_enthalpy")
            .add_step("matminer_util")
            .add_step("matminer_featurize")
            .add_step("matminer_model")
        )
        client.register_pipeline(pipeline)
        served = client.run_pipeline("e2e_enthalpy", "MgO")
        manual = zoo["matminer_model"].run(
            zoo["matminer_featurize"].run(zoo["matminer_util"].run("MgO"))
        )
        assert served == pytest.approx(manual)

    def test_pipeline_cheaper_than_separate_requests(self, full_deployment):
        testbed, _, client = full_deployment
        pipe_result = testbed.management.run_pipeline(
            testbed.token, "e2e_enthalpy", "CaO"
        )
        # Three separate requests each pay the MS->TM round trip.
        testbed.task_manager.cache.clear()
        separate = 0.0
        separate += client.run_detailed("matminer_util", "CaO").request_time
        fracs = {"Ca": 0.5, "O": 0.5}
        separate += client.run_detailed("matminer_featurize", fracs).request_time
        features = sample_input("matminer_model")[0]
        separate += client.run_detailed("matminer_model", features).request_time
        assert pipe_result.request_time < separate


class TestMultiTenancy:
    def test_two_users_independent_namespaces(self, full_deployment):
        testbed, _, _ = full_deployment
        from repro.core.servable import PythonFunctionServable
        from repro.core.toolbox import MetadataBuilder

        def publish_as(username, value):
            _, token = testbed.new_user(username)
            md = (
                MetadataBuilder("shared_name", f"{username}'s model")
                .creator(username)
                .model_type("python_function")
                .input_type("dict")
                .output_type("dict")
                .build()
            )
            return testbed.management.publish(
                token, PythonFunctionServable(md, lambda x, v=value: v)
            )

        a = publish_as("alice_e2e", "from-alice")
        b = publish_as("bob_e2e", "from-bob")
        assert a.full_name == "alice_e2e/shared_name"
        assert b.full_name == "bob_e2e/shared_name"
        from repro.core.repository import RepositoryError

        with pytest.raises(RepositoryError, match="ambiguous"):
            testbed.repository.resolve("shared_name")
