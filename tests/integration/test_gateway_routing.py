"""Integration: with a gateway attached, no Management Service
invocation path reaches a Task Manager except through the ServingRuntime
(the PR's unified-routing acceptance criterion), and tenant accounting
holds end to end — including through the SDK client."""

import pytest

from repro.core.client import DLHubClient
from repro.core.pipeline import Pipeline, PipelineStep
from repro.core.tasks import TaskStatus
from repro.core.testbed import build_testbed
from repro.core.zoo import build_zoo, sample_input
from repro.gateway import (
    AdmissionRejected,
    TenantPolicy,
    TenantPolicyTable,
)
from repro.messaging.queue import servable_topic


@pytest.fixture()
def deployment():
    testbed = build_testbed(jitter=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    policies = TenantPolicyTable()
    policies.register(TenantPolicy(name="lab"))
    policies.set_default("lab")
    gateway = testbed.enable_gateway(policies=policies, n_workers=2)
    for name in ("noop", "matminer_util", "matminer_featurize", "matminer_model"):
        published = testbed.management.publish(testbed.token, zoo[name])
        gateway.runtime.place(zoo[name], published.build.image)
    return testbed, gateway, zoo


class TestUnifiedRouting:
    def test_no_invocation_path_bypasses_the_runtime(self, deployment):
        """run, run_async, run_batch, and run_pipeline all route through
        the ServingRuntime; the MS's legacy round-robin Task Manager
        processes nothing and the sync queue lane stays empty."""
        testbed, gateway, zoo = deployment
        ms = testbed.management
        legacy_tm = testbed.task_manager

        result = ms.run(testbed.token, "noop", 1)
        assert result.ok

        handle = ms.run_async(testbed.token, "noop", 2)
        assert ms.status(testbed.token, handle.task_uuid) is TaskStatus.SUCCEEDED
        assert ms.result(testbed.token, handle.task_uuid).ok

        batch = ms.run_batch(testbed.token, "noop", [3, 4, 5])
        assert batch.ok and len(batch.value) == 3

        pipeline = Pipeline(
            name="featurize-predict",
            steps=[
                PipelineStep("matminer_featurize"),
                PipelineStep("matminer_model"),
            ],
        )
        ms.register_pipeline(testbed.token, pipeline)
        pipeline_result = ms.run_pipeline(
            testbed.token, "featurize-predict", *sample_input("matminer_featurize")
        )
        assert pipeline_result.ok

        # The acceptance assertion: every task crossed the runtime; the
        # directly registered Task Manager served nothing.
        assert legacy_tm.tasks_processed == 0
        expected_items = 1 + 1 + 3 + 2  # run + async + batch(3) + 2 pipeline steps
        assert gateway.runtime.items_served == expected_items
        # The legacy sync lane was never used.
        for name in ("noop", "matminer_featurize", "matminer_model"):
            assert (
                testbed.management.queue.enqueued_count(
                    servable_topic(name, lane="sync")
                )
                == 0
            )

    def test_sdk_client_traffic_is_tenant_accounted(self, deployment):
        testbed, gateway, zoo = deployment
        client = DLHubClient(testbed.management, testbed.token)
        assert client.run("noop", 7) is not None
        values = client.run_batch("noop", [1, 2])
        assert len(values) == 2
        counters = gateway.metrics.counters("lab")
        assert counters.admitted == 3
        assert counters.completed == 3
        assert gateway.admitted_count("noop") == 3

    def test_batch_and_single_share_the_worker_memo_cache(self, deployment):
        testbed, gateway, zoo = deployment
        ms = testbed.management
        first = ms.run(testbed.token, "noop", 42)
        assert not first.cache_hit
        again = ms.run_batch(testbed.token, "noop", [42, 42])
        # Both items hit the memo entry the single run populated
        # (requests land on the same runtime workers, unlike the old
        # split sync-lane/coalescing-lane worlds).
        assert again.batch_cache_hits == 2
        assert again.cache_hit

    def test_admission_rejection_surfaces_through_ms_and_async_store(self):
        testbed = build_testbed(jitter=False)
        zoo = build_zoo(oqmd_entries=50, n_estimators=4)
        policies = TenantPolicyTable()
        policies.register(
            TenantPolicy(name="throttled", rate_limit_rps=1.0, burst=1)
        )
        policies.set_default("throttled")
        gateway = testbed.enable_gateway(policies=policies, n_workers=2)
        published = testbed.management.publish(testbed.token, zoo["noop"])
        gateway.runtime.place(zoo["noop"], published.build.image)

        assert testbed.management.run(testbed.token, "noop", 1).ok
        with pytest.raises(AdmissionRejected):
            testbed.management.run(testbed.token, "noop", 2)

        # run_async: the denial raises AND the stored task is failed,
        # so a poller never sees RUNNING forever.
        testbed.clock.advance(1.0)  # one token refills
        handle = testbed.management.run_async(testbed.token, "noop", 3)
        assert testbed.management.result(testbed.token, handle.task_uuid).ok
        with pytest.raises(AdmissionRejected):
            testbed.management.run_async(testbed.token, "noop", 4)
        failed = [
            uuid
            for uuid in testbed.management.task_store._status
            if testbed.management.task_store.status(uuid) is TaskStatus.FAILED
        ]
        assert len(failed) == 1
        assert "rate_limit" in testbed.management.result(
            testbed.token, failed[0]
        ).error

    def test_gateway_attach_is_exclusive(self, deployment):
        testbed, gateway, zoo = deployment
        from repro.core.management import ManagementError

        with pytest.raises(ManagementError):
            testbed.management.attach_gateway(gateway)

    def test_legacy_path_unchanged_without_gateway(self):
        """No gateway: the round-robin sync path still serves (the
        pre-PR behaviour is preserved bit-for-bit)."""
        testbed = build_testbed(jitter=False)
        zoo = build_zoo(oqmd_entries=50, n_estimators=4)
        testbed.publish_and_deploy(zoo["noop"])
        result = testbed.management.run(testbed.token, "noop", 1)
        assert result.ok
        assert testbed.task_manager.tasks_processed == 1
