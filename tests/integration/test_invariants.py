"""Cross-module property-based invariants (hypothesis).

These test whole-system properties rather than single modules: output
equivalence between execution paths, determinism under seeding, and
conservation-style invariants on the simulated infrastructure.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.zoo import build_zoo
from repro.matsci.elements import ELEMENTS

# One shared deployment for the stateless-traffic properties.
_ZOO = build_zoo(oqmd_entries=40, n_estimators=3)


def _fresh_context():
    from repro.bench.workloads import build_context

    ctx = build_context(
        servables=("matminer_util", "matminer_featurize"),
        jitter=False,
        memoize=False,
        zoo_kwargs={"oqmd_entries": 40, "n_estimators": 3},
    )
    return ctx


@pytest.fixture(scope="module")
def ctx():
    return _fresh_context()


# A strategy over chemically-valid formula strings.
formulas = st.lists(
    st.tuples(
        st.sampled_from(sorted(ELEMENTS)),
        st.integers(min_value=1, max_value=6),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda t: t[0],
).map(lambda parts: "".join(f"{s}{n}" for s, n in parts))


class TestServingEquivalence:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(formula=formulas)
    def test_served_equals_local_property(self, ctx, formula):
        """For any valid formula: serving through the full stack returns
        exactly what the bare handler returns."""
        served = ctx.client.run("matminer_util", formula)
        local = _ZOO["matminer_util"].run(formula)
        assert served == local

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(formula=formulas)
    def test_batched_equals_sequential_property(self, ctx, formula):
        """Batching never changes outputs, only timing."""
        inputs = [(formula,), (formula,), (formula,)]
        batch = ctx.client.run_batch("matminer_util", inputs)
        sequential = [ctx.client.run("matminer_util", formula) for _ in range(3)]
        assert batch == sequential

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(formula=formulas)
    def test_pipeline_equals_manual_chain_property(self, ctx, formula):
        fractions = ctx.client.run("matminer_util", formula)
        via_chain = ctx.client.run("matminer_featurize", fractions)
        direct = _ZOO["matminer_featurize"].run(_ZOO["matminer_util"].run(formula))
        assert np.allclose(via_chain, direct)


class TestMemoTransparency:
    @settings(max_examples=10, deadline=None)
    @given(formula=formulas)
    def test_memoization_is_semantically_invisible_property(self, formula):
        """Identical queries with and without memoization return identical
        values — the cache changes latency, never answers."""
        from repro.bench.workloads import build_context

        ctx_memo = build_context(
            servables=("matminer_util",),
            jitter=False,
            memoize=True,
            zoo_kwargs={"oqmd_entries": 40, "n_estimators": 3},
        )
        first = ctx_memo.client.run("matminer_util", formula)
        second = ctx_memo.client.run("matminer_util", formula)
        assert first == second == _ZOO["matminer_util"].run(formula)


class TestClockMonotonicityAcrossStack:
    def test_every_operation_moves_time_forward(self, ctx):
        """Request timestamps strictly increase across a traffic mix."""
        clock = ctx.testbed.clock
        stamps = [clock.now()]
        ctx.client.run("matminer_util", "NaCl")
        stamps.append(clock.now())
        ctx.client.run_batch("matminer_util", [("MgO",), ("CaO",)])
        stamps.append(clock.now())
        ctx.client.search("matminer*")
        stamps.append(clock.now())
        assert stamps == sorted(stamps)
        assert stamps[-1] > stamps[0]


class TestResourceConservation:
    @settings(max_examples=10, deadline=None)
    @given(
        scale_sequence=st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=6)
    )
    def test_scale_updown_conserves_cluster_resources_property(self, scale_sequence):
        """Any scale-up/down sequence ending at zero replicas returns the
        cluster to its pre-deployment allocation."""
        from repro.core.testbed import build_testbed

        testbed = build_testbed(jitter=False)
        baseline = testbed.cluster.total_allocated.cpu_millicores
        testbed.publish_and_deploy(_ZOO["noop"], replicas=1)
        executor = testbed.parsl_executor
        for replicas in scale_sequence:
            executor.scale("noop", replicas)
            assert testbed.cluster.total_allocated.fits_within(
                testbed.cluster.total_capacity
            )
        executor.scale("noop", 0)
        assert testbed.cluster.total_allocated.cpu_millicores == baseline


class TestSearchConsistency:
    @settings(max_examples=10, deadline=None)
    @given(
        names=st.lists(
            st.text(alphabet="abcdefgh", min_size=3, max_size=8),
            min_size=1,
            max_size=5,
            unique=True,
        )
    )
    def test_published_models_always_discoverable_property(self, names):
        """Everything published publicly is findable by exact name."""
        from repro.core.servable import PythonFunctionServable
        from repro.core.testbed import build_testbed
        from repro.core.toolbox import MetadataBuilder

        testbed = build_testbed(jitter=False)
        for name in names:
            md = (
                MetadataBuilder(f"model_{name}", f"Model {name}")
                .creator("P")
                .model_type("python_function")
                .input_type("dict")
                .output_type("dict")
                .build()
            )
            testbed.management.publish(
                testbed.token, PythonFunctionServable(md, lambda x: x)
            )
        for name in names:
            hits = testbed.management.search(testbed.token, f"dlhub.name:model_{name}")
            assert hits.total == 1
