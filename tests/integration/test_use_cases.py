"""Integration tests for the SS VI use cases (CANDLE, MDF, tomography,
formation enthalpy) — condensed versions of the examples, asserted."""

import numpy as np
import pytest

from repro.auth.service import AuthorizationError
from repro.core.client import DLHubClient
from repro.core.pipeline import Pipeline
from repro.core.zoo import build_zoo
from repro.search.index import Visibility


@pytest.fixture(scope="module")
def testbed():
    from repro.core.testbed import build_testbed

    return build_testbed(jitter=False)


@pytest.fixture(scope="module")
def zoo():
    return build_zoo(oqmd_entries=60, n_estimators=5)


class TestCandleAccessControl:
    """SS VI-A: group-restricted sharing, then general release."""

    @pytest.fixture(scope="class")
    def published(self, testbed, zoo):
        tester, tester_token = testbed.new_user("candle_tester")
        outsider, outsider_token = testbed.new_user("candle_outsider")
        group = testbed.auth.identities.create_group("candle")
        group.add(tester)
        from repro.core.servable import PythonFunctionServable
        from repro.core.toolbox import MetadataBuilder

        md = (
            MetadataBuilder("candle_model", "CANDLE drug response")
            .creator("CANDLE")
            .model_type("python_function")
            .input_type("ndarray")
            .output_type("number")
            .domain("cancer")
            .build()
        )
        servable = PythonFunctionServable(md, lambda x: float(np.sum(x)))
        published = testbed.publish_and_deploy(
            servable, visibility=Visibility.restricted(groups=["candle"])
        )
        return published, tester_token, outsider_token

    def test_tester_discovers_and_invokes(self, testbed, published):
        _, tester_token, _ = published
        client = DLHubClient(testbed.management, tester_token)
        assert client.search("candle*").total == 1
        assert client.run("candle_model", np.ones(3)) == 3.0

    def test_outsider_blind_and_blocked(self, testbed, published):
        _, _, outsider_token = published
        client = DLHubClient(testbed.management, outsider_token)
        assert client.search("candle*").total == 0
        with pytest.raises(AuthorizationError):
            client.run("candle_model", np.ones(3))

    def test_general_release_flips_access(self, testbed, published):
        model, _, outsider_token = published
        testbed.management.update_visibility(
            testbed.token, model.full_name, Visibility()
        )
        client = DLHubClient(testbed.management, outsider_token)
        assert client.search("candle*").total == 1
        assert client.run("candle_model", np.ones(4)) == 4.0


class TestMDFEnrichment:
    """SS VI-B: input-type matching selects applicable models at ingest."""

    def test_type_matching_selects_models(self, testbed, zoo):
        for name in ("matminer_util", "matminer_featurize"):
            testbed.publish_and_deploy(zoo[name])
        client = DLHubClient(testbed.management, testbed.token)
        string_models = {
            h.source["dlhub"]["name"]
            for h in client.search("dlhub.input_type:string").hits
        }
        assert "matminer_util" in string_models
        composition_models = {
            h.source["dlhub"]["name"]
            for h in client.search("dlhub.input_type:composition").hits
        }
        assert "matminer_featurize" in composition_models
        assert client.search("dlhub.input_type:file").total == 0

    def test_enrichment_invocation(self, testbed):
        client = DLHubClient(testbed.management, testbed.token)
        records = ["FeNi", "CuZn"]
        enriched = [client.run("matminer_util", r) for r in records]
        assert all(sum(e.values()) == pytest.approx(1.0) for e in enriched)


class TestFormationEnthalpyPipeline:
    """SS VI-D: one string in, one number out, server-side chaining."""

    def test_pipeline_simplifies_interface(self, testbed, zoo):
        testbed.publish_and_deploy(zoo["matminer_model"])
        pipeline = (
            Pipeline("usecase_enthalpy")
            .add_step("matminer_util")
            .add_step("matminer_featurize")
            .add_step("matminer_model")
        )
        client = DLHubClient(testbed.management, testbed.token)
        client.register_pipeline(pipeline)
        for formula in ("SiO2", "NaCl", "Fe2O3"):
            value = client.run_pipeline("usecase_enthalpy", formula)
            assert isinstance(value, float)
            assert -6 < value < 2

    def test_predictions_chemically_sensible(self, testbed, zoo):
        """Strongly ionic compounds come out more stable than weakly
        bonded ones — the synthetic physics is monotone in EN spread."""
        client = DLHubClient(testbed.management, testbed.token)
        ionic = client.run_pipeline("usecase_enthalpy", "NaCl")  # large EN gap
        metallic = client.run_pipeline("usecase_enthalpy", "FeNi3")  # small gap
        assert ionic < metallic
