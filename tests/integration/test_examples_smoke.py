"""Smoke tests: the runnable examples must execute end to end.

Each example is executed in-process (``runpy`` with ``__main__``
semantics) so regressions in the public API surface here immediately.
The two heaviest examples (materials_pipeline, serving_comparison) are
exercised through their underlying harnesses elsewhere and are sampled
here with reduced work via their module mains only if fast.
"""

import runpy
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamplesRun:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "published" in out
        assert "sync prediction" in out
        assert "timings" in out

    def test_candle_access_control(self, capsys):
        out = run_example("candle_access_control.py", capsys)
        assert "outsider search hits: 0" in out
        assert "after release" in out

    def test_mdf_enrichment(self, capsys):
        out = run_example("mdf_enrichment.py", capsys)
        assert "enrichment passes applied" in out

    def test_tomography_serving(self, capsys):
        out = run_example("tomography_serving.py", capsys)
        assert "best center: slice 13" in out
        assert "batch segmentation" in out

    def test_server_side_batching(self, capsys):
        out = run_example("server_side_batching.py", capsys)
        assert "placement (servable -> workers):" in out
        assert "micro-batches dispatched:" in out
        assert "hot-input memo hits on matminer_util:" in out

    def test_hpc_singularity(self, capsys):
        out = run_example("hpc_singularity.py", capsys)
        assert "HPC outputs match local execution: OK" in out
        assert "Clipper" in out

    def test_autoscaled_serving(self, capsys):
        out = run_example("autoscaled_serving.py", capsys)
        # The controller scaled up during the spike...
        assert "worker_provisioned" in out
        assert "copy_added" in out
        # ...drained back down afterwards...
        assert "scaled back down to 1 worker(s)" in out
        # ...and healed around the crash, reviving the worker later.
        assert "worker_down" in out
        assert "the crashed worker served none" in out
        assert "worker_revived" in out

    def test_multi_tenant_gateway(self, capsys):
        out = run_example("multi_tenant_gateway.py", capsys)
        # The legacy round-robin TM serves nothing behind the gateway.
        assert "legacy round-robin TM tasks processed: 0" in out
        # The guest's over-limit burst got typed rate-limit denials.
        assert "rejected_rate_limit" in out
        # Both tenants' latency tables printed (fairness section ran).
        assert "astro" in out and "chem" in out
        assert "admitted per tenant" in out
