"""Failure-injection integration tests.

Exercises the reliability mechanisms the paper asserts: the queue
"ensures tasks are received and executed" (redelivery after worker
death), deployments self-heal failed pods, and the serving path degrades
gracefully (failed tasks become FAILED results, never lost work).
"""

import pytest

from repro.core.tasks import TaskRequest, TaskStatus
from repro.core.zoo import build_zoo


@pytest.fixture
def deployment():
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    testbed.publish_and_deploy(zoo["noop"], replicas=3)
    return testbed, zoo


class TestQueueRedelivery:
    def test_worker_death_before_ack_redelivers(self, deployment):
        """A Task Manager that claims a task and dies never loses it."""
        testbed, _ = deployment
        queue = testbed.management.queue
        queue.put(TaskRequest("noop"))
        # Worker claims then crashes (no ack).
        testbed.task_manager.claim_then_die()
        assert queue.inflight_count == 1
        # Visibility timeout lapses; the message is redelivered.
        testbed.clock.advance(queue.visibility_timeout_s)
        assert queue.expire_inflight() == 1
        result = testbed.task_manager.poll_once()
        assert result is not None and result.ok
        assert queue.total_redelivered == 1

    def test_multiple_crashes_eventually_dead_letter(self, deployment):
        testbed, _ = deployment
        queue = testbed.management.queue
        queue.put(TaskRequest("noop"))
        for _ in range(queue.max_deliveries):
            testbed.task_manager.claim_then_die()
            testbed.clock.advance(queue.visibility_timeout_s)
            queue.expire_inflight()
        assert len(queue) == 0
        assert len(queue.dead_letters) == 1


class TestPodFailure:
    def test_serving_survives_single_pod_failure(self, deployment):
        """With replicas > 1, killing one pod leaves the service up."""
        testbed, _ = deployment
        executor = testbed.parsl_executor
        pods = executor._deployments["noop"].ready_pods()
        pods[0].fail()
        for _ in range(4):
            outcome = executor.invoke("noop", (), {})
            assert outcome.value == "hello world"

    def test_reconcile_restores_capacity(self, deployment):
        testbed, _ = deployment
        deployment_obj = testbed.parsl_executor._deployments["noop"]
        deployment_obj.ready_pods()[0].fail()
        deployment_obj.reconcile()
        assert len(deployment_obj.ready_pods()) == 3

    def test_all_pods_failed_is_reported_not_lost(self, deployment):
        testbed, _ = deployment
        for pod in testbed.parsl_executor._deployments["noop"].ready_pods():
            pod.fail()
        result = testbed.task_manager.process(TaskRequest("noop"))
        assert result.status is TaskStatus.FAILED
        assert result.error

    def test_recovery_after_total_failure(self, deployment):
        testbed, _ = deployment
        executor = testbed.parsl_executor
        deployment_obj = executor._deployments["noop"]
        for pod in deployment_obj.ready_pods():
            pod.fail()
        deployment_obj.reconcile()
        executor._pools["noop"].set_pods(deployment_obj.ready_pods())
        result = testbed.task_manager.process(TaskRequest("noop"))
        assert result.ok


class TestHandlerErrors:
    def test_exception_in_model_becomes_failed_result(self, deployment):
        testbed, zoo = deployment
        testbed.publish_and_deploy(zoo["matminer_util"])
        result = testbed.management.run(
            testbed.token, "matminer_util", "ThisIsNotChemistry!!"
        )
        assert result.status is TaskStatus.FAILED
        assert "CompositionError" in result.error

    def test_failures_are_not_memoized(self, deployment):
        """A transient failure must not poison the cache."""
        testbed, zoo = deployment
        testbed.publish_and_deploy(zoo["cifar10"])
        tm = testbed.task_manager
        bad_request = TaskRequest("cifar10", args=("not an image",))
        first = tm.process(bad_request)
        assert first.status is TaskStatus.FAILED
        again = tm.process(TaskRequest("cifar10", args=("not an image",)))
        assert not again.cache_hit  # failure was never cached

    def test_failure_then_success_isolated_across_inputs(self, deployment):
        testbed, zoo = deployment
        testbed.publish_and_deploy(zoo["matminer_featurize"])
        bad = testbed.management.run(testbed.token, "matminer_featurize", "Zz!!")
        good = testbed.management.run(
            testbed.token, "matminer_featurize", {"Na": 0.5, "Cl": 0.5}
        )
        assert bad.status is TaskStatus.FAILED
        assert good.ok
