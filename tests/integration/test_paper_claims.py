"""Integration tests asserting the paper's quantitative claims (SS V).

These are the reproduction's acceptance tests: each test quotes a claim
from the evaluation section and checks it on the simulated deployment
(reduced request counts keep them fast; the full-protocol versions live
in benchmarks/).
"""

import pytest

from repro.bench.workloads import build_context
from repro.core.zoo import ZOO_NAMES


@pytest.fixture(scope="module")
def ctx():
    return build_context(servables=ZOO_NAMES, seed=0, jitter=False, memoize=False)


@pytest.fixture(scope="module")
def ctx_memo():
    return build_context(servables=ZOO_NAMES, seed=0, jitter=False, memoize=True)


class TestSectionVB1:
    """'DLHub can serve requests to run models in less than 40 ms and
    Python-based test functions in less than 20 ms' (SS I / SS V-B1)."""

    def test_noop_invocation_under_20ms(self, ctx):
        result = ctx.run_fixed("noop")
        assert result.invocation_time * 1e3 < 20.0

    def test_model_invocations_under_40ms(self, ctx):
        for name in ("inception", "cifar10", "matminer_model"):
            result = ctx.run_fixed(name)
            assert result.invocation_time * 1e3 < 40.0, name

    def test_tier_ordering_all_servables(self, ctx):
        for name in ZOO_NAMES:
            r = ctx.run_fixed(name)
            assert r.inference_time < r.invocation_time < r.request_time, name

    def test_overhead_band_10_20ms(self, ctx):
        """'In most cases, costs are around 10-20ms' — invocation minus
        inference, per servable."""
        gaps = []
        for name in ZOO_NAMES:
            r = ctx.run_fixed(name)
            gaps.append((r.invocation_time - r.inference_time) * 1e3)
        in_band = [g for g in gaps if 5.0 <= g <= 20.0]
        assert len(in_band) >= len(gaps) - 1  # "in most cases"

    def test_image_models_pay_transfer_overhead(self, ctx):
        """'higher overheads associated with Inception and CIFAR-10 are due
        to their need to transfer substantial input data'."""
        inception = ctx.run_fixed("inception")
        noop = ctx.run_fixed("noop")
        inception_gap = inception.request_time - inception.invocation_time
        noop_gap = noop.request_time - noop.invocation_time
        assert inception_gap > noop_gap


class TestSectionVB2:
    """Memoization reduces invocation 95.3-99.8% and request 24.3-95.4%."""

    def test_invocation_reduction_in_range(self, ctx, ctx_memo):
        for name in ZOO_NAMES:
            baseline = ctx.run_fixed(name).invocation_time
            ctx_memo.run_fixed(name)  # warm
            memoized = ctx_memo.run_fixed(name)
            assert memoized.cache_hit, name
            reduction = 100 * (1 - memoized.invocation_time / baseline)
            assert 93.0 <= reduction <= 99.9, f"{name}: {reduction:.1f}%"

    def test_request_reduction_in_range(self, ctx, ctx_memo):
        for name in ZOO_NAMES:
            baseline = ctx.run_fixed(name).request_time
            memoized = ctx_memo.run_fixed(name)
            reduction = 100 * (1 - memoized.request_time / baseline)
            assert 24.0 <= reduction <= 95.5, f"{name}: {reduction:.1f}%"

    def test_memoized_invocation_1ms_class(self, ctx_memo):
        """'With memoization enabled, DLHub provides extremely low
        invocation times (1ms)'."""
        ctx_memo.run_fixed("inception")
        hit = ctx_memo.run_fixed("inception")
        assert hit.invocation_time * 1e3 <= 1.5


class TestSectionVB3:
    """Batching amortizes overheads; invocation ~linear in request count."""

    def test_batching_beats_sequential(self, ctx):
        fixed = ctx.fixed_input("cifar10")
        n = 20
        sequential = sum(
            r.invocation_time for r in ctx.run_sequential("cifar10", n)
        )
        batch = ctx.client.management.run_batch(
            ctx.client.token, "cifar10", [fixed] * n
        )
        assert batch.invocation_time < sequential

    def test_linearity_in_batch_size(self, ctx):
        import numpy as np

        executor = ctx.testbed.parsl_executor
        fixed = ctx.fixed_input("noop")
        xs = [10, 50, 100, 200]
        ys = [
            executor.invoke_batch("noop", [fixed] * n).invocation_time for n in xs
        ]
        slope, intercept = np.polyfit(xs, ys, 1)
        predicted = np.polyval([slope, intercept], xs)
        ss_res = float(((np.array(ys) - predicted) ** 2).sum())
        ss_tot = float(((np.array(ys) - np.mean(ys)) ** 2).sum())
        assert 1 - ss_res / ss_tot > 0.999


class TestSectionVB4:
    """Throughput scales with replicas, then saturates (Fig. 7)."""

    def test_inception_scales_to_about_15_replicas(self, ctx):
        executor = ctx.testbed.parsl_executor
        fixed = ctx.fixed_input("inception")
        workload = [fixed] * 400

        def throughput(replicas):
            executor.scale("inception", replicas)
            return len(workload) / executor.submit_stream("inception", workload)

        t1, t10, t15, t25 = (throughput(r) for r in (1, 10, 15, 25))
        assert t10 > 5 * t1  # strong early scaling
        assert t15 > 1.2 * t10  # still gaining at 10 -> 15
        assert t25 < 1.25 * t15  # diminishing beyond ~15

    def test_lighter_servables_saturate_earlier(self, ctx):
        executor = ctx.testbed.parsl_executor
        fixed = ctx.fixed_input("matminer_featurize")
        workload = [fixed] * 400

        def throughput(replicas):
            executor.scale("matminer_featurize", replicas)
            return len(workload) / executor.submit_stream(
                "matminer_featurize", workload
            )

        t10, t15 = throughput(10), throughput(15)
        assert t15 < 1.1 * t10  # featurize already dispatch-bound by 10


class TestSectionVB5:
    """Serving comparison orderings (Fig. 8), asserted on invocations."""

    def test_tfserving_beats_dlhub_without_memo(self, ctx):
        testbed = ctx.testbed
        executor = testbed.tfserving_executor("grpc")
        executor.deploy(ctx.zoo["cifar10"], None)
        tfs = executor.invoke("cifar10", ctx.fixed_input("cifar10"), {})
        dlhub = ctx.run_fixed("cifar10")
        assert tfs.invocation_time < dlhub.invocation_time

    def test_dlhub_memo_beats_clipper_memo(self, ctx_memo):
        testbed = ctx_memo.testbed
        clipper = testbed.clipper_backend(memoization=True)
        from repro.serving.base import ModelSpec

        spec = ModelSpec.from_calibration(
            "cifar10", "cifar10", ctx_memo.zoo["cifar10"].handler
        )
        clipper.deploy(spec)
        fixed = ctx_memo.fixed_input("cifar10")
        clipper.invoke("cifar10", *fixed)  # warm
        clipper_hit = clipper.invoke("cifar10", *fixed)
        ctx_memo.run_fixed("cifar10")  # warm
        dlhub_hit = ctx_memo.run_fixed("cifar10")
        assert clipper_hit.cache_hit and dlhub_hit.cache_hit
        assert dlhub_hit.invocation_time < clipper_hit.invocation_time
