"""Unit tests for the DLHub executor model (Parsl / TF Serving / SageMaker)."""

import pytest

from repro.core.executors import ExecutorError
from repro.core.zoo import build_zoo, sample_input


@pytest.fixture(scope="module")
def env():
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False, memoize_tm=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    for name in ("noop", "cifar10", "matminer_featurize"):
        testbed.publish_and_deploy(zoo[name], replicas=2)
    return testbed, zoo


class TestParslExecutor:
    def test_invoke_decomposition(self, env):
        testbed, _ = env
        outcome = testbed.parsl_executor.invoke("noop", (), {})
        assert outcome.value == "hello world"
        assert 0 < outcome.inference_time < outcome.invocation_time

    def test_undeployed_servable(self, env):
        testbed, _ = env
        with pytest.raises(ExecutorError):
            testbed.parsl_executor.invoke("ghost", (), {})

    def test_scale_changes_replicas(self, env):
        testbed, _ = env
        executor = testbed.parsl_executor
        executor.scale("noop", 5)
        assert executor.replicas("noop") == 5
        executor.scale("noop", 2)
        assert executor.replicas("noop") == 2

    def test_double_deploy_rejected(self, env):
        testbed, zoo = env
        with pytest.raises(ExecutorError):
            testbed.parsl_executor.deploy(zoo["noop"], None)

    def test_invoke_batch_amortizes(self, env):
        testbed, _ = env
        executor = testbed.parsl_executor
        fixed = sample_input("matminer_featurize")
        single = executor.invoke("matminer_featurize", fixed, {})
        batch = executor.invoke_batch("matminer_featurize", [fixed] * 10)
        assert len(batch.value) == 10
        # 10 batched items cost less than 10 singles.
        assert batch.invocation_time < 10 * single.invocation_time

    def test_invoke_batch_empty_rejected(self, env):
        testbed, _ = env
        with pytest.raises(ExecutorError):
            testbed.parsl_executor.invoke_batch("noop", [])

    def test_submit_stream_returns_makespan(self, env):
        testbed, _ = env
        makespan = testbed.parsl_executor.submit_stream(
            "noop", [()] * 50
        )
        assert makespan > 0

    def test_deployed_listing(self, env):
        testbed, _ = env
        assert set(testbed.parsl_executor.deployed()) >= {"noop", "cifar10"}


class TestBatchingCapability:
    def test_capability_flags(self, env):
        testbed, _ = env
        assert testbed.parsl_executor.supports_batching
        assert not testbed.tfserving_executor("grpc").supports_batching
        assert not testbed.sagemaker_executor("flask").supports_batching

    def test_default_invoke_batch_raises(self, env):
        testbed, _ = env
        executor = testbed.sagemaker_executor("flask")
        with pytest.raises(ExecutorError, match="does not support batching"):
            executor.invoke_batch("anything", [(1,)])

    def test_batch_on_non_batching_executor_fails_gracefully(self, env):
        """The Task Manager's capability check turns a batch routed to a
        batch-less executor into a FAILED result, not a crash."""
        testbed, zoo = env
        from repro.core.tasks import TaskRequest, TaskStatus

        testbed.tfserving_executor("rest")
        image = testbed.repository.resolve("cifar10").build.image
        testbed.task_manager._registrations.pop("cifar10", None)
        testbed.task_manager.register_servable(
            zoo["cifar10"], image, executor_name="tfserving-rest"
        )
        result = testbed.task_manager.process(
            TaskRequest("cifar10", batch=[sample_input("cifar10")])
        )
        assert result.status is TaskStatus.FAILED
        assert "does not support batching" in result.error

    def test_invoke_batch_honours_kwargs(self, env):
        """Batch items may carry kwargs as (args, kwargs) pairs — they
        reach the servable instead of being silently dropped."""
        testbed, _ = env
        from repro.core.servable import PythonFunctionServable
        from repro.core.toolbox import MetadataBuilder

        metadata = (
            MetadataBuilder("scaler", "Scales a number")
            .creator("tests")
            .description("x * scale, scale given by keyword")
            .model_type("python_function")
            .input_type("number")
            .output_type("number")
            .build()
        )
        servable = PythonFunctionServable(
            metadata, lambda x, scale=1: x * scale, key="scaler"
        )
        testbed.publish_and_deploy(servable)
        outcome = testbed.parsl_executor.invoke_batch(
            "scaler",
            [((2,), {"scale": 3}), (4,), 5],
        )
        assert outcome.value == [6, 4, 5]


class TestBackendExecutors:
    def test_tfserving_executor_serves_keras(self, env):
        testbed, zoo = env
        executor = testbed.tfserving_executor("grpc")
        executor.deploy(zoo["cifar10"], None)
        outcome = executor.invoke("cifar10", sample_input("cifar10"), {})
        assert outcome.value.shape == (1, 10)

    def test_tfserving_supports_check(self, env):
        testbed, zoo = env
        executor = testbed.tfserving_executor("grpc")
        assert executor.supports(zoo["inception"])
        assert not executor.supports(zoo["matminer_featurize"])

    def test_sagemaker_flask_serves_anything(self, env):
        testbed, zoo = env
        executor = testbed.sagemaker_executor("flask")
        executor.deploy(zoo["matminer_featurize"], None)
        outcome = executor.invoke(
            "matminer_featurize", sample_input("matminer_featurize"), {}
        )
        assert outcome.value.shape == (54,)

    def test_undeployed_invoke_rejected(self, env):
        testbed, _ = env
        executor = testbed.sagemaker_executor("flask")
        with pytest.raises(ExecutorError):
            executor.invoke("never_deployed", (), {})

    def test_task_manager_routes_to_registered_executor(self, env):
        """Inference tasks go to the serving executor the servable was
        registered with (SS IV-C routing)."""
        testbed, zoo = env
        from repro.core.tasks import TaskRequest

        executor = testbed.tfserving_executor("grpc")
        # cifar10 was registered on parsl in the fixture; register the
        # inception servable on TF Serving instead.
        published = testbed.management.publish(testbed.token, zoo["inception"])
        testbed.task_manager.register_servable(
            zoo["inception"], published.build.image, executor_name="tfserving-grpc"
        )
        result = testbed.task_manager.process(
            TaskRequest("inception", args=sample_input("inception"))
        )
        assert result.ok
        assert len(result.value) == 5  # top-5 output via TF Serving path
