"""Unit tests for the Task Manager: routing, memoization, queue loop."""

import pytest

from repro.core.tasks import TaskRequest, TaskStatus
from repro.core.task_manager import TaskManagerError
from repro.core.zoo import build_zoo, sample_input


@pytest.fixture(scope="module")
def deployed():
    """A testbed with noop + matminer_util deployed (module-scoped: tests
    here only send traffic, they don't mutate deployment state)."""
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    for name in ("noop", "matminer_util"):
        testbed.publish_and_deploy(zoo[name])
    return testbed


class TestRouting:
    def test_process_executes_servable(self, deployed):
        result = deployed.task_manager.process(TaskRequest("noop"))
        assert result.ok
        assert result.value == "hello world"
        assert result.invocation_time > result.inference_time > 0

    def test_unknown_servable_fails_gracefully(self, deployed):
        result = deployed.task_manager.process(TaskRequest("ghost"))
        assert result.status is TaskStatus.FAILED
        assert "not registered" in result.error

    def test_handler_exception_becomes_failed_result(self, deployed):
        result = deployed.task_manager.process(
            TaskRequest("matminer_util", args=("NotAFormula!!",))
        )
        assert result.status is TaskStatus.FAILED
        assert "CompositionError" in result.error

    def test_unknown_executor_registration(self, deployed):
        zoo = build_zoo(oqmd_entries=50, n_estimators=4)
        with pytest.raises(TaskManagerError):
            deployed.task_manager.register_servable(
                zoo["cifar10"], None, executor_name="quantum"
            )

    def test_registered_servables_listed(self, deployed):
        assert set(deployed.task_manager.registered_servables()) >= {
            "noop",
            "matminer_util",
        }


class TestMemoization:
    def test_identical_inputs_hit(self, deployed):
        tm = deployed.task_manager
        tm.cache.clear()
        args = sample_input("matminer_util")
        first = tm.process(TaskRequest("matminer_util", args=args))
        second = tm.process(TaskRequest("matminer_util", args=args))
        assert not first.cache_hit and second.cache_hit
        assert second.value == first.value
        assert second.invocation_time < first.invocation_time / 10

    def test_different_inputs_miss(self, deployed):
        tm = deployed.task_manager
        tm.cache.clear()
        tm.process(TaskRequest("matminer_util", args=("NaCl",)))
        result = tm.process(TaskRequest("matminer_util", args=("SiO2",)))
        assert not result.cache_hit

    def test_memo_disabled(self):
        from repro.core.testbed import build_testbed

        testbed = build_testbed(jitter=False, memoize_tm=False)
        zoo = build_zoo(oqmd_entries=50, n_estimators=4)
        testbed.publish_and_deploy(zoo["noop"])
        tm = testbed.task_manager
        tm.process(TaskRequest("noop"))
        repeat = tm.process(TaskRequest("noop"))
        assert not repeat.cache_hit

    def test_batch_memoized_per_item(self, deployed):
        """A batch containing previously-seen inputs dispatches only the
        misses (the acceptance criterion for server-side batching)."""
        tm = deployed.task_manager
        tm.cache.clear()
        executor = deployed.parsl_executor
        seen = tm.process(TaskRequest("matminer_util", args=("NaCl",)))
        assert seen.ok and not seen.cache_hit
        served_before = executor.requests_served
        result = tm.process(
            TaskRequest("matminer_util", batch=[("NaCl",), ("SiO2",), ("MgO",)])
        )
        assert result.ok
        assert result.batch_cache_hits == 1
        assert result.batch_hits == (0,)  # NaCl was the seen item
        assert not result.cache_hit  # two items still missed
        # Only the two misses reached the executor.
        assert executor.requests_served - served_before == 2
        assert result.value[0] == seen.value

    def test_fully_cached_batch_never_dispatches(self, deployed):
        tm = deployed.task_manager
        tm.cache.clear()
        executor = deployed.parsl_executor
        first = tm.process(TaskRequest("matminer_util", batch=[("NaCl",), ("SiO2",)]))
        served_before = executor.requests_served
        again = tm.process(TaskRequest("matminer_util", batch=[("NaCl",), ("SiO2",)]))
        assert again.ok
        assert again.cache_hit
        assert again.batch_cache_hits == 2
        assert executor.requests_served == served_before
        assert again.value == first.value
        assert again.invocation_time < first.invocation_time / 10

    def test_all_hit_batch_skips_routing(self, deployed):
        """A fully-memoized batch returns from cache even when the
        servable is not registered here — mirroring the single-item hit
        path, which also answers before routing."""
        tm = deployed.task_manager
        tm.cache.clear()
        tm.process(TaskRequest("matminer_util", args=("NaCl",)))
        registration = tm._registrations.pop("matminer_util")
        try:
            result = tm.process(TaskRequest("matminer_util", batch=[("NaCl",)]))
        finally:
            tm._registrations["matminer_util"] = registration
        assert result.ok
        assert result.cache_hit and result.batch_hits == (0,)

    def test_batch_misses_stored_individually(self, deployed):
        """Each batch miss lands in the cache under its single-item
        signature, so a later single request hits."""
        tm = deployed.task_manager
        tm.cache.clear()
        tm.process(TaskRequest("matminer_util", batch=[("NaCl",), ("SiO2",)]))
        single = tm.process(TaskRequest("matminer_util", args=("SiO2",)))
        assert single.cache_hit

    def test_batch_memo_disabled(self):
        from repro.core.testbed import build_testbed

        testbed = build_testbed(jitter=False, memoize_tm=False)
        zoo = build_zoo(oqmd_entries=50, n_estimators=4)
        testbed.publish_and_deploy(zoo["noop"])
        served_before = testbed.parsl_executor.requests_served
        result = testbed.task_manager.process(TaskRequest("noop", batch=[(), ()]))
        repeat = testbed.task_manager.process(TaskRequest("noop", batch=[(), ()]))
        assert result.ok and repeat.ok
        assert repeat.batch_cache_hits == 0
        assert testbed.parsl_executor.requests_served - served_before == 4


class TestQueueLoop:
    def test_poll_once_processes_and_acks(self, deployed):
        queue = deployed.management.queue
        queue.put(TaskRequest("noop"))
        result = deployed.task_manager.poll_once()
        assert result.ok
        assert queue.inflight_count == 0
        assert len(queue) == 0

    def test_poll_empty_returns_none(self, deployed):
        assert deployed.task_manager.poll_once() is None

    def test_drain(self, deployed):
        queue = deployed.management.queue
        for formula in ("NaCl", "SiO2", "MgO"):
            queue.put(TaskRequest("matminer_util", args=(formula,)))
        results = deployed.task_manager.drain()
        assert len(results) == 3
        assert all(r.ok for r in results)


class TestLiveness:
    def test_probe_reflects_crash_and_recover(self):
        from repro.core.testbed import build_testbed

        testbed = build_testbed(jitter=False)
        tm = testbed.task_manager
        assert tm.probe()
        tm.crash()
        assert not tm.probe()
        tm.recover()
        assert tm.probe()

    def test_crashed_worker_refuses_tasks(self):
        from repro.core.testbed import build_testbed

        testbed = build_testbed(jitter=False)
        zoo = build_zoo(oqmd_entries=50, n_estimators=4)
        testbed.publish_and_deploy(zoo["noop"])
        testbed.task_manager.crash()
        with pytest.raises(TaskManagerError, match="down"):
            testbed.task_manager.process(TaskRequest("noop"))
        testbed.task_manager.recover()
        assert testbed.task_manager.process(TaskRequest("noop")).ok


class TestUnregistration:
    def test_unregister_undeploys_and_stops_routing(self):
        from repro.core.testbed import build_testbed

        testbed = build_testbed(jitter=False)
        zoo = build_zoo(oqmd_entries=50, n_estimators=4)
        testbed.publish_and_deploy(zoo["noop"])
        assert "noop" in testbed.parsl_executor.deployed()
        testbed.task_manager.unregister_servable("noop")
        assert "noop" not in testbed.parsl_executor.deployed()
        assert "noop" not in testbed.task_manager.registered_servables()
        result = testbed.task_manager.process(TaskRequest("noop"))
        assert not result.ok and "not registered" in result.error

    def test_unregister_unknown_rejected(self):
        from repro.core.testbed import build_testbed

        testbed = build_testbed(jitter=False)
        with pytest.raises(TaskManagerError, match="not registered"):
            testbed.task_manager.unregister_servable("ghost")
