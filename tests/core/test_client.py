"""Unit tests for the DLHubClient SDK."""

import pytest

from repro.core.client import DLHubClient
from repro.core.pipeline import Pipeline
from repro.core.tasks import TaskStatus
from repro.core.zoo import build_zoo


@pytest.fixture(scope="module")
def env():
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    for name in ("noop", "matminer_util"):
        testbed.publish_and_deploy(zoo[name])
    client = DLHubClient(testbed.management, testbed.token)
    return testbed, client, zoo


class TestServingAPI:
    def test_run_returns_value(self, env):
        _, client, _ = env
        assert client.run("noop") == "hello world"

    def test_run_failure_raises(self, env):
        _, client, _ = env
        with pytest.raises(RuntimeError, match="task failed"):
            client.run("matminer_util", "NotAFormula!!")

    def test_run_detailed_returns_taskresult(self, env):
        _, client, _ = env
        result = client.run_detailed("noop")
        assert result.ok
        assert result.request_time > 0

    def test_async_flow(self, env):
        _, client, _ = env
        handle = client.run_async("matminer_util", "MgO")
        assert client.status(handle) is TaskStatus.SUCCEEDED
        assert client.result(handle).value == {"Mg": 0.5, "O": 0.5}

    def test_status_accepts_raw_uuid(self, env):
        _, client, _ = env
        handle = client.run_async("noop")
        assert client.status(handle.task_uuid) is TaskStatus.SUCCEEDED

    def test_run_batch(self, env):
        _, client, _ = env
        out = client.run_batch("matminer_util", [("NaCl",), ("MgO",)])
        assert len(out) == 2

    def test_client_hop_charged(self, env):
        testbed, client, _ = env
        before = testbed.clock.now()
        client.run("noop")
        assert testbed.clock.now() > before


class TestRepositoryAPI:
    def test_search(self, env):
        _, client, _ = env
        assert client.search("matminer*").total >= 1

    def test_describe(self, env):
        _, client, _ = env
        doc = client.describe("noop")
        assert doc["dlhub"]["name"] == "noop"

    def test_cite(self, env):
        testbed, client, _ = env
        citation = client.cite(f"{testbed.user.username}/noop")
        assert "doi:" in citation

    def test_publish_via_client(self, env):
        testbed, client, zoo = env
        published = client.publish_servable(zoo["matminer_featurize"])
        assert published.version >= 1
        assert client.search("featurize*").total >= 1


class TestPipelineAPI:
    def test_register_and_run_pipeline(self, env):
        testbed, client, zoo = env
        pipeline = Pipeline("client_pipe").add_step("matminer_util")
        client.register_pipeline(pipeline)
        out = client.run_pipeline("client_pipe", "NaCl")
        assert out == {"Cl": 0.5, "Na": 0.5}
