"""Unit tests for servables and their shims."""

import numpy as np
import pytest

from repro.core.servable import (
    KerasLikeServable,
    PythonFunctionServable,
    Servable,
    ServableError,
    SklearnLikeServable,
    verify_components,
)
from repro.core.toolbox import MetadataBuilder
from repro.ml.layers import Dense, Softmax
from repro.ml.network import Sequential
from repro.ml.sklearn_like import RandomForestRegressor


def metadata(name="m", model_type="python_function"):
    return (
        MetadataBuilder(name, f"Test model {name}")
        .creator("Tester")
        .model_type(model_type)
        .input_type("ndarray")
        .output_type("ndarray")
        .build()
    )


class TestPythonFunctionServable:
    def test_wraps_and_runs(self):
        servable = PythonFunctionServable(metadata(), lambda x: x + 1)
        assert servable.run(41) == 42
        assert servable.name == "m"

    def test_non_callable_rejected(self):
        with pytest.raises(ServableError):
            Servable(metadata(), handler="not callable")  # type: ignore[arg-type]

    def test_calibration_key_defaults_to_name(self):
        servable = PythonFunctionServable(metadata("custom_thing"), lambda: 0)
        assert servable.key == "custom_thing"
        from repro.sim import calibration as cal

        assert servable.inference_cost_s == cal.DEFAULT_INFERENCE_COST_S

    def test_known_key_uses_calibration(self):
        servable = PythonFunctionServable(metadata(), lambda: 0, key="noop")
        from repro.sim import calibration as cal

        assert servable.inference_cost_s == cal.INFERENCE_COST_S["noop"]
        assert servable.request_bytes == cal.PAYLOAD_BYTES["noop"]
        assert servable.response_bytes == cal.RESPONSE_BYTES["noop"]


class TestKerasLikeServable:
    def _model(self):
        rng = np.random.default_rng(0)
        return Sequential([Dense(4, 3, rng=rng), Softmax()])

    def test_weights_become_component(self):
        servable = KerasLikeServable(metadata(model_type="keras"), self._model())
        assert "weights.npz" in servable.components
        assert servable.component_bytes() > 0

    def test_handler_predicts(self):
        model = self._model()
        servable = KerasLikeServable(metadata(model_type="keras"), model)
        x = np.zeros((2, 4))
        assert np.array_equal(servable.run(x), model.predict(x))

    def test_postprocess_applied(self):
        servable = KerasLikeServable(
            metadata(model_type="keras"),
            self._model(),
            postprocess=lambda probs: "processed",
        )
        assert servable.run(np.zeros((1, 4))) == "processed"

    def test_dependencies_declared(self):
        servable = KerasLikeServable(metadata(model_type="keras"), self._model())
        assert "keras" in servable.dependencies


class TestSklearnLikeServable:
    def _forest(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(40, 3))
        return RandomForestRegressor(n_estimators=3, max_depth=4).fit(x, x[:, 0])

    def test_estimator_pickled_as_component(self):
        servable = SklearnLikeServable(metadata(model_type="sklearn"), self._forest())
        assert "estimator.pkl" in servable.components

    def test_handler_calls_method(self):
        forest = self._forest()
        servable = SklearnLikeServable(metadata(model_type="sklearn"), forest)
        x = np.zeros((2, 3))
        assert np.allclose(servable.run(x), forest.predict(x))

    def test_missing_method_rejected(self):
        with pytest.raises(ServableError):
            SklearnLikeServable(
                metadata(model_type="sklearn"), self._forest(), method="transmogrify"
            )


class TestComponentVerification:
    def test_verify_keras_components(self):
        servable = KerasLikeServable(
            metadata(model_type="keras"),
            Sequential([Dense(2, 2), Softmax()]),
        )
        assert verify_components(servable)

    def test_verify_sklearn_components(self):
        rng = np.random.default_rng(1)
        forest = RandomForestRegressor(n_estimators=2, max_depth=3).fit(
            rng.normal(size=(20, 2)), rng.normal(size=20)
        )
        servable = SklearnLikeServable(metadata(model_type="sklearn"), forest)
        assert verify_components(servable)

    def test_opaque_components_pass(self):
        servable = PythonFunctionServable(metadata(), lambda: 0)
        servable.components["README.md"] = b"# hello"
        assert verify_components(servable)
