"""Unit tests for the telemetry module: tracer sampling/retention,
span-tree geometry, hostile settlement paths (partial chunk failure,
memo hits, dead letters), the SLO burn monitor, and the hub."""

import json

import pytest

from repro.core.tasks import TaskRequest
from repro.core.telemetry import (
    SLOBurnMonitor,
    TelemetryError,
    TelemetryHub,
    Trace,
    Tracer,
    build_hub,
)
from repro.core.zoo import build_zoo, sample_input


def _request(i=0):
    return TaskRequest("noop", args=(i,))


def _member_kwargs(**overrides):
    """A plausible settled batch member, overridable per test."""
    base = dict(
        enqueued_at=1.0,
        claimed_at=1.005,
        head_enqueued=1.0,
        dispatch_start=1.005,
        infer_start=1.006,
        infer_end=1.05,
        completed_at=1.05,
        settle_end=1.051,
        seq=7,
        batch_size=3,
        worker="w0",
        pod="w0/noop-0",
        batch_inference_s=0.044,
        status="ok",
        error=None,
        cache=False,
    )
    base.update(overrides)
    return base


class TestHeadSampling:
    def test_error_diffusion_keeps_exactly_floor_n_rate(self):
        tracer = Tracer(sample_rate=0.25, slow_threshold_s=None)
        for i in range(103):
            trace = tracer.begin(_request(i), at=float(i))
            tracer.finish(trace, at=float(i) + 0.001)
        assert tracer.kept_sampled == int(103 * 0.25)
        assert tracer.dropped == 103 - tracer.kept_sampled
        assert len(tracer.retained) == tracer.kept_sampled

    def test_sampling_is_evenly_spaced_not_bursty(self):
        tracer = Tracer(sample_rate=0.25, slow_threshold_s=None)
        flags = []
        for i in range(16):
            trace = tracer.begin(_request(i), at=0.0)
            flags.append(trace.sampled)
            tracer.finish(trace, at=0.0)
        # Exactly every fourth request, deterministically.
        assert flags == [False, False, False, True] * 4

    def test_rate_edges(self):
        all_on = Tracer(sample_rate=1.0, slow_threshold_s=None)
        all_off = Tracer(sample_rate=0.0, slow_threshold_s=None)
        for i in range(10):
            tracer_on = all_on.begin(_request(i), at=0.0)
            all_on.finish(tracer_on, at=0.0)
            tracer_off = all_off.begin(_request(i), at=0.0)
            all_off.finish(tracer_off, at=0.0)
        assert all_on.kept_sampled == 10
        assert all_off.kept_sampled == 0 and all_off.dropped == 10

    def test_begin_is_idempotent_per_request(self):
        """A reclaimed/re-submitted request keeps its trace (and burns
        no extra sampling budget)."""
        tracer = Tracer(sample_rate=1.0)
        request = _request()
        first = tracer.begin(request, at=0.0)
        again = tracer.begin(request, at=5.0)
        assert again is first
        assert tracer.started == 1

    def test_validation(self):
        with pytest.raises(TelemetryError):
            Tracer(sample_rate=1.5)
        with pytest.raises(TelemetryError):
            Tracer(sample_rate=-0.1)
        with pytest.raises(TelemetryError):
            Tracer(slow_threshold_s=-1.0)
        with pytest.raises(TelemetryError):
            Tracer(max_retained=0)


class TestTailKeep:
    def test_errors_survive_zero_sampling(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=None)
        trace = tracer.begin(_request(), at=0.0)
        tracer.finish(trace, at=0.1, error=True)
        assert tracer.kept_tail == 1
        assert list(tracer.retained) == [trace]

    def test_error_spans_taint_the_trace(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=None)
        trace = tracer.begin(_request(), at=0.0)
        trace.span("inference", 0.0, 0.1, status="error", error="boom")
        tracer.finish(trace, at=0.1)  # no explicit error flag
        assert trace.error
        assert tracer.kept_tail == 1

    def test_slow_requests_survive_zero_sampling(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=0.5)
        fast = tracer.begin(_request(0), at=0.0)
        tracer.finish(fast, at=0.4)
        slow = tracer.begin(_request(1), at=1.0)
        tracer.finish(slow, at=1.6)
        assert tracer.dropped == 1 and tracer.kept_tail == 1
        assert list(tracer.retained) == [slow]

    def test_none_threshold_disables_the_slow_path(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=None)
        trace = tracer.begin(_request(), at=0.0)
        tracer.finish(trace, at=1e9)
        assert tracer.dropped == 1 and len(tracer.retained) == 0

    def test_retained_ring_evicts_oldest(self):
        tracer = Tracer(sample_rate=1.0, max_retained=3)
        traces = []
        for i in range(5):
            trace = tracer.begin(_request(i), at=float(i))
            tracer.finish(trace, at=float(i))
            traces.append(trace)
        assert list(tracer.retained) == traces[2:]
        assert tracer.kept_sampled == 5  # counters are lifetime

    def test_finish_is_idempotent(self):
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.begin(_request(), at=0.0)
        tracer.finish(trace, at=1.0)
        tracer.finish(trace, at=2.0)
        assert trace.end == 1.0
        assert tracer.finished == 1 and len(tracer.retained) == 1


class TestSettlementPaths:
    def test_settle_member_and_settle_request_build_identical_trees(self):
        member = _member_kwargs()
        eager = Tracer(sample_rate=1.0)
        request_a = _request()
        trace_a = eager.begin(request_a, at=member["enqueued_at"])
        eager.settle_member(trace_a, **member)

        lazy = Tracer(sample_rate=1.0)
        request_b = _request()
        lazy.settle_request(request_b, **member)
        trace_b = request_b.trace

        def shape(trace):
            return [
                (s.name, s.start, s.end, s.status, s.attrs)
                for s in sorted(trace.spans, key=lambda s: (s.start, s.name))
            ]

        assert shape(trace_a) == shape(trace_b)
        assert trace_a.start == trace_b.start
        assert trace_a.end == trace_b.end
        assert trace_a.well_formed() and trace_b.well_formed()

    def test_settle_request_drops_without_allocating_a_trace(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=None)
        request = _request()
        tracer.settle_request(request, **_member_kwargs())
        assert request.trace is None
        assert tracer.dropped == 1 and tracer.started == 1

    def test_settle_request_keeps_failures(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=None)
        request = _request()
        tracer.settle_request(
            request, **_member_kwargs(status="error", error="boom")
        )
        assert request.trace is not None
        assert request.trace.error
        assert tracer.kept_tail == 1

    def test_settle_member_records_failure_as_error_inference_span(self):
        tracer = Tracer(sample_rate=1.0)
        member = _member_kwargs(status="error", error="pod crashed")
        request = _request()
        trace = tracer.begin(request, at=member["enqueued_at"])
        tracer.settle_member(trace, **member)
        (inference,) = trace.stages("inference")
        assert inference.status == "error"
        assert inference.attrs["error"] == "pod crashed"
        assert trace.error and trace.finished

    def test_memo_hit_gets_cache_span_instead_of_inference(self):
        tracer = Tracer(sample_rate=1.0)
        member = _member_kwargs(cache=True)
        request = _request()
        trace = tracer.begin(request, at=member["enqueued_at"])
        tracer.settle_member(trace, **member)
        assert trace.stages("inference") == []
        (cache,) = trace.stages("cache")
        assert cache.duration == 0.0
        # cache satisfies the inference requirement.
        assert trace.missing_stages() == set()


class TestSpanGeometry:
    def test_coalesce_clamps_to_the_member_but_keeps_the_window(self):
        """A non-head member joins a window that opened before it
        existed: the span clamps to the member's own life (the tree
        stays well-nested) while ``window_s`` carries the full window
        for reconciliation."""
        tracer = Tracer(sample_rate=1.0)
        member = _member_kwargs(head_enqueued=0.9, enqueued_at=1.0)
        request = _request()
        trace = tracer.begin(request, at=member["enqueued_at"])
        tracer.settle_member(trace, **member)
        (coalesce,) = trace.stages("coalesce")
        assert coalesce.start == 1.0  # not 0.9: clamped to the member
        assert coalesce.attrs["window_s"] == pytest.approx(
            member["claimed_at"] - 0.9
        )
        assert trace.well_formed()

    def test_head_member_coalesce_spans_the_whole_window(self):
        tracer = Tracer(sample_rate=1.0)
        member = _member_kwargs()  # head_enqueued == enqueued_at
        request = _request()
        trace = tracer.begin(request, at=member["enqueued_at"])
        tracer.settle_member(trace, **member)
        (coalesce,) = trace.stages("coalesce")
        assert coalesce.duration == pytest.approx(coalesce.attrs["window_s"])

    def test_missing_stages_flags_gateway_stages_only_when_asked(self):
        tracer = Tracer(sample_rate=1.0)
        request = _request()
        trace = tracer.begin(request, at=1.0)
        tracer.settle_member(trace, **_member_kwargs())
        assert trace.missing_stages() == set()
        assert trace.missing_stages(gateway=True) == {
            "admission",
            "lane_wait",
        }

    def test_well_formed_requires_finish_and_containment(self):
        trace = Trace("id", "noop", start=1.0, sampled=True)
        trace.span("settle", 1.0, 1.1)
        assert not trace.well_formed()  # unfinished
        trace.finish(at=1.1)
        assert trace.well_formed()
        escaping = Trace("id2", "noop", start=1.0, sampled=True)
        escaping.span("settle", 0.5, 1.1)  # starts before the root
        escaping.finish(at=1.1)
        assert not escaping.well_formed()

    def test_tree_is_json_able_and_ordered(self):
        tracer = Tracer(sample_rate=1.0)
        request = _request()
        trace = tracer.begin(request, at=1.0, tenant="t")
        trace.mark("reclaim", at=1.2, tenant="t")
        tracer.settle_member(trace, **_member_kwargs())
        tree = json.loads(json.dumps(trace.tree()))
        starts = [child["start"] for child in tree["children"]]
        assert starts == sorted(starts)
        assert tree["marks"] == [
            {"name": "reclaim", "at": 1.2, "attrs": {"tenant": "t"}}
        ]


@pytest.fixture()
def env():
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False, memoize_tm=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    return testbed, zoo


def _traced_runtime(testbed, zoo, tracer, replicas=2):
    from repro.core.runtime import ServingRuntime

    worker = testbed.add_fleet_worker("rw-0")
    runtime = ServingRuntime(
        testbed.clock,
        testbed.management.queue,
        [worker],
        max_batch_size=4,
        max_coalesce_delay_s=0.002,
        tracer=tracer,
    )
    published = testbed.management.publish(testbed.token, zoo["noop"])
    runtime.place(zoo["noop"], published.build.image, replicas=replicas)
    return runtime, worker


class TestHostileSettlements:
    def test_partial_chunk_failure_tail_keeps_only_the_victims(self, env):
        """One pod dies mid-batch: the failed members' traces survive
        0% head sampling with error inference spans; the memo hit and
        the surviving chunk drop as uninteresting."""
        testbed, zoo = env
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=None)
        runtime, worker = _traced_runtime(testbed, zoo, tracer)
        worker.memoize = True
        warm = runtime.serve([(0.0, TaskRequest("noop", args=("warm",)))])
        assert warm[0].result.ok

        pool = worker.executors["parsl"]._pools["noop"]
        victim = sorted(pool.pods, key=lambda p: (p.busy_until, p.name))[0]

        def explode(*args, **kwargs):
            raise RuntimeError("pod crashed mid-chunk")

        victim.exec = explode
        requests = [
            TaskRequest("noop", args=("warm",)),
            TaskRequest("noop", args=("m1",)),
            TaskRequest("noop", args=("m2",)),
            TaskRequest("noop", args=("m3",)),
        ]
        results = runtime.serve([(0.0, r) for r in requests])
        failed = [r for r in results if not r.result.ok]
        assert failed, "expected a partial chunk failure"
        assert len(tracer.retained) == len(failed)
        for trace in tracer.retained:
            assert trace.error and trace.finished
            assert trace.well_formed()
            assert trace.missing_stages() == set()
            (inference,) = trace.stages("inference")
            assert inference.status == "error"
            assert "pod crashed" in inference.attrs["error"]
        # Everything that went fine was dropped, not retained.
        assert tracer.dropped == 1 + len(results) - len(failed)

    def test_memo_hit_settles_with_cache_span_end_to_end(self, env):
        testbed, zoo = env
        tracer = Tracer(sample_rate=1.0)
        runtime, worker = _traced_runtime(testbed, zoo, tracer)
        worker.memoize = True
        runtime.serve([(0.0, TaskRequest("noop", args=("warm",)))])
        (result,) = runtime.serve(
            [(0.0, TaskRequest("noop", args=("warm",)))]
        )
        assert result.result.cache_hit
        hit_trace = tracer.retained[-1]
        assert hit_trace.stages("cache") and not hit_trace.stages("inference")
        assert hit_trace.missing_stages() == set()
        assert hit_trace.well_formed()

    def test_dead_letter_closes_the_trace_as_an_error(self, env):
        """A message that exhausts redelivery never settles; the queue's
        dead-letter feed must still close (and tail-keep) its trace."""
        from repro.messaging.queue import servable_topic

        testbed, zoo = env
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=None)
        runtime, worker = _traced_runtime(testbed, zoo, tracer)
        request = TaskRequest("noop", args=(1,))
        runtime.submit(request)
        queue = testbed.management.queue
        message = queue.claim(servable_topic("noop"))
        queue.nack(message.delivery_tag, requeue=False)
        assert queue.dead_letters
        (trace,) = tracer.retained
        assert trace.trace_id == request.task_uuid
        assert trace.finished and trace.error
        ((name, _, attrs),) = trace.marks
        assert name == "dead_letter"
        assert attrs["deliveries"] == 1


class TestSLOBurnMonitor:
    def _monitor(self, **overrides):
        kwargs = dict(
            latency_slo_s=0.1,
            objective=0.99,
            window_s=1.0,
            burn_threshold=4.0,
            min_samples=5,
            cooldown_s=1.0,
        )
        kwargs.update(overrides)
        return SLOBurnMonitor(**kwargs)

    def test_burn_rate_is_bad_fraction_over_error_budget(self):
        monitor = self._monitor()
        for i in range(10):
            monitor.record("t", at=1.0, latency_s=0.2 if i < 5 else 0.01)
        # 50% bad over a 1% budget: burn 50x.
        assert monitor.burn_rate("t", now=1.0) == pytest.approx(50.0)

    def test_failures_count_as_bad_regardless_of_latency(self):
        monitor = self._monitor()
        for _ in range(5):
            monitor.record("t", at=1.0, latency_s=0.01, ok=False)
        assert monitor.burn_rate("t", now=1.0) == pytest.approx(100.0)

    def test_below_min_samples_is_trustless(self):
        monitor = self._monitor()
        for _ in range(4):
            monitor.record("t", at=1.0, latency_s=0.5)
        assert monitor.burn_rate("t", now=1.0) is None
        assert monitor.check(now=1.0) == []
        assert monitor.burn_rate("unknown", now=1.0) is None

    def test_check_fires_once_per_cooldown(self):
        monitor = self._monitor()
        for _ in range(10):
            monitor.record("t", at=1.0, latency_s=0.5)
        first = monitor.check(now=1.0)
        assert len(first) == 1
        breach = first[0]
        assert breach.tenant == "t" and breach.burn_rate >= 4.0
        assert breach.bad_fraction == pytest.approx(1.0)
        # Still burning, but inside the cooldown: silent.
        assert monitor.check(now=1.5) == []
        # Keep the window populated past the cooldown: fires again.
        for _ in range(10):
            monitor.record("t", at=2.0, latency_s=0.5)
        assert len(monitor.check(now=2.0)) == 1
        assert len(monitor.breaches) == 2

    def test_window_slides_old_badness_out(self):
        monitor = self._monitor(cooldown_s=0.0)
        for _ in range(10):
            monitor.record("t", at=0.0, latency_s=0.5)
        assert monitor.check(now=0.5)
        # 2 s later the bad samples are out of window entirely.
        assert monitor.burn_rate("t", now=2.0) is None
        assert monitor.check(now=2.0) == []

    def test_drain_returns_only_fresh_breaches(self):
        monitor = self._monitor(cooldown_s=0.0)
        for _ in range(10):
            monitor.record("t", at=1.0, latency_s=0.5)
        monitor.check(now=1.0)
        assert len(monitor.drain()) == 1
        assert monitor.drain() == []
        for _ in range(10):
            monitor.record("t", at=2.0, latency_s=0.5)
        monitor.check(now=2.0)
        assert len(monitor.drain()) == 1

    def test_tenants_lists_everyone_recorded_sorted(self):
        monitor = self._monitor()
        assert monitor.tenants() == ()
        monitor.record("beta", at=0.0, latency_s=0.01)
        monitor.record("alpha", at=0.0, latency_s=0.01)
        assert monitor.tenants() == ("alpha", "beta")

    def test_validation(self):
        for bad in (
            dict(latency_slo_s=0.0),
            dict(objective=1.0),
            dict(objective=0.0),
            dict(window_s=0.0),
            dict(burn_threshold=0.0),
            dict(min_samples=0),
            dict(cooldown_s=-1.0),
        ):
            with pytest.raises(TelemetryError):
                SLOBurnMonitor(**bad)


class TestTelemetryHub:
    def test_instruments_are_stable_by_name_and_labels(self):
        hub = TelemetryHub()
        counter = hub.counter("served", tenant="t")
        counter.inc()
        counter.inc(2.0)
        assert hub.counter("served", tenant="t") is counter
        assert hub.counter("served", tenant="other") is not counter
        assert counter.value == 3.0
        with pytest.raises(TelemetryError):
            counter.inc(-1.0)

    def test_gauge_and_histogram(self):
        hub = TelemetryHub()
        hub.gauge("depth").set(7.0)
        hub.gauge("depth").set(3.0)
        assert hub.gauge("depth").value == 3.0
        histogram = hub.histogram("latency", stage="dispatch")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.summary() == {
            "count": 3,
            "sum": 6.0,
            "min": 1.0,
            "max": 3.0,
            "mean": 2.0,
        }
        assert hub.histogram("empty").summary()["min"] is None

    def test_snapshot_renders_prometheus_style_keys(self):
        hub = TelemetryHub()
        hub.counter("served", tenant="t", servable="noop").inc()
        hub.gauge("plain").set(1.0)
        snapshot = hub.snapshot()
        assert snapshot["counters"] == {
            "served{servable=noop,tenant=t}": 1.0
        }
        assert snapshot["gauges"] == {"plain": 1.0}

    def test_sources_pull_fresh_on_every_snapshot(self):
        hub = TelemetryHub()
        state = {"n": 0}
        hub.register_source("live", lambda: state["n"])
        assert hub.snapshot()["sources"]["live"] == 0
        state["n"] = 5
        assert hub.snapshot()["sources"]["live"] == 5
        with pytest.raises(TelemetryError):
            hub.register_source("bad", 42)

    def test_snapshot_json_round_trips(self):
        hub = TelemetryHub()
        hub.histogram("latency").observe(1.0)
        hub.register_source("stats", lambda: {"ok": True})
        doc = json.loads(hub.snapshot_json())
        assert doc["sources"]["stats"] == {"ok": True}

    def test_build_hub_wires_whatever_exists(self):
        tracer = Tracer(sample_rate=1.0)
        monitor = SLOBurnMonitor()
        hub = build_hub(tracer=tracer, monitor=monitor)
        sources = hub.snapshot()["sources"]
        assert set(sources) == {"tracer", "slo_burn"}
        assert sources["tracer"]["sample_rate"] == 1.0
        assert sources["slo_burn"] == []


class TestChromeExport:
    def test_export_covers_spans_and_marks(self, env):
        testbed, zoo = env
        tracer = Tracer(sample_rate=1.0)
        runtime, _ = _traced_runtime(testbed, zoo, tracer)
        sample = sample_input("noop")
        runtime.serve(
            [(i * 0.001, TaskRequest("noop", args=sample)) for i in range(4)]
        )
        retained = list(tracer.retained)
        retained[0].mark("reclaim", at=retained[0].start, tenant="t")
        doc = tracer.chrome_trace()
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        # One root per trace + five stage spans each, one mark.
        assert len(complete) == len(retained) * 6
        assert len(instants) == 1 and instants[0]["name"] == "reclaim"
        # Each trace renders on its own waterfall row.
        assert {e["tid"] for e in events} == set(
            range(1, len(retained) + 1)
        )
        for event in complete:
            assert event["dur"] >= 0 and event["ts"] >= 0
        # Timestamps are microseconds of virtual time.
        root = complete[0]
        assert root["ts"] == pytest.approx(retained[0].start * 1e6)
        json.loads(tracer.chrome_trace_json())


class TestTenantSamplingOverrides:
    def test_override_applies_to_the_owning_tenant_only(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=None)
        tracer.set_tenant_rate("hot", 1.0)
        for i in range(4):
            trace = tracer.begin(_request(i), at=0.0, tenant="hot")
            tracer.finish(trace, at=0.0)
        for i in range(4, 8):
            trace = tracer.begin(_request(i), at=0.0, tenant="cold")
            tracer.finish(trace, at=0.0)
        # Every hot request kept, every cold one dropped at rate 0.
        assert tracer.kept_sampled == 4
        assert tracer.dropped == 4

    def test_override_does_not_perturb_base_diffusion(self):
        """The override owns a dedicated accumulator: the shared
        error-diffusion cadence is bit-for-bit what it is without any
        override installed."""
        tracer = Tracer(sample_rate=0.25, slow_threshold_s=None)
        tracer.set_tenant_rate("hot", 1.0)
        flags = []
        for i in range(16):
            hot = tracer.begin(_request(2 * i), at=0.0, tenant="hot")
            tracer.finish(hot, at=0.0)
            base = tracer.begin(_request(2 * i + 1), at=0.0, tenant="base")
            flags.append(base.sampled)
            tracer.finish(base, at=0.0)
        assert flags == [False, False, False, True] * 4

    def test_set_clear_and_effective_rate(self):
        tracer = Tracer(sample_rate=0.01)
        tracer.set_tenant_rate("hot", 0.5)
        assert tracer.effective_rate("hot") == 0.5
        assert tracer.effective_rate("cold") == 0.01
        assert tracer.tenant_rates == {"hot": 0.5}
        tracer.clear_tenant_rate("hot")
        assert tracer.effective_rate("hot") == 0.01
        assert tracer.tenant_rates == {}
        with pytest.raises(TelemetryError):
            tracer.set_tenant_rate("hot", 1.5)

    def test_clear_drops_the_override_accumulator(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=None)
        tracer.set_tenant_rate("hot", 0.5)
        first = tracer.begin(_request(0), at=0.0, tenant="hot")
        tracer.finish(first, at=0.0)
        assert not first.sampled  # diffusion at 0.5: [drop, keep, ...]
        tracer.clear_tenant_rate("hot")
        tracer.set_tenant_rate("hot", 0.5)
        # Fresh episode, fresh accumulator: the cadence restarts.
        flags = []
        for i in range(1, 5):
            trace = tracer.begin(_request(i), at=0.0, tenant="hot")
            flags.append(trace.sampled)
            tracer.finish(trace, at=0.0)
        assert flags == [False, True, False, True]

    def test_lazy_settlement_path_honors_the_override(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=None)
        tracer.set_tenant_rate("hot", 1.0)
        kept = TaskRequest("noop", args=(0,), tenant="hot")
        tracer.settle_request(kept, **_member_kwargs())
        assert kept.trace is not None
        dropped = TaskRequest("noop", args=(1,), tenant="cold")
        tracer.settle_request(dropped, **_member_kwargs())
        assert dropped.trace is None


class TestHubChurn:
    def test_unregister_source(self):
        hub = TelemetryHub()
        hub.counter("served").inc()
        hub.register_source("w0", lambda: {"depth": 1})
        assert hub.sources() == ("w0",)
        assert hub.unregister_source("w0") is True
        assert hub.unregister_source("w0") is False
        assert hub.sources() == ()
        snapshot = hub.snapshot()
        # The source is gone; instrument series survive the departure.
        assert snapshot["sources"] == {}
        assert snapshot["counters"] == {"served": 1.0}

    def test_reregistering_replaces_the_collector(self):
        hub = TelemetryHub()
        hub.register_source("w0", lambda: "old")
        hub.register_source("w0", lambda: "new")
        assert hub.sources() == ("w0",)
        assert hub.snapshot()["sources"]["w0"] == "new"

    def test_strict_snapshot_propagates_nonstrict_stubs(self):
        hub = TelemetryHub()
        hub.register_source("good", lambda: 7)

        def _torn_down():
            raise RuntimeError("worker left mid-scrape")

        hub.register_source("torn", _torn_down)
        with pytest.raises(RuntimeError):
            hub.snapshot()
        relaxed = hub.snapshot(strict=False)
        assert relaxed["sources"]["good"] == 7
        assert "worker left mid-scrape" in relaxed["sources"]["torn"]["error"]
