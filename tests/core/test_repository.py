"""Unit tests for the model repository (publish, version, discover, cite)."""

import pytest

from repro.auth.identity import IdentityStore
from repro.containers.registry import ContainerRegistry
from repro.core.builder import ServableBuilder
from repro.core.repository import ModelRepository, RepositoryError
from repro.core.servable import PythonFunctionServable
from repro.core.toolbox import MetadataBuilder
from repro.search.index import ViewerContext, Visibility
from repro.sim.clock import VirtualClock


def make_servable(name="model_a", domain="general"):
    metadata = (
        MetadataBuilder(name, f"The {name} model")
        .creator("Chard, R.")
        .description(f"A test model named {name}")
        .model_type("python_function")
        .input_type("dict")
        .output_type("dict")
        .domain(domain)
        .build()
    )
    return PythonFunctionServable(metadata, lambda x: x)


@pytest.fixture
def env():
    clock = VirtualClock()
    repo = ModelRepository(clock, ServableBuilder(clock, ContainerRegistry()))
    ids = IdentityStore()
    ids.add_provider("globus")
    owner = ids.register_identity("globus", "ryan")
    other = ids.register_identity("globus", "eve")
    return repo, owner, other


class TestPublish:
    def test_publish_builds_and_indexes(self, env):
        repo, owner, _ = env
        published = repo.publish(make_servable(), owner)
        assert published.version == 1
        assert published.full_name == "ryan/model_a"
        assert repo.builder.registry.exists("dlhub/model_a:v1")
        assert published.doc_id in repo.index

    def test_doi_minted(self, env):
        repo, owner, _ = env
        a = repo.publish(make_servable("m1"), owner)
        b = repo.publish(make_servable("m2"), owner)
        assert a.doi != b.doi
        assert a.doi.startswith("10.26311/dlhub.")

    def test_byo_doi(self, env):
        repo, owner, _ = env
        published = repo.publish(make_servable(), owner, doi="10.5555/custom")
        assert published.doi == "10.5555/custom"

    def test_republish_bumps_version(self, env):
        repo, owner, _ = env
        v1 = repo.publish(make_servable(), owner)
        v2 = repo.publish(make_servable(), owner)
        assert (v1.version, v2.version) == (1, 2)
        assert repo.get("ryan/model_a").version == 2  # latest by default
        assert repo.get("ryan/model_a", version=1) is v1
        assert len(repo.versions("ryan/model_a")) == 2

    def test_same_name_different_owners(self, env):
        repo, owner, other = env
        repo.publish(make_servable(), owner)
        repo.publish(make_servable(), other)
        assert repo.get("ryan/model_a").owner is owner
        assert repo.get("eve/model_a").owner is other


class TestResolve:
    def test_resolve_full_name(self, env):
        repo, owner, _ = env
        repo.publish(make_servable(), owner)
        assert repo.resolve("ryan/model_a").owner is owner

    def test_resolve_bare_unique_name(self, env):
        repo, owner, _ = env
        repo.publish(make_servable(), owner)
        assert repo.resolve("model_a").owner is owner

    def test_resolve_version_suffix(self, env):
        repo, owner, _ = env
        repo.publish(make_servable(), owner)
        repo.publish(make_servable(), owner)
        assert repo.resolve("ryan/model_a@v1").version == 1

    def test_ambiguous_bare_name(self, env):
        repo, owner, other = env
        repo.publish(make_servable(), owner)
        repo.publish(make_servable(), other)
        with pytest.raises(RepositoryError, match="ambiguous"):
            repo.resolve("model_a")

    def test_unknown_names(self, env):
        repo, _, _ = env
        with pytest.raises(RepositoryError):
            repo.resolve("ghost")
        with pytest.raises(RepositoryError):
            repo.get("ryan/ghost")

    def test_bad_version(self, env):
        repo, owner, _ = env
        repo.publish(make_servable(), owner)
        with pytest.raises(RepositoryError):
            repo.get("ryan/model_a", version=9)


class TestDiscovery:
    def test_search_by_text(self, env):
        repo, owner, _ = env
        repo.publish(make_servable("alpha_net", domain="vision"), owner)
        repo.publish(make_servable("beta_forest", domain="materials"), owner)
        assert repo.search("alpha*").total == 1
        assert repo.search("dlhub.domain:materials").total == 1

    def test_search_respects_visibility(self, env):
        repo, owner, other = env
        repo.publish(
            make_servable("secret_model"),
            owner,
            visibility=Visibility.restricted(principals=[owner.identity_id]),
        )
        anon = repo.search("secret*")
        assert anon.total == 0
        as_owner = repo.search(
            "secret*", ViewerContext(principal_id=owner.identity_id)
        )
        assert as_owner.total == 1

    def test_set_visibility_owner_only(self, env):
        repo, owner, other = env
        repo.publish(make_servable(), owner)
        with pytest.raises(RepositoryError):
            repo.set_visibility("ryan/model_a", Visibility(), other)
        repo.set_visibility(
            "ryan/model_a", Visibility.restricted(groups=["x"]), owner
        )
        assert repo.search("model_a").total == 0

    def test_visibility_update_covers_all_versions(self, env):
        repo, owner, _ = env
        repo.publish(make_servable(), owner)
        repo.publish(make_servable(), owner)
        repo.set_visibility(
            "ryan/model_a", Visibility.restricted(principals=["nobody"]), owner
        )
        assert repo.search("model_a").total == 0


class TestCitation:
    def test_cite_format(self, env):
        repo, owner, _ = env
        published = repo.publish(make_servable(), owner)
        citation = repo.cite("ryan/model_a")
        assert "Chard, R." in citation
        assert published.doi in citation
        assert "v1" in citation

    def test_record_citation(self, env):
        repo, owner, _ = env
        repo.publish(make_servable(), owner)
        repo.record_citation("ryan/model_a", "Smith et al. 2026")
        assert repo.get("ryan/model_a").citations == ["Smith et al. 2026"]

    def test_all_models_latest_versions(self, env):
        repo, owner, _ = env
        repo.publish(make_servable("m1"), owner)
        repo.publish(make_servable("m1"), owner)
        repo.publish(make_servable("m2"), owner)
        latest = repo.all_models()
        assert len(latest) == 2
        assert {m.version for m in latest if m.servable.name == "m1"} == {2}
