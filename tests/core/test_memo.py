"""Unit tests for the memoization cache."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.memo import MemoCache
from repro.sim.clock import VirtualClock


class TestBasicCaching:
    def test_miss_then_hit(self):
        cache = MemoCache()
        sig = ("servable", (1, 2), ())
        assert cache.lookup(sig) is cache.MISSING
        cache.store(sig, "result")
        assert cache.lookup(sig) == "result"
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_signatures_distinct_entries(self):
        cache = MemoCache()
        cache.store(("s", (1,), ()), "one")
        cache.store(("s", (2,), ()), "two")
        assert cache.lookup(("s", (1,), ())) == "one"
        assert cache.lookup(("s", (2,), ())) == "two"

    def test_ndarray_inputs_keyable(self):
        cache = MemoCache()
        arr = np.arange(10)
        sig = ("model", (arr,), ())
        cache.store(sig, "cached")
        assert cache.lookup(("model", (np.arange(10),), ())) == "cached"

    def test_unkeyable_signature_never_cached(self):
        cache = MemoCache()
        sig = ("s", (lambda: 1,), ())
        assert not cache.store(sig, "x")
        assert cache.lookup(sig) is cache.MISSING
        assert cache.unhashable == 1

    def test_clear(self):
        cache = MemoCache()
        cache.store(("s", (), ()), 1)
        cache.clear()
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = MemoCache()
        sig = ("s", (), ())
        cache.lookup(sig)
        cache.store(sig, 1)
        cache.lookup(sig)
        assert cache.hit_rate == pytest.approx(0.5)


class TestLRU:
    def test_eviction_at_capacity(self):
        cache = MemoCache(max_entries=2)
        for i in range(3):
            cache.store(("s", (i,), ()), i)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.lookup(("s", (0,), ())) is cache.MISSING  # oldest gone
        assert cache.lookup(("s", (2,), ())) == 2

    def test_lookup_refreshes_recency(self):
        cache = MemoCache(max_entries=2)
        cache.store(("s", (0,), ()), 0)
        cache.store(("s", (1,), ()), 1)
        cache.lookup(("s", (0,), ()))  # refresh 0
        cache.store(("s", (2,), ()), 2)  # evicts 1, not 0
        assert cache.lookup(("s", (0,), ())) == 0
        assert cache.lookup(("s", (1,), ())) is cache.MISSING

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MemoCache(max_entries=0)


class TestClockCharging:
    def test_lookup_charges_clock(self):
        clock = VirtualClock()
        cache = MemoCache(clock, lookup_cost_s=0.0005)
        cache.lookup(("s", (), ()))
        assert clock.now() == pytest.approx(0.0005)

    def test_no_clock_no_charge(self):
        cache = MemoCache(None)
        cache.lookup(("s", (), ()))  # must not raise


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(-100, 100), st.integers(-100, 100)),
            min_size=1,
            max_size=40,
        )
    )
    def test_store_then_lookup_property(self, pairs):
        """Whatever was stored last for a key is what lookup returns."""
        cache = MemoCache(max_entries=1000)
        expected = {}
        for key, value in pairs:
            sig = ("s", (key,), ())
            cache.store(sig, value)
            expected[key] = value
        for key, value in expected.items():
            assert cache.lookup(("s", (key,), ())) == value

    @given(st.integers(1, 10), st.integers(1, 50))
    def test_capacity_never_exceeded_property(self, capacity, n_inserts):
        cache = MemoCache(max_entries=capacity)
        for i in range(n_inserts):
            cache.store(("s", (i,), ()), i)
            assert len(cache) <= capacity
