"""Tenant lane lifecycle: idle lanes GC out of the topic scan.

Per-tenant sub-topics used to accumulate in ``ServingRuntime._lanes``
forever; with thousands of churning tenants every ``_next_window`` scan
(and ``queue_depth``) paid for all of history. A lane is collected once
its topic is empty, nothing claimed from it is still in flight, and the
tenant has been idle past ``lane_idle_ttl_s``.
"""

from repro.core.runtime import ServingRuntime
from repro.core.tasks import TaskRequest
from repro.core.zoo import build_zoo
from repro.messaging.queue import servable_topic


def build_runtime(**kwargs):
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False, memoize_tm=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    runtime = ServingRuntime(
        testbed.clock,
        testbed.management.queue,
        [testbed.task_manager],
        max_batch_size=4,
        **kwargs,
    )
    published = testbed.management.publish(testbed.token, zoo["noop"])
    runtime.place(zoo["noop"], published.build.image)
    return testbed, runtime


def lanes_of(runtime, servable="noop"):
    return set(runtime._lanes.get(servable, set()))


class TestLaneGC:
    def test_idle_tenant_lane_is_collected(self):
        testbed, runtime = build_runtime(lane_idle_ttl_s=1.0)
        runtime.submit(TaskRequest("noop", tenant="ephemeral"))
        runtime.drain()
        assert "tenant-ephemeral" in lanes_of(runtime)

        # Not yet idle long enough.
        testbed.clock.advance(0.5)
        assert runtime.gc_lanes() == 0
        testbed.clock.advance(1.0)
        assert runtime.gc_lanes() == 1
        assert lanes_of(runtime) == {"requests"}
        assert runtime.lanes_collected == 1

    def test_default_lane_never_collected(self):
        testbed, runtime = build_runtime(lane_idle_ttl_s=0.1)
        runtime.submit(TaskRequest("noop"))
        runtime.drain()
        testbed.clock.advance(10.0)
        assert runtime.gc_lanes() == 0
        assert lanes_of(runtime) == {"requests"}

    def test_lane_with_ready_work_survives(self):
        testbed, runtime = build_runtime(lane_idle_ttl_s=0.1)
        runtime.submit(TaskRequest("noop", tenant="parked"))
        testbed.clock.advance(10.0)
        assert runtime.gc_lanes() == 0
        assert "tenant-parked" in lanes_of(runtime)
        # Once served and idle again, it goes.
        runtime.drain()
        testbed.clock.advance(10.0)
        assert runtime.gc_lanes() == 1

    def test_lane_with_inflight_claim_survives(self):
        testbed, runtime = build_runtime(lane_idle_ttl_s=0.1)
        runtime.submit(TaskRequest("noop", tenant="ghost"))
        topic = servable_topic("noop", lane="tenant-ghost")
        # A consumer claims and dies: the message is in flight, not
        # ready — the lane must survive so redelivery lands on a
        # scanned topic.
        runtime.queue.claim(topic)
        testbed.clock.advance(10.0)
        assert runtime.gc_lanes() == 0
        assert "tenant-ghost" in lanes_of(runtime)

    def test_serve_loop_runs_gc(self):
        testbed, runtime = build_runtime(lane_idle_ttl_s=0.05)
        runtime.submit(TaskRequest("noop", tenant="bursty"))
        runtime.drain()
        # A later schedule advances the clock past the TTL; the loop's
        # periodic sweep collects the idle lane without an explicit call.
        results = runtime.serve([(0.5, TaskRequest("noop"))])
        assert len(results) == 1
        assert lanes_of(runtime) == {"requests"}

    def test_submit_bounds_tracked_lanes(self):
        testbed, runtime = build_runtime(
            lane_idle_ttl_s=0.1, max_lanes_per_servable=4
        )
        # Churn more tenants than the bound; each round drains and goes
        # idle before the next submit arrives.
        for i in range(12):
            runtime.submit(TaskRequest("noop", tenant=f"t{i}"))
            runtime.drain()
            testbed.clock.advance(0.2)
        # The soft bound forced opportunistic GC on the way: tracked
        # lanes stayed near the bound instead of growing to 13.
        assert len(lanes_of(runtime)) <= 5
        assert runtime.lanes_collected >= 8
