"""Unit tests for the ServingRuntime: coalescing, sharding, stage metrics.

The runtime is the server-side batching layer: single-item requests land
on per-servable topics and are claimed in micro-batches bounded by
``max_batch_size`` and ``max_coalesce_delay_s`` on the virtual clock.
"""

import pytest

from repro.core.runtime import ServingRuntime, ServingRuntimeError
from repro.core.tasks import TaskRequest
from repro.core.zoo import build_zoo
from repro.messaging.queue import servable_topic


def build_fleet(
    n_workers=2,
    servables=("noop", "matminer_util"),
    copies=1,
    memoize=True,
    **runtime_kwargs,
):
    """A testbed-backed fleet: extra Task Managers on the shared queue."""
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False, memoize_tm=memoize)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    workers = [testbed.task_manager]
    workers += [testbed.add_task_manager(f"tm-{i}") for i in range(1, n_workers)]
    runtime = ServingRuntime(
        testbed.clock, testbed.management.queue, workers, **runtime_kwargs
    )
    for name in servables:
        published = testbed.management.publish(testbed.token, zoo[name])
        runtime.place(zoo[name], published.build.image, copies=copies)
    return testbed, zoo, runtime


class TestConstruction:
    def test_requires_workers(self, clock):
        from repro.messaging.queue import TaskQueue

        with pytest.raises(ServingRuntimeError):
            ServingRuntime(clock, TaskQueue(clock), [])

    def test_rejects_duplicate_worker_names(self):
        from repro.core.testbed import build_testbed

        testbed = build_testbed(jitter=False)
        dupe = testbed.add_task_manager(testbed.task_manager.name)
        with pytest.raises(ServingRuntimeError, match="unique"):
            ServingRuntime(
                testbed.clock,
                testbed.management.queue,
                [testbed.task_manager, dupe],
            )

    def test_rejects_bad_bounds(self):
        from repro.core.testbed import build_testbed

        testbed = build_testbed(jitter=False)
        with pytest.raises(ServingRuntimeError):
            ServingRuntime(
                testbed.clock,
                testbed.management.queue,
                [testbed.task_manager],
                max_batch_size=0,
            )
        with pytest.raises(ServingRuntimeError):
            ServingRuntime(
                testbed.clock,
                testbed.management.queue,
                [testbed.task_manager],
                max_coalesce_delay_s=-1.0,
            )


class TestPlacement:
    def test_shards_spread_across_workers(self):
        testbed, zoo, runtime = build_fleet(
            n_workers=2, servables=("noop", "matminer_util", "cifar10")
        )
        placement = runtime.placement()
        hosting_counts = {w.name: 0 for w in runtime.workers}
        for hosts in placement.values():
            assert len(hosts) == 1
            hosting_counts[hosts[0]] += 1
        # 3 servables over 2 workers: a 2/1 split, never 3/0.
        assert sorted(hosting_counts.values()) == [1, 2]

    def test_copies_register_on_distinct_workers(self):
        testbed, zoo, runtime = build_fleet(n_workers=2, servables=("noop",), copies=2)
        hosts = runtime.placement()["noop"]
        assert len(hosts) == 2 and len(set(hosts)) == 2

    def test_double_place_rejected(self):
        testbed, zoo, runtime = build_fleet(servables=("noop",))
        with pytest.raises(ServingRuntimeError, match="already placed"):
            runtime.place(zoo["noop"], None)

    def test_too_many_copies_rejected(self):
        testbed, zoo, runtime = build_fleet(n_workers=2, servables=())
        with pytest.raises(ServingRuntimeError, match="copies"):
            runtime.place(zoo["noop"], None, copies=3)

    def test_unplaced_servable_routing_fails(self):
        testbed, zoo, runtime = build_fleet(servables=())
        with pytest.raises(ServingRuntimeError, match="not placed"):
            runtime.hosts("ghost")


class TestCoalescing:
    def test_backlog_coalesces_into_one_batch(self):
        testbed, _, runtime = build_fleet(servables=("noop",), max_batch_size=8)
        for _ in range(8):
            runtime.submit(TaskRequest("noop"))
        results = runtime.drain()
        assert len(results) == 8
        assert all(r.result.ok for r in results)
        assert runtime.batches_dispatched == 1
        assert {r.batch_size for r in results} == {8}

    def test_max_batch_size_caps_windows(self):
        testbed, _, runtime = build_fleet(servables=("noop",), max_batch_size=4)
        for _ in range(10):
            runtime.submit(TaskRequest("noop"))
        results = runtime.drain()
        assert len(results) == 10
        assert runtime.batches_dispatched == 3
        assert sorted(r.batch_size for r in results) == [2, 2, 4, 4, 4, 4, 4, 4, 4, 4]

    def test_submit_rejects_preformed_batches(self):
        testbed, _, runtime = build_fleet(servables=("noop",))
        with pytest.raises(ServingRuntimeError, match="single-item"):
            runtime.submit(TaskRequest("noop", batch=[(), ()]))

    def test_submit_rejects_unplaced_servable(self):
        """Bad requests bounce at the door instead of poisoning drain()."""
        testbed, _, runtime = build_fleet(servables=("noop",))
        with pytest.raises(ServingRuntimeError, match="not placed"):
            runtime.submit(TaskRequest("ghost"))
        assert runtime.drain() == []

    def test_coalesce_delay_bounds_window(self):
        """Sparse arrivals close by timeout; the recorded coalesce delay
        never exceeds the configured bound."""
        delay = 0.005
        testbed, _, runtime = build_fleet(
            servables=("noop",), max_batch_size=100, max_coalesce_delay_s=delay
        )
        arrivals = [(i * 0.002, TaskRequest("noop")) for i in range(20)]
        results = runtime.serve(arrivals)
        assert len(results) == 20
        assert runtime.batches_dispatched > 1  # windows did close early
        for sample in runtime.stage_metrics.samples("coalesce_delay", "noop"):
            assert sample <= delay + 1e-9

    def test_sparse_arrivals_stay_unbatched(self):
        """Arrivals spaced wider than the window are served singly."""
        testbed, _, runtime = build_fleet(
            servables=("noop",), max_batch_size=100, max_coalesce_delay_s=0.001
        )
        arrivals = [(i * 0.5, TaskRequest("noop")) for i in range(4)]
        results = runtime.serve(arrivals)
        assert len(results) == 4
        assert {r.batch_size for r in results} == {1}

    def test_mixed_servables_coalesce_per_topic(self):
        testbed, zoo, runtime = build_fleet(
            n_workers=2, servables=("noop", "matminer_util"), max_batch_size=16
        )
        for _ in range(6):
            runtime.submit(TaskRequest("noop"))
            runtime.submit(TaskRequest("matminer_util", args=("NaCl",)))
        results = runtime.drain()
        assert len(results) == 12
        by_servable = {}
        for r in results:
            by_servable.setdefault(r.request.servable_name, set()).add(r.batch_size)
        # Topics never mix: each servable coalesced into its own batch.
        assert by_servable == {"noop": {6}, "matminer_util": {6}}
        # Routing honoured the placement shards.
        placement = runtime.placement()
        for r in results:
            assert r.worker in placement[r.request.servable_name]


class TestStageMetrics:
    def test_all_stages_recorded(self):
        testbed, _, runtime = build_fleet(servables=("noop",), max_batch_size=4)
        for _ in range(8):
            runtime.submit(TaskRequest("noop"))
        runtime.drain()
        metrics = runtime.stage_metrics
        assert metrics.count("queue_wait", "noop") == 8  # one per item
        assert metrics.count("coalesce_delay", "noop") == 2  # one per batch
        assert metrics.count("dispatch", "noop") == 2
        assert metrics.count("inference", "noop") == 2
        assert metrics.summarize("inference", "noop").median > 0

    def test_latency_measured_from_intended_arrival(self):
        testbed, _, runtime = build_fleet(servables=("noop",), max_batch_size=2)
        arrivals = [(0.0, TaskRequest("noop")), (0.001, TaskRequest("noop"))]
        results = runtime.serve(arrivals)
        for r in results:
            assert r.completed_at >= r.arrival_time
            assert r.latency == pytest.approx(r.completed_at - r.arrival_time)


class TestServerSideMemo:
    def test_batch_dispatches_only_misses(self):
        """Acceptance: coalesced batches hit the memo cache per item — a
        batch of previously-seen inputs dispatches only the misses."""
        testbed, _, runtime = build_fleet(
            servables=("matminer_util",), memoize=True, max_batch_size=8
        )
        warm = TaskRequest("matminer_util", args=("NaCl",))
        runtime.submit(warm)
        runtime.drain()
        executor = testbed.parsl_executor
        served_before = executor.requests_served
        hits_before = runtime.memo_hits
        # 3 repeats of the seen input + 1 new input, coalesced into one batch.
        for formula in ("NaCl", "NaCl", "NaCl", "SiO2"):
            runtime.submit(TaskRequest("matminer_util", args=(formula,)))
        results = runtime.drain()
        assert len(results) == 4 and all(r.result.ok for r in results)
        assert runtime.batches_dispatched == 2  # warmup + the batch
        assert executor.requests_served - served_before == 1  # only SiO2
        assert runtime.memo_hits - hits_before == 3
        # Per-item hit identity survives the batch split.
        by_formula = {r.request.args[0]: r.result for r in results}
        assert by_formula["NaCl"].cache_hit and not by_formula["SiO2"].cache_hit
        assert by_formula["NaCl"].inference_time == 0.0
        assert by_formula["SiO2"].inference_time > 0.0

    def test_failed_dispatch_recovers_memo_hits(self):
        """When a batch's dispatch fails, only the misses fail — items
        the cache answered are re-served individually."""
        testbed, _, runtime = build_fleet(
            servables=("matminer_util",), memoize=True, max_batch_size=8
        )
        runtime.submit(TaskRequest("matminer_util", args=("NaCl",)))
        runtime.drain()
        # Kill every pod so the next executor dispatch fails.
        for pod in testbed.parsl_executor._deployments["matminer_util"].ready_pods():
            pod.fail()
        for formula in ("NaCl", "SiO2"):
            runtime.submit(TaskRequest("matminer_util", args=(formula,)))
        results = runtime.drain()
        by_formula = {r.request.args[0]: r.result for r in results}
        assert by_formula["NaCl"].ok and by_formula["NaCl"].cache_hit
        assert not by_formula["SiO2"].ok
        assert "no ready pods" in by_formula["SiO2"].error

    def test_fully_cached_batch_serves_in_cache_time(self):
        testbed, _, runtime = build_fleet(
            servables=("matminer_util",), memoize=True, max_batch_size=8
        )
        runtime.submit(TaskRequest("matminer_util", args=("NaCl",)))
        runtime.drain()
        executor = testbed.parsl_executor
        served_before = executor.requests_served
        for _ in range(5):
            runtime.submit(TaskRequest("matminer_util", args=("NaCl",)))
        results = runtime.drain()
        assert all(r.result.ok for r in results)
        assert executor.requests_served == served_before  # never left the TM
        assert all(r.result.cache_hit for r in results)


class TestLiveness:
    def test_mark_down_reroutes_to_surviving_host(self):
        testbed, zoo, runtime = build_fleet(
            n_workers=2, servables=("noop",), copies=2
        )
        primary = runtime.placement()["noop"][0]
        runtime.mark_down(primary)
        runtime.submit(TaskRequest("noop"))
        results = runtime.drain()
        assert results[0].result.ok
        assert results[0].worker != primary

    def test_all_hosts_down_leaves_work_queued(self):
        """Unroutable topics wait instead of aborting the serve loop —
        the work is served once a host comes back."""
        testbed, zoo, runtime = build_fleet(n_workers=2, servables=("noop",), copies=2)
        hosts = runtime.placement()["noop"]
        for name in hosts:
            runtime.mark_down(name)
        runtime.submit(TaskRequest("noop"))
        assert runtime.drain() == []
        assert testbed.management.queue.ready_count(servable_topic("noop")) == 1
        runtime.mark_up(hosts[0])
        results = runtime.drain()
        assert len(results) == 1 and results[0].result.ok

    def test_mark_up_restores_routing(self):
        testbed, zoo, runtime = build_fleet(servables=("noop",))
        name = runtime.placement()["noop"][0]
        runtime.mark_down(name)
        runtime.mark_up(name)
        runtime.submit(TaskRequest("noop"))
        assert runtime.drain()[0].result.ok

    def test_unknown_worker_rejected(self):
        testbed, zoo, runtime = build_fleet()
        with pytest.raises(ServingRuntimeError, match="unknown worker"):
            runtime.mark_down("nobody")


class TestTopicConvention:
    def test_submit_uses_servable_topic(self):
        testbed, _, runtime = build_fleet(servables=("noop",))
        msg = runtime.submit(TaskRequest("noop"))
        assert msg.topic == servable_topic("noop")
        assert testbed.management.queue.ready_count(servable_topic("noop")) == 1
        runtime.drain()

    def test_sync_dispatch_never_steals_coalescing_traffic(self):
        """The Management Service's synchronous path rides its own lane:
        a run() call must not claim requests parked for a batch window."""
        testbed, _, runtime = build_fleet(servables=("matminer_util",))
        parked = TaskRequest("matminer_util", args=("NaCl",))
        runtime.submit(parked)
        sync = testbed.management.run(testbed.token, "matminer_util", "SiO2")
        assert sync.ok
        results = runtime.drain()
        assert [r.request.task_uuid for r in results] == [parked.task_uuid]
        assert results[0].result.ok


class TestDynamicMembership:
    def test_add_worker_becomes_placement_target(self):
        testbed, zoo, runtime = build_fleet(n_workers=1, servables=("noop",))
        joined = runtime.add_worker(testbed.add_task_manager("tm-late"))
        runtime.add_copy("noop", joined)
        assert runtime.placement()["noop"] == [runtime.workers[0].name, "tm-late"]

    def test_add_worker_rejects_duplicates_and_foreign_queues(self):
        from repro.core.task_manager import TaskManager
        from repro.messaging.queue import TaskQueue

        testbed, zoo, runtime = build_fleet(n_workers=1, servables=())
        with pytest.raises(ServingRuntimeError, match="already in fleet"):
            runtime.add_worker(testbed.add_task_manager(runtime.workers[0].name))
        stranger = TaskManager(testbed.clock, TaskQueue(testbed.clock), name="alien")
        with pytest.raises(ServingRuntimeError, match="queue"):
            runtime.add_worker(stranger)

    def test_remove_worker_requires_empty_host(self):
        testbed, zoo, runtime = build_fleet(n_workers=2, servables=("noop",))
        host, idle = runtime.placement()["noop"][0], None
        idle = next(w.name for w in runtime.workers if w.name != host)
        with pytest.raises(ServingRuntimeError, match="still hosts"):
            runtime.remove_worker(host)
        runtime.remove_worker(idle)
        assert [w.name for w in runtime.workers] == [host]
        with pytest.raises(ServingRuntimeError, match="last worker"):
            runtime.remove_worker(host)

    def test_copy_lifecycle(self):
        testbed, zoo, runtime = build_fleet(n_workers=2, servables=("noop",))
        placement = runtime.placement()["noop"]
        other = next(w for w in runtime.workers if w.name != placement[0])
        runtime.add_copy("noop", other)
        assert set(runtime.placement()["noop"]) == {w.name for w in runtime.workers}
        with pytest.raises(ServingRuntimeError, match="already hosts"):
            runtime.add_copy("noop", other)
        runtime.remove_copy("noop", other.name)
        assert runtime.placement()["noop"] == placement
        # The removed copy is genuinely undeployed from the worker.
        assert "noop" not in other.registered_servables()
        with pytest.raises(ServingRuntimeError, match="last copy"):
            runtime.remove_copy("noop", placement[0])

    def test_spec_records_placement_parameters(self):
        testbed, zoo, runtime = build_fleet(servables=("noop",))
        spec = runtime.spec("noop")
        assert spec.servable is zoo["noop"]
        assert spec.executor_name == "parsl"
        with pytest.raises(ServingRuntimeError, match="not placed"):
            runtime.spec("ghost")


class TestReviveAndStats:
    def test_revive_restores_routing(self):
        testbed, zoo, runtime = build_fleet(servables=("noop",))
        name = runtime.placement()["noop"][0]
        runtime.mark_down(name)
        runtime.submit(TaskRequest("noop"))
        assert runtime.drain() == []
        revived = runtime.revive(name)
        assert revived.name == name
        results = runtime.drain()
        assert len(results) == 1 and results[0].result.ok

    def test_revive_requires_down(self):
        testbed, zoo, runtime = build_fleet(servables=("noop",))
        with pytest.raises(ServingRuntimeError, match="not down"):
            runtime.revive(runtime.workers[0].name)

    def test_crashed_worker_is_not_routable(self):
        """A failed probe takes a worker out of routing even before any
        controller marks it down."""
        testbed, zoo, runtime = build_fleet(n_workers=2, servables=("noop",), copies=2)
        primary = runtime.hosts("noop")[0]
        primary.crash()
        runtime.submit(TaskRequest("noop"))
        results = runtime.drain()
        assert results[0].result.ok and results[0].worker != primary.name

    def test_fleet_stats_snapshot(self):
        testbed, zoo, runtime = build_fleet(
            n_workers=2, servables=("noop", "matminer_util")
        )
        runtime.mark_down(runtime.workers[1].name)
        runtime.submit(TaskRequest("noop"))
        stats = runtime.fleet_stats()
        assert stats.time == testbed.clock.now()
        assert stats.down == {runtime.workers[1].name}
        assert stats.routable_workers == (runtime.workers[0].name,)
        by_name = {w.name: w for w in stats.workers}
        assert by_name[runtime.workers[1].name].down
        hosted = [s for w in stats.workers for s in w.hosted]
        assert sorted(hosted) == ["matminer_util", "noop"]
        assert stats.placements["noop"] == tuple(runtime.placement()["noop"])
        assert stats.queue_depths == {"noop": 1, "matminer_util": 0}
        runtime.drain()


class TestConcurrentWorkers:
    """Own-clock workers overlap; shared-clock workers stay serial."""

    def build_concurrent_fleet(self, n_workers, **runtime_kwargs):
        from repro.core.testbed import build_testbed

        testbed = build_testbed(jitter=False, memoize_tm=False)
        zoo = build_zoo(oqmd_entries=50, n_estimators=4)
        workers = [testbed.add_fleet_worker(f"cw-{i}") for i in range(n_workers)]
        runtime = ServingRuntime(
            testbed.clock, testbed.management.queue, workers, **runtime_kwargs
        )
        published = testbed.management.publish(testbed.token, zoo["noop"])
        runtime.place(zoo["noop"], published.build.image, copies=n_workers)
        return testbed, runtime

    def test_backlog_spreads_across_free_workers(self):
        testbed, runtime = self.build_concurrent_fleet(2, max_batch_size=4)
        for _ in range(8):
            runtime.submit(TaskRequest("noop"))
        results = runtime.drain()
        assert len(results) == 8 and all(r.result.ok for r in results)
        assert {r.worker for r in results} == {"cw-0", "cw-1"}

    def test_two_workers_halve_the_makespan(self):
        def makespan(n_workers):
            testbed, runtime = self.build_concurrent_fleet(
                n_workers, max_batch_size=4, max_coalesce_delay_s=0.0
            )
            start = testbed.clock.now()
            runtime.serve([(0.0, TaskRequest("noop")) for _ in range(32)])
            return testbed.clock.now() - start

        solo, duo = makespan(1), makespan(2)
        assert duo < 0.65 * solo

    def test_results_settle_at_worker_completion_times(self):
        testbed, runtime = self.build_concurrent_fleet(2, max_batch_size=4)
        for _ in range(8):
            runtime.submit(TaskRequest("noop"))
        results = runtime.drain()
        assert runtime.inflight_batches == 0
        for r in results:
            assert r.completed_at > r.enqueued_at
            assert r.completed_at <= testbed.clock.now() + 1e-9

    def test_cold_start_makes_new_copy_busy(self):
        """Registering a servable on a concurrent worker charges the
        deployment cold start to that worker, not to global time."""
        testbed, runtime = self.build_concurrent_fleet(1)
        late = testbed.add_fleet_worker("cw-late")
        runtime.add_worker(late)
        before = testbed.clock.now()
        runtime.add_copy("noop", late)
        assert testbed.clock.now() == before  # global time untouched
        assert runtime.free_at(late) > before  # the worker is busy warming
