"""Unit tests for the testbed factory (the SS V-A deployment wiring)."""

import pytest

from repro.core.testbed import build_testbed
from repro.core.zoo import build_zoo


class TestWiring:
    def test_paper_topology(self):
        testbed = build_testbed(jitter=False)
        assert len(testbed.cluster.nodes) == 14  # PetrelKube
        assert testbed.latency.management_to_task_manager.rtt_s == pytest.approx(
            0.0207
        )
        assert testbed.latency.task_manager_to_cluster.rtt_s == pytest.approx(
            0.00017
        )

    def test_identity_providers_registered(self):
        testbed = build_testbed()
        for provider in ("globus", "orcid", "google", "anl", "uchicago"):
            assert provider in testbed.auth.identities.providers

    def test_default_user_token_works(self):
        testbed = build_testbed()
        identity = testbed.auth.authorize(testbed.token, "dlhub:all")
        assert identity is testbed.user

    def test_task_manager_registered_with_management(self):
        testbed = build_testbed()
        assert testbed.task_manager in testbed.management._task_managers

    def test_new_user_and_login(self):
        testbed = build_testbed()
        identity, token = testbed.new_user("fresh", provider="orcid")
        assert testbed.auth.authorize(token, "dlhub:all") is identity
        # login() re-authenticates an existing identity
        token2 = testbed.login("orcid", "fresh")
        assert testbed.auth.authorize(token2, "dlhub:all") is identity

    def test_memoize_flag_controls_tm_cache(self):
        assert build_testbed(memoize_tm=True).task_manager.memoize
        assert not build_testbed(memoize_tm=False).task_manager.memoize

    def test_deterministic_given_seed(self):
        """Same seed -> identical end-to-end virtual timings."""
        def run_once():
            testbed = build_testbed(seed=5, jitter=True)
            zoo = build_zoo(seed=5, oqmd_entries=40, n_estimators=3)
            testbed.publish_and_deploy(zoo["noop"])
            result = testbed.management.run(testbed.token, "noop")
            return result.request_time

        assert run_once() == pytest.approx(run_once(), rel=1e-12)


class TestExecutorFactories:
    def test_tfserving_executor_cached(self):
        testbed = build_testbed()
        a = testbed.tfserving_executor("grpc")
        b = testbed.tfserving_executor("grpc")
        assert a is b
        assert "tfserving-grpc" in testbed.task_manager.executors

    def test_sagemaker_modes_distinct(self):
        testbed = build_testbed()
        flask = testbed.sagemaker_executor("flask")
        tfs = testbed.sagemaker_executor("tfserving-rest")
        assert flask is not tfs

    def test_clipper_backend_variants(self):
        testbed = build_testbed()
        memo = testbed.clipper_backend(memoization=True)
        plain = testbed.clipper_backend(memoization=False)
        assert memo is not plain
        assert memo.memoization and not plain.memoization


class TestPublishAndDeploy:
    def test_flow_returns_published_model(self):
        testbed = build_testbed()
        zoo = build_zoo(oqmd_entries=40, n_estimators=3)
        published = testbed.publish_and_deploy(zoo["noop"], replicas=2)
        assert published.version == 1
        assert testbed.parsl_executor.replicas("noop") == 2

    def test_deploy_to_alternate_executor(self):
        from repro.core.zoo import sample_input

        testbed = build_testbed()
        zoo = build_zoo(oqmd_entries=40, n_estimators=3)
        testbed.tfserving_executor("grpc")  # register it first
        published = testbed.publish_and_deploy(
            zoo["cifar10"], executor="tfserving-grpc"
        )
        assert published.full_name.endswith("/cifar10")
        result = testbed.management.run(
            testbed.token, "cifar10", *sample_input("cifar10")
        )
        assert result.ok
