"""Unit tests for timing metrics collection."""

import pytest

from repro.core.metrics import MetricsCollector, TimingRecord


def record(servable="m", inf=0.01, inv=0.02, req=0.05, hit=False):
    return TimingRecord(
        servable=servable,
        inference_time=inf,
        invocation_time=inv,
        request_time=req,
        cache_hit=hit,
    )


class TestTimingRecord:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimingRecord("m", -0.1, 0.2, 0.3)

    def test_frozen(self):
        r = record()
        with pytest.raises(AttributeError):
            r.inference_time = 1.0  # type: ignore[misc]


class TestCollector:
    def test_record_and_count(self):
        mc = MetricsCollector()
        mc.record(record())
        mc.record(record(servable="other"))
        assert mc.count() == 2
        assert mc.count("m") == 1
        assert mc.servables() == ["m", "other"]

    def test_summarize_percentiles(self):
        mc = MetricsCollector()
        for i in range(1, 101):
            mc.record(record(inv=i / 1000.0))
        summary = mc.summarize("m", "invocation_time")
        assert summary.count == 100
        assert summary.median == pytest.approx(0.0505, abs=1e-3)
        assert summary.p5 < summary.median < summary.p95

    def test_summary_as_ms(self):
        mc = MetricsCollector()
        mc.record(record(inv=0.020))
        row = mc.summarize("m", "invocation_time").as_ms()
        assert row["median_ms"] == pytest.approx(20.0)

    def test_unknown_metric(self):
        mc = MetricsCollector()
        mc.record(record())
        with pytest.raises(ValueError):
            mc.summarize("m", "wallclock")

    def test_unknown_servable(self):
        with pytest.raises(KeyError):
            MetricsCollector().summarize("ghost", "request_time")

    def test_summary_table_covers_all(self):
        mc = MetricsCollector()
        mc.record(record("a"))
        mc.record(record("b"))
        table = mc.summary_table()
        assert len(table) == 6  # 2 servables x 3 metrics

    def test_clear(self):
        mc = MetricsCollector()
        mc.record(record())
        mc.clear()
        assert mc.count() == 0

    def test_records_accessor_copies(self):
        mc = MetricsCollector()
        mc.record(record())
        records = mc.records("m")
        records.clear()
        assert mc.count("m") == 1


class TestStageLatencyCollector:
    def _collector(self):
        from repro.core.metrics import StageLatencyCollector

        collector = StageLatencyCollector()
        for wait in (0.001, 0.002, 0.003):
            collector.record("queue_wait", "noop", wait)
        collector.record("queue_wait", "cifar10", 0.010)
        collector.record("inference", "noop", 0.005)
        return collector

    def test_record_and_count(self):
        collector = self._collector()
        assert collector.count("queue_wait", "noop") == 3
        assert collector.count("queue_wait") == 4
        assert collector.count() == 5
        assert collector.servables() == ["cifar10", "noop"]

    def test_unknown_stage_rejected(self):
        collector = self._collector()
        with pytest.raises(ValueError):
            collector.record("teleport", "noop", 0.001)

    def test_negative_sample_rejected(self):
        collector = self._collector()
        with pytest.raises(ValueError):
            collector.record("dispatch", "noop", -0.1)

    def test_summarize_per_servable(self):
        collector = self._collector()
        summary = collector.summarize("queue_wait", "noop")
        assert summary.count == 3
        assert summary.median == pytest.approx(0.002)
        assert summary.metric == "queue_wait"

    def test_summarize_aggregates_across_servables(self):
        collector = self._collector()
        summary = collector.summarize("queue_wait")
        assert summary.count == 4
        assert summary.servable == "*"

    def test_summarize_empty_raises(self):
        collector = self._collector()
        with pytest.raises(KeyError):
            collector.summarize("dispatch")

    def test_summary_table_only_lists_sampled_stages(self):
        collector = self._collector()
        rows = {(s.servable, s.metric) for s in collector.summary_table()}
        assert rows == {
            ("noop", "queue_wait"),
            ("noop", "inference"),
            ("cifar10", "queue_wait"),
        }

    def test_clear(self):
        collector = self._collector()
        collector.clear()
        assert collector.count() == 0


class TestSamplesSince:
    def _collector_with(self, n):
        from repro.core.metrics import StageLatencyCollector

        collector = StageLatencyCollector()
        for i in range(n):
            collector.record("queue_wait", "noop", 0.001 * (i + 1))
        return collector

    def test_windowed_reads(self):
        collector = self._collector_with(3)
        cursor = collector.count("queue_wait", "noop")
        assert collector.samples_since("queue_wait", "noop", 0) == [
            0.001,
            0.002,
            0.003,
        ]
        collector.record("queue_wait", "noop", 0.004)
        assert collector.samples_since("queue_wait", "noop", cursor) == [0.004]

    def test_empty_window(self):
        collector = self._collector_with(2)
        assert collector.samples_since("queue_wait", "noop", 2) == []
        assert collector.samples_since("queue_wait", "ghost", 0) == []

    def test_validation(self):
        collector = self._collector_with(1)
        with pytest.raises(ValueError):
            collector.samples_since("ghost", "noop", 0)
        with pytest.raises(ValueError):
            collector.samples_since("queue_wait", "noop", -1)


class TestWindowedSamples:
    def _collector(self):
        from repro.core.metrics import StageLatencyCollector

        collector = StageLatencyCollector()
        for t, wait in ((1.0, 0.010), (2.0, 0.020), (3.0, 0.030)):
            collector.record("queue_wait", "noop", wait, at=t)
        collector.record("queue_wait", "noop", 0.999)  # untimestamped
        return collector

    def test_window_is_half_open(self):
        collector = self._collector()
        assert collector.samples_in_window("queue_wait", "noop", 1.0, 3.0) == [
            0.010,
            0.020,
        ]

    def test_untimestamped_samples_fall_outside_every_window(self):
        collector = self._collector()
        everything = collector.samples_in_window(
            "queue_wait", "noop", -1e9, 1e9
        )
        assert 0.999 not in everything
        assert len(everything) == 3

    def test_plain_reads_still_see_all_samples(self):
        collector = self._collector()
        assert len(collector.samples("queue_wait", "noop")) == 4

    def test_unknown_stage_rejected(self):
        collector = self._collector()
        with pytest.raises(ValueError):
            collector.samples_in_window("teleport", "noop", 0.0, 1.0)

    def test_clear_drops_times(self):
        collector = self._collector()
        collector.clear()
        assert collector.samples_in_window("queue_wait", "noop", 0.0, 10.0) == []


class TestPodUtilizationGauge:
    def _collector(self):
        from repro.core.metrics import StageLatencyCollector

        collector = StageLatencyCollector()
        collector.record_pod_share("m", "w0/m-1", 0.030)
        collector.record_pod_share("m", "w0/m-1", 0.010)
        collector.record_pod_share("m", "w0/m-2", 0.020)
        collector.record_pod_share("m", "w1/m-1", 0.020)
        collector.record_pod_share("other", "w0/other-1", 9.0)
        return collector

    def test_cumulative_busy_per_pod(self):
        collector = self._collector()
        assert collector.pod_busy("m") == {
            "w0/m-1": pytest.approx(0.040),
            "w0/m-2": pytest.approx(0.020),
            "w1/m-1": pytest.approx(0.020),
        }
        assert collector.pod_chunk_counts("m") == {
            "w0/m-1": 2,
            "w0/m-2": 1,
            "w1/m-1": 1,
        }

    def test_prefix_restricts_to_one_host(self):
        collector = self._collector()
        assert set(collector.pod_busy("m", prefix="w0/")) == {"w0/m-1", "w0/m-2"}

    def test_imbalance_is_max_over_mean(self):
        collector = self._collector()
        # w0 host: busy 0.040 vs 0.020 -> max/mean = 0.040/0.030.
        assert collector.pod_imbalance("m", prefix="w0/") == pytest.approx(
            0.040 / 0.030
        )

    def test_imbalance_none_without_chunks(self):
        from repro.core.metrics import StageLatencyCollector

        assert StageLatencyCollector().pod_imbalance("ghost") is None

    def test_balanced_pods_report_one(self):
        from repro.core.metrics import StageLatencyCollector

        collector = StageLatencyCollector()
        collector.record_pod_share("m", "w0/m-1", 0.5)
        collector.record_pod_share("m", "w0/m-2", 0.5)
        assert collector.pod_imbalance("m") == pytest.approx(1.0)

    def test_negative_share_rejected(self):
        from repro.core.metrics import StageLatencyCollector

        with pytest.raises(ValueError):
            StageLatencyCollector().record_pod_share("m", "w0/m-1", -0.1)

    def test_windowed_busy_overrides_cumulative_history(self):
        """A consumer passing per-interval deltas sees *current*
        imbalance: an ancient straggler no longer skews the gauge."""
        from repro.core.metrics import StageLatencyCollector

        collector = StageLatencyCollector()
        # Early transient: pod 1 was a 3x straggler.
        collector.record_pod_share("m", "w0/m-1", 3.0)
        collector.record_pod_share("m", "w0/m-2", 1.0)
        snapshot = collector.pod_busy("m")
        # Then a perfectly balanced interval.
        collector.record_pod_share("m", "w0/m-1", 1.0)
        collector.record_pod_share("m", "w0/m-2", 1.0)
        window = {
            pod: total - snapshot.get(pod, 0.0)
            for pod, total in collector.pod_busy("m").items()
        }
        assert collector.pod_imbalance("m") > 1.2  # cumulative: skewed
        assert collector.pod_imbalance("m", busy=window) == pytest.approx(1.0)
