"""Unit tests for the closed observability loop: the windowed series
store, alert rules and lifecycle engine, adaptive trace sampling, the
reactive SLO policy, and the loop controller itself."""

import pytest

from repro.core.fleet import FleetObservation, FleetPlan, FleetPolicy, ServableDemand
from repro.core.obsloop import (
    AdaptiveSampler,
    Alert,
    AlertEngine,
    AnomalyRule,
    BurnRateRule,
    ObservabilityLoop,
    ObsLoopError,
    ReactiveSLOPolicy,
    SeriesStore,
    ThresholdRule,
    burn_series,
    sample_rate_series,
)
from repro.core.telemetry import TelemetryHub, Tracer
from repro.sim.clock import VirtualClock


def _fill(store, series, samples):
    for t, v in samples:
        store.record(series, t, v)


class TestSeriesStore:
    def test_record_and_latest(self):
        store = SeriesStore()
        _fill(store, "s", [(0.0, 1.0), (1.0, 2.0)])
        assert store.latest("s") == (1.0, 2.0)
        assert store.names() == ("s",)
        assert store.latest("missing") is None

    def test_time_regression_rejected_equal_time_allowed(self):
        store = SeriesStore()
        store.record("s", 5.0, 1.0)
        store.record("s", 5.0, 2.0)  # same timestamp is fine
        with pytest.raises(ObsLoopError):
            store.record("s", 4.9, 3.0)

    def test_ring_evicts_oldest(self):
        store = SeriesStore(capacity=3)
        _fill(store, "s", [(float(i), float(i)) for i in range(5)])
        assert store.window("s", 100.0, 5.0) == [
            (2.0, 2.0),
            (3.0, 3.0),
            (4.0, 4.0),
        ]

    def test_window_queries(self):
        store = SeriesStore()
        _fill(store, "s", [(float(i), 10.0 + i) for i in range(6)])
        # Window [3, 5]: values 13, 14, 15.
        assert store.avg("s", 2.0, 5.0) == pytest.approx(14.0)
        assert store.delta("s", 2.0, 5.0) == pytest.approx(2.0)
        assert store.rate("s", 2.0, 5.0) == pytest.approx(1.0)
        assert store.percentile("s", 2.0, 5.0, 50) == pytest.approx(14.0)

    def test_queries_degrade_to_none(self):
        store = SeriesStore()
        assert store.avg("s", 1.0, 0.0) is None
        assert store.percentile("s", 1.0, 0.0, 95) is None
        store.record("s", 0.0, 1.0)
        # delta/rate need two in-window samples.
        assert store.delta("s", 1.0, 0.0) is None
        assert store.rate("s", 1.0, 0.0) is None

    def test_validation(self):
        with pytest.raises(ObsLoopError):
            SeriesStore(capacity=1)
        store = SeriesStore()
        with pytest.raises(ObsLoopError):
            store.window("s", 0.0, 1.0)
        with pytest.raises(ObsLoopError):
            store.percentile("s", 1.0, 1.0, 101)

    def test_scrape_flattens_every_instrument_kind(self):
        hub = TelemetryHub()
        hub.counter("reqs", tenant="a").inc(3)
        hub.gauge("depth").set(7.0)
        hub.histogram("lat").observe(0.5)
        hub.register_source(
            "stack", lambda: {"a": {"b": 2}, "flag": True, "name": "x"}
        )
        store = SeriesStore()
        touched = store.scrape(hub, now=1.0)
        assert touched >= 4
        names = store.names()
        assert "reqs{tenant=a}" in names
        assert "depth" in names
        assert {"lat:count", "lat:sum", "lat:mean"} <= set(names)
        assert "src:stack.a.b" in names
        # Bools and strings are not numeric leaves.
        assert "src:stack.flag" not in names
        assert "src:stack.name" not in names

    def test_scrape_survives_a_raising_source(self):
        hub = TelemetryHub()
        hub.counter("ok").inc(1)

        def _broken():
            raise RuntimeError("mid-churn")

        hub.register_source("broken", _broken)
        store = SeriesStore()
        store.scrape(hub, now=0.0)
        assert store.latest("ok") == (0.0, 1.0)
        assert not any(n.startswith("src:broken") for n in store.names())


class TestThresholdRule:
    def test_avg_over_threshold(self):
        store = SeriesStore()
        _fill(store, "s", [(0.0, 1.0), (0.5, 9.0), (1.0, 9.0)])
        rule = ThresholdRule("r", "s", threshold=5.0, window_s=0.6)
        hit, detail = rule.active(store, now=1.0)
        assert hit and detail["value"] == pytest.approx(9.0)

    def test_percentile_and_last_aggregates(self):
        store = SeriesStore()
        _fill(store, "s", [(float(i) / 10, float(i)) for i in range(10)])
        p90 = ThresholdRule("p", "s", threshold=8.0, window_s=1.0, agg="p90")
        assert p90.active(store, now=0.9)[0]
        last = ThresholdRule(
            "l", "s", threshold=9.0, window_s=1.0, agg="last", op=">="
        )
        assert last.active(store, now=0.9)[0]

    def test_missing_data_is_inactive(self):
        rule = ThresholdRule("r", "absent", threshold=0.0)
        assert rule.active(SeriesStore(), now=0.0) == (False, {})

    def test_validation(self):
        with pytest.raises(ObsLoopError):
            ThresholdRule("r", "s", 1.0, window_s=0.0)
        with pytest.raises(ObsLoopError):
            ThresholdRule("r", "s", 1.0, op="!=")
        with pytest.raises(ObsLoopError):
            ThresholdRule("r", "s", 1.0, agg="median")
        with pytest.raises(ObsLoopError):
            ThresholdRule("", "s", 1.0)
        with pytest.raises(ObsLoopError):
            ThresholdRule("r", "s", 1.0, for_s=-1.0)


class TestBurnRateRule:
    def test_needs_both_windows_hot(self):
        store = SeriesStore()
        series = burn_series("hot")
        # Long cold history, then a short spike: fast window clears the
        # threshold, the slow window still averages below it.
        _fill(store, series, [(t / 10, 0.0) for t in range(20)])
        _fill(store, series, [(2.0 + t / 10, 10.0) for t in range(3)])
        rule = BurnRateRule("b", "hot", fast_window_s=0.3, slow_window_s=2.0)
        hit, _ = rule.active(store, now=2.2)
        assert not hit  # a blip is not a burn
        # Sustained burn: both windows now average above threshold.
        _fill(store, series, [(2.3 + t / 10, 10.0) for t in range(18)])
        hit, detail = rule.active(store, now=4.0)
        assert hit
        assert detail["fast_burn"] >= rule.threshold
        assert detail["slow_burn"] >= rule.threshold

    def test_labels_identify_tenant_and_kind(self):
        rule = BurnRateRule("b", "hot")
        assert rule.labels == {"kind": "burn", "tenant": "hot"}

    def test_validation(self):
        with pytest.raises(ObsLoopError):
            BurnRateRule("b", "t", fast_window_s=2.0, slow_window_s=1.0)
        with pytest.raises(ObsLoopError):
            BurnRateRule("b", "t", threshold=0.0)


class TestAnomalyRule:
    def test_warms_up_then_flags_step_change(self):
        store = SeriesStore()
        rule = AnomalyRule(
            "a", "s", window_s=0.5, min_history=3, abs_floor=1.0
        )
        for i in range(3):
            store.record("s", float(i), 10.0)
            hit, _ = rule.active(store, now=float(i))
            assert not hit  # warming up
        store.record("s", 3.0, 10.0)
        hit, _ = rule.active(store, now=3.0)
        assert not hit  # steady state matches its own forecast
        store.record("s", 4.0, 100.0)
        hit, detail = rule.active(store, now=4.0)
        assert hit
        assert detail["residual"] > detail["tolerance"]
        assert rule.labels["kind"] == "anomaly"

    def test_validation(self):
        with pytest.raises(ObsLoopError):
            AnomalyRule("a", "s", min_history=1)
        with pytest.raises(ObsLoopError):
            AnomalyRule("a", "s", rel_tolerance=-0.1)


class _FlagRule(ThresholdRule):
    """Threshold over a manually driven series — a switchable condition."""

    def __init__(self, name, for_s=0.0):
        super().__init__(
            name, f"flag:{name}", threshold=0.5, window_s=0.2,
            agg="last", for_s=for_s,
        )


class TestAlertEngine:
    def _engine(self, for_s=0.0):
        store = SeriesStore()
        engine = AlertEngine(store, rules=[_FlagRule("r", for_s=for_s)])
        return store, engine

    def test_zero_hold_fires_in_one_pass(self):
        store, engine = self._engine()
        store.record("flag:r", 0.0, 1.0)
        fresh = engine.evaluate(0.0)
        assert [t.state for t in fresh] == ["pending", "firing"]
        assert engine.state("r") == "firing"
        (alert,) = engine.firing()
        assert alert.rule == "r" and alert.since == 0.0

    def test_hold_debounces_and_cancels_silently(self):
        store, engine = self._engine(for_s=1.0)
        store.record("flag:r", 0.0, 1.0)
        assert [t.state for t in engine.evaluate(0.0)] == ["pending"]
        # The condition drops before the hold elapses: silent cancel.
        store.record("flag:r", 0.5, 0.0)
        assert engine.evaluate(0.5) == []
        assert engine.state("r") == "inactive"
        # Hold all the way through -> fires.
        store.record("flag:r", 1.0, 1.0)
        engine.evaluate(1.0)
        engine.evaluate(1.5)
        assert engine.state("r") == "pending"
        fresh = engine.evaluate(2.0)
        assert [t.state for t in fresh] == ["firing"]

    def test_resolve_and_drain_cursor(self):
        store, engine = self._engine()
        store.record("flag:r", 0.0, 1.0)
        engine.evaluate(0.0)
        drained = engine.drain()
        assert [t.state for t in drained] == ["pending", "firing"]
        assert engine.drain() == []  # cursor advanced
        store.record("flag:r", 1.0, 0.0)
        engine.evaluate(1.0)
        assert [t.state for t in engine.drain()] == ["resolved"]
        assert engine.state("r") == "inactive"
        assert engine.firing() == ()

    def test_firing_detail_refreshes_without_new_transitions(self):
        store, engine = self._engine()
        store.record("flag:r", 0.0, 1.0)
        engine.evaluate(0.0)
        store.record("flag:r", 1.0, 0.9)
        assert engine.evaluate(1.0) == []
        (alert,) = engine.firing()
        assert alert.detail["value"] == pytest.approx(0.9)

    def test_duplicate_rule_name_rejected(self):
        store = SeriesStore()
        engine = AlertEngine(store, rules=[_FlagRule("r")])
        with pytest.raises(ObsLoopError):
            engine.add_rule(_FlagRule("r"))
        assert engine.rules() == ("r",)


class TestAdaptiveSampler:
    def test_escalates_only_burning_tenants(self):
        tracer = Tracer(sample_rate=0.01)
        sampler = AdaptiveSampler(tracer, escalation=10.0, max_rate=0.5)
        sampler.update(0.0, ("hot",))
        assert tracer.effective_rate("hot") == pytest.approx(0.1)
        assert tracer.effective_rate("light") == pytest.approx(0.01)
        assert sampler.peak_rates == {"hot": pytest.approx(0.1)}
        assert sampler.escalations == {"hot": 1}

    def test_max_rate_caps_the_escalation(self):
        tracer = Tracer(sample_rate=0.2)
        sampler = AdaptiveSampler(tracer, escalation=10.0, max_rate=0.5)
        sampler.update(0.0, ("hot",))
        assert tracer.effective_rate("hot") == pytest.approx(0.5)

    def test_decay_steps_back_and_clears_override(self):
        tracer = Tracer(sample_rate=0.01)
        sampler = AdaptiveSampler(tracer, escalation=10.0, decay=0.5)
        sampler.update(0.0, ("hot",))
        sampler.update(1.0, ())
        # Geometric step toward base: 0.01 + (0.1 - 0.01) * 0.5.
        assert tracer.effective_rate("hot") == pytest.approx(0.055)
        for tick in range(2, 12):
            sampler.update(float(tick), ())
        assert sampler.active == {}
        assert tracer.tenant_rates == {}
        assert tracer.effective_rate("hot") == pytest.approx(0.01)

    def test_reescalation_counts_a_new_episode(self):
        tracer = Tracer(sample_rate=0.01)
        sampler = AdaptiveSampler(tracer)
        sampler.update(0.0, ("hot",))
        for tick in range(1, 15):
            sampler.update(float(tick), ())
        assert sampler.active == {}
        # A re-burn while still decaying is the same episode; one that
        # starts after the override fully cleared is a new one.
        sampler.update(15.0, ("hot",))
        assert sampler.escalations == {"hot": 2}

    def test_validation(self):
        tracer = Tracer()
        with pytest.raises(ObsLoopError):
            AdaptiveSampler(tracer, escalation=1.0)
        with pytest.raises(ObsLoopError):
            AdaptiveSampler(tracer, max_rate=0.0)
        with pytest.raises(ObsLoopError):
            AdaptiveSampler(tracer, decay=1.0)


class _RecordingPolicy(FleetPolicy):
    name = "recording"

    def __init__(self):
        self.seen = []

    def plan(self, observation):
        self.seen.append(observation)
        return FleetPlan(target_workers=observation.routable_workers, copies={})


class _FakeGateway:
    def __init__(self):
        self.tightened = {}
        self.relaxed = []

    def tighten_admission(self, tenant, rate_rps, burst=None):
        self.tightened[tenant] = rate_rps

    def relax_admission(self, tenant):
        self.relaxed.append(tenant)
        return True


def _burn_alert(tenant):
    return Alert(
        rule=f"burn:{tenant}",
        since=0.0,
        labels={"kind": "burn", "tenant": tenant},
    )


def _demand(rate=100.0, weighted=None, tenant_rates=()):
    return ServableDemand(
        name="s",
        queue_depth=0,
        arrival_rate_rps=rate,
        live_copies=1,
        per_copy_capacity_rps=100.0,
        recent_p95_queue_wait_s=None,
        weighted_arrival_rate_rps=weighted,
        tenant_rates=tuple(tenant_rates),
    )


def _obs(routable=2, max_workers=4, alerts=(), demands=()):
    return FleetObservation(
        time=0.0,
        routable_workers=routable,
        draining_workers=0,
        min_workers=1,
        max_workers=max_workers,
        demands=tuple(demands),
        alerts=tuple(alerts),
    )


class TestReactiveSLOPolicy:
    def test_no_alerts_passes_through_untouched(self):
        base = _RecordingPolicy()
        policy = ReactiveSLOPolicy(base=base)
        observation = _obs(demands=[_demand(rate=50.0)])
        policy.plan(observation)
        assert base.seen[-1] is observation
        assert policy.last_mode is None and policy.boosts == 0

    def test_capacity_shaped_burn_boosts_planning_rates(self):
        base = _RecordingPolicy()
        policy = ReactiveSLOPolicy(base=base, boost=1.5)
        observation = _obs(
            routable=2,
            max_workers=4,
            alerts=[_burn_alert("hot")],
            demands=[_demand(rate=100.0, weighted=80.0)],
        )
        policy.plan(observation)
        planned = base.seen[-1].demands[0]
        assert planned.arrival_rate_rps == pytest.approx(150.0)
        assert planned.weighted_arrival_rate_rps == pytest.approx(120.0)
        assert policy.last_mode == "scale_out" and policy.boosts == 1

    def test_overload_shaped_burn_sheds_at_the_door(self):
        gateway = _FakeGateway()
        policy = ReactiveSLOPolicy(
            base=_RecordingPolicy(), gateway=gateway, shed_fraction=0.5
        )
        observation = _obs(
            routable=4,
            max_workers=4,
            alerts=[_burn_alert("hot")],
            demands=[_demand(tenant_rates=[("hot", 600.0), ("light", 40.0)])],
        )
        policy.plan(observation)
        assert gateway.tightened == {"hot": pytest.approx(300.0)}
        assert policy.active_sheds == {"hot": pytest.approx(300.0)}
        assert policy.last_mode == "shed" and policy.sheds == 1
        # Still burning next plan: the cap is not re-imposed.
        policy.plan(observation)
        assert policy.sheds == 1

    def test_shed_reverts_when_the_alert_resolves(self):
        gateway = _FakeGateway()
        policy = ReactiveSLOPolicy(base=_RecordingPolicy(), gateway=gateway)
        burning = _obs(
            routable=4,
            alerts=[_burn_alert("hot")],
            demands=[_demand(tenant_rates=[("hot", 600.0)])],
        )
        policy.plan(burning)
        policy.plan(_obs(routable=4, demands=[_demand()]))
        assert gateway.relaxed == ["hot"]
        assert policy.active_sheds == {} and policy.reverts == 1

    def test_unmeasured_tenant_is_not_shed(self):
        gateway = _FakeGateway()
        policy = ReactiveSLOPolicy(base=_RecordingPolicy(), gateway=gateway)
        observation = _obs(
            routable=4, alerts=[_burn_alert("ghost")], demands=[_demand()]
        )
        policy.plan(observation)
        assert gateway.tightened == {} and policy.sheds == 0

    def test_no_gateway_disables_shedding(self):
        policy = ReactiveSLOPolicy(base=_RecordingPolicy())
        observation = _obs(
            routable=4,
            alerts=[_burn_alert("hot")],
            demands=[_demand(tenant_rates=[("hot", 600.0)])],
        )
        policy.plan(observation)  # must not raise
        assert policy.active_sheds == {}

    def test_validation(self):
        with pytest.raises(ObsLoopError):
            ReactiveSLOPolicy(boost=0.9)
        with pytest.raises(ObsLoopError):
            ReactiveSLOPolicy(shed_fraction=1.0)
        with pytest.raises(ObsLoopError):
            ReactiveSLOPolicy(min_shed_rate_rps=0.0)


class _FakeMonitor:
    def __init__(self, burns):
        self._burns = burns

    def tenants(self):
        return tuple(sorted(self._burns))

    def burn_rate(self, tenant, now):
        return self._burns[tenant]


class TestObservabilityLoop:
    def test_ticks_at_the_scrape_cadence(self):
        clock = VirtualClock()
        hub = TelemetryHub()
        hub.counter("c").inc(1)
        loop = ObservabilityLoop(clock, hub, scrape_interval_s=0.1)
        assert loop.next_wakeup() == clock.now()
        loop.on_tick()
        assert loop.scrapes == 1
        loop.on_tick()  # not due yet
        assert loop.scrapes == 1
        clock.advance(0.1)
        loop.on_tick()
        assert loop.scrapes == 2
        assert loop.next_wakeup() == pytest.approx(clock.now() + 0.1)

    def test_burn_gauges_recorded_cold_is_zero(self):
        clock = VirtualClock()
        monitor = _FakeMonitor({"hot": 40.0, "cold": None})
        loop = ObservabilityLoop(clock, TelemetryHub(), monitor=monitor)
        loop.scrape(clock.now())
        assert loop.store.latest(burn_series("hot"))[1] == 40.0
        assert loop.store.latest(burn_series("cold"))[1] == 0.0

    def test_burning_set_drives_the_sampler_and_is_recorded(self):
        clock = VirtualClock()
        monitor = _FakeMonitor({"hot": 40.0})
        tracer = Tracer(sample_rate=0.01)
        sampler = AdaptiveSampler(tracer)
        store = SeriesStore()
        engine = AlertEngine(
            store,
            rules=[BurnRateRule("b", "hot", fast_window_s=0.1, slow_window_s=0.3)],
        )
        loop = ObservabilityLoop(
            clock,
            TelemetryHub(),
            store=store,
            engine=engine,
            monitor=monitor,
            sampler=sampler,
            scrape_interval_s=0.1,
        )
        for _ in range(5):
            loop.on_tick()
            clock.advance(0.1)
        assert loop.burning() == ("hot",)
        assert tracer.effective_rate("hot") == pytest.approx(0.1)
        assert loop.store.latest(sample_rate_series("hot"))[1] == (
            pytest.approx(0.1)
        )

    def test_validation(self):
        with pytest.raises(ObsLoopError):
            ObservabilityLoop(VirtualClock(), TelemetryHub(), scrape_interval_s=0.0)
