"""Unit tests for the Table I/II registries and rendering."""

from repro.core.survey import (
    TABLE1_REPOSITORIES,
    TABLE2_SERVING,
    dlhub_repository_profile,
    dlhub_serving_profile,
    render_table1,
    render_table2,
)


class TestTable1:
    def test_five_systems_in_paper_order(self):
        names = [p.name for p in TABLE1_REPOSITORIES]
        assert names == ["ModelHub", "Caffe Zoo", "ModelHub.ai", "Kipoi", "DLHub"]

    def test_dlhub_column_contents(self):
        dlhub = dlhub_repository_profile()
        assert dlhub.publication_method == "BYO"
        assert dlhub.metadata_type == "Structured"
        assert dlhub.search == "Elasticsearch"
        assert dlhub.versioning
        assert dlhub.export_method == "Docker"

    def test_paper_cells_spotcheck(self):
        modelhub = TABLE1_REPOSITORIES[0]
        assert modelhub.search == "SQL"  # DQL
        kipoi = TABLE1_REPOSITORIES[3]
        assert kipoi.domains == "Genomics"
        assert kipoi.publication_method == "Curated"
        caffe = TABLE1_REPOSITORIES[1]
        assert not caffe.versioning

    def test_render_contains_all_rows(self):
        text = render_table1()
        for label in (
            "Publication method",
            "Datasets included",
            "Metadata type",
            "Versioning supported",
            "Export method",
        ):
            assert label in text


class TestTable2:
    def test_five_systems_in_paper_order(self):
        names = [p.name for p in TABLE2_SERVING]
        assert names == ["PennAI", "TF Serving", "Clipper", "SageMaker", "DLHub"]

    def test_dlhub_differentiators(self):
        dlhub = dlhub_serving_profile()
        assert dlhub.workflows  # unique to DLHub in the table
        assert dlhub.transformations
        assert not dlhub.training_supported
        assert set(dlhub.execution_environment) == {
            "K8s",
            "Docker",
            "Singularity",
            "Cloud",
        }

    def test_only_dlhub_has_workflows(self):
        assert [p.name for p in TABLE2_SERVING if p.workflows] == ["DLHub"]

    def test_training_column(self):
        """PennAI and SageMaker train; TF Serving, Clipper, DLHub do not."""
        trainers = {p.name for p in TABLE2_SERVING if p.training_supported}
        assert trainers == {"PennAI", "SageMaker"}

    def test_render_contains_all_rows(self):
        text = render_table2()
        for label in ("Service model", "Workflows", "Invocation interface"):
            assert label in text
