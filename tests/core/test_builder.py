"""Unit tests for the servable builder (components -> Dockerfile -> image)."""

import pytest

from repro.containers.registry import ContainerRegistry
from repro.core.builder import DLHUB_BASE_DEPENDENCIES, ServableBuilder
from repro.core.servable import PythonFunctionServable
from repro.core.toolbox import MetadataBuilder
from repro.sim.clock import VirtualClock


def make_servable(name="m", dependencies=None, components=None):
    metadata = (
        MetadataBuilder(name, "Title")
        .creator("T")
        .model_type("python_function")
        .input_type("dict")
        .output_type("dict")
        .build()
    )
    servable = PythonFunctionServable(
        metadata, lambda x: x, dependencies=dependencies or []
    )
    servable.components.update(components or {})
    return servable


@pytest.fixture
def builder():
    return ServableBuilder(VirtualClock(), ContainerRegistry())


class TestDockerfileSynthesis:
    def test_structure(self, builder):
        servable = make_servable(dependencies=["pymatgen"])
        df = builder.dockerfile_for(servable)
        text = df.render()
        assert text.startswith("FROM dlhub/base:latest")
        assert "pip install" in text
        assert "pymatgen" in text
        for dep in DLHUB_BASE_DEPENDENCIES:
            assert dep in text
        assert "ENTRYPOINT python -m dlhub_shim" in text

    def test_labels_identify_servable(self, builder):
        df = builder.dockerfile_for(make_servable("cifar10"))
        assert df.labels()["dlhub.servable"] == "cifar10"

    def test_components_copied(self, builder):
        servable = make_servable(components={"weights.npz": b"w"})
        df = builder.dockerfile_for(servable)
        assert ("components/", "/opt/servable/components/") in df.copied_paths()


class TestBuild:
    def test_build_pushes_to_registry(self, builder):
        result = builder.build(make_servable("m"))
        assert result.reference == "dlhub/m:latest"
        assert builder.registry.exists("dlhub/m:latest")
        assert result.digest == builder.registry.resolve_digest("dlhub/m:latest")

    def test_components_baked_into_image(self, builder):
        servable = make_servable(components={"estimator.pkl": b"\x80\x04"})
        result = builder.build(servable)
        assert (
            result.image.read_file("/opt/servable/components/estimator.pkl")
            == b"\x80\x04"
        )

    def test_handler_packaged(self, builder):
        result = builder.build(make_servable())
        assert result.image.handler("echo") == "echo"

    def test_build_charges_time_proportional_to_components(self, builder):
        small = builder.build(make_servable("small", components={"a": b"x"}))
        big = builder.build(
            make_servable("big", components={"a": b"x" * 50_000_000})
        )
        assert big.build_time_s > small.build_time_s

    def test_version_tags(self, builder):
        servable = make_servable()
        builder.build(servable, tag="v1")
        builder.build(servable, tag="v2")
        assert builder.registry.tags("dlhub/m") == ["v1", "v2"]
        assert builder.builds_completed == 2
