"""Replica-aware batch dispatch: sharding, per-chunk recovery, budgets.

The coalesced hot path shards each micro-batch across a deployment's
ready pods (``ParslServableExecutor.invoke_batch``), the runtime fans
results back out with per-chunk inference shares and per-chunk failure
granularity (``ServingRuntime._split_batch``), and the gateway's
dispatch-slot budget tracks live fleet capacity.
"""

import pytest

from repro.core.adaptive import plan_replica_chunks
from repro.core.executors import ExecutorError
from repro.core.tasks import TaskRequest, TaskStatus
from repro.core.zoo import build_zoo, sample_input


@pytest.fixture()
def env():
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False, memoize_tm=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    return testbed, zoo


def place_on_fleet_worker(testbed, zoo, name="matminer_util", replicas=4, **kwargs):
    from repro.core.runtime import ServingRuntime

    worker = testbed.add_fleet_worker("rw-0")
    runtime = ServingRuntime(
        testbed.clock,
        testbed.management.queue,
        [worker],
        max_batch_size=kwargs.pop("max_batch_size", 8),
        max_coalesce_delay_s=0.002,
        **kwargs,
    )
    published = testbed.management.publish(testbed.token, zoo[name])
    runtime.place(zoo[name], published.build.image, replicas=replicas)
    return runtime, worker


class TestChunkPlanner:
    def test_balances_equal_cost_items(self):
        chunks = plan_replica_chunks(8, [0.0, 0.0, 0.0, 0.0], 0.01)
        assert sorted(len(c) for c in chunks) == [2, 2, 2, 2]
        # Every item appears exactly once, in order within its chunk.
        flat = sorted(i for c in chunks for i in c)
        assert flat == list(range(8))
        assert all(c == sorted(c) for c in chunks)

    def test_busy_replica_takes_smaller_share(self):
        # Replica 0 frees 4 item-costs late: it should receive ~2 fewer.
        chunks = plan_replica_chunks(10, [0.04, 0.0], 0.01, start_at=0.0)
        assert len(chunks[0]) < len(chunks[1])
        assert len(chunks[0]) + len(chunks[1]) == 10

    def test_batch_smaller_than_replica_count(self):
        chunks = plan_replica_chunks(2, [0.0] * 5, 0.01)
        assert sum(len(c) for c in chunks) == 2
        assert sum(1 for c in chunks if c) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_replica_chunks(1, [], 0.01)
        with pytest.raises(ValueError):
            plan_replica_chunks(-1, [0.0], 0.01)
        with pytest.raises(ValueError):
            plan_replica_chunks(1, [0.0], -0.01)


class TestExecutorReplicaBatch:
    def test_replicas_speed_up_batches(self, env):
        testbed, zoo = env
        fixed = sample_input("matminer_util")
        testbed.publish_and_deploy(zoo["matminer_util"], replicas=1)
        single = testbed.parsl_executor.invoke_batch(
            "matminer_util", [fixed] * 16
        )
        testbed.parsl_executor.scale("matminer_util", 4)
        sharded = testbed.parsl_executor.invoke_batch(
            "matminer_util", [fixed] * 16
        )
        assert sharded.invocation_time < single.invocation_time / 2
        assert sharded.value == single.value
        # 16 items over 4 pods: four chunks of four, distinct pods.
        assert len(sharded.chunks) == 4
        assert sorted(len(c.items) for c in sharded.chunks) == [4, 4, 4, 4]
        assert len({c.pod for c in sharded.chunks}) == 4

    def test_chunk_indices_partition_inputs_in_order(self, env):
        testbed, zoo = env
        testbed.publish_and_deploy(zoo["noop"], replicas=3)
        outcome = testbed.parsl_executor.invoke_batch("noop", [()] * 7)
        flat = sorted(i for c in outcome.chunks for i in c.items)
        assert flat == list(range(7))
        assert all(list(c.items) == sorted(c.items) for c in outcome.chunks)

    def test_batch_smaller_than_replicas_uses_subset(self, env):
        testbed, zoo = env
        testbed.publish_and_deploy(zoo["cifar10"], replicas=5)
        fixed = sample_input("cifar10")
        outcome = testbed.parsl_executor.invoke_batch("cifar10", [fixed] * 2)
        assert len(outcome.chunks) == 2
        assert all(len(c.items) == 1 for c in outcome.chunks)

    def test_single_ready_pod_gets_whole_batch(self, env):
        testbed, zoo = env
        testbed.publish_and_deploy(zoo["matminer_util"], replicas=3)
        pool = testbed.parsl_executor._pools["matminer_util"]
        for pod in pool.pods[1:]:
            pod.fail()
        fixed = sample_input("matminer_util")
        outcome = testbed.parsl_executor.invoke_batch(
            "matminer_util", [fixed] * 6
        )
        assert len(outcome.chunks) == 1
        assert len(outcome.chunks[0].items) == 6

    def test_partial_chunk_failure_reports_survivors(self, env):
        testbed, zoo = env
        testbed.publish_and_deploy(zoo["matminer_util"], replicas=2)
        pool = testbed.parsl_executor._pools["matminer_util"]
        victim = sorted(pool.pods, key=lambda p: p.name)[0]

        def explode(*args, **kwargs):
            raise RuntimeError("container died mid-batch")

        victim.exec = explode
        fixed = sample_input("matminer_util")
        outcome = testbed.parsl_executor.invoke_batch(
            "matminer_util", [fixed] * 6
        )
        failed = [c for c in outcome.chunks if c.error]
        ok = [c for c in outcome.chunks if c.ok]
        assert len(failed) == 1 and len(ok) == 1
        assert "container died" in failed[0].error
        for i in failed[0].items:
            assert outcome.value[i] is None
        for i in ok[0].items:
            assert outcome.value[i] is not None

    def test_all_chunks_failing_raises(self, env):
        testbed, zoo = env
        testbed.publish_and_deploy(zoo["noop"], replicas=2)
        pool = testbed.parsl_executor._pools["noop"]
        for pod in pool.pods:
            pod.exec = lambda *a, **k: (_ for _ in ()).throw(RuntimeError("dead"))
        with pytest.raises(ExecutorError, match="replica chunk"):
            testbed.parsl_executor.invoke_batch("noop", [()] * 4)


class TestRuntimeReplicaDispatch:
    def test_coalesced_batch_shards_across_replicas(self, env):
        testbed, zoo = env
        runtime, worker = place_on_fleet_worker(testbed, zoo, replicas=4)
        fixed = sample_input("matminer_util")
        for _ in range(8):
            runtime.submit(TaskRequest("matminer_util", args=fixed))
        results = runtime.drain()
        assert len(results) == 8 and all(r.result.ok for r in results)
        assert runtime.batches_dispatched == 1
        # Per-chunk shares: four chunks of two -> each item is charged
        # its chunk's half, and all shares are positive.
        assert all(r.result.inference_time > 0 for r in results)

    def test_replicas_shorten_coalesced_makespan(self, env):
        testbed, zoo = env
        runtime1, _ = place_on_fleet_worker(testbed, zoo, replicas=1)
        fixed = sample_input("matminer_util")
        t0 = testbed.clock.now()
        runtime1.serve([(0.0, TaskRequest("matminer_util", args=fixed))] * 16)
        serial = testbed.clock.now() - t0

        testbed2, zoo2 = build_fresh()
        runtime4, _ = place_on_fleet_worker(testbed2, zoo2, replicas=4)
        t0 = testbed2.clock.now()
        runtime4.serve([(0.0, TaskRequest("matminer_util", args=fixed))] * 16)
        sharded = testbed2.clock.now() - t0
        assert sharded < serial / 1.5

    def test_partial_chunk_failure_settles_survivors_and_hits(self, env):
        testbed, zoo = env
        runtime, worker = place_on_fleet_worker(
            testbed, zoo, name="noop", replicas=2, max_batch_size=4
        )
        worker.memoize = True
        # Warm the memo cache with one distinguishable input.
        warm = runtime.serve([(0.0, TaskRequest("noop", args=("warm",)))])
        assert warm[0].result.ok

        executor = worker.executors["parsl"]
        pool = executor._pools["noop"]
        victim = sorted(pool.pods, key=lambda p: (p.busy_until, p.name))[0]

        def explode(*args, **kwargs):
            raise RuntimeError("pod crashed mid-chunk")

        victim.exec = explode
        # One memo hit + three misses; misses shard into two chunks of
        # at most two, one of which dies.
        requests = [
            TaskRequest("noop", args=("warm",)),
            TaskRequest("noop", args=("m1",)),
            TaskRequest("noop", args=("m2",)),
            TaskRequest("noop", args=("m3",)),
        ]
        results = runtime.serve([(0.0, r) for r in requests])
        by_uuid = {r.request.task_uuid: r for r in results}
        hit = by_uuid[requests[0].task_uuid]
        assert hit.result.ok and hit.result.cache_hit
        outcomes = [by_uuid[r.task_uuid].result for r in requests[1:]]
        failed = [r for r in outcomes if not r.ok]
        survived = [r for r in outcomes if r.ok]
        assert failed and survived, "expected a partial chunk failure"
        assert all("pod crashed" in r.error for r in failed)
        assert all(not r.cache_hit and r.inference_time > 0 for r in survived)

    def test_pods_crash_between_claim_and_dispatch(self, env):
        testbed, zoo = env
        runtime, worker = place_on_fleet_worker(
            testbed, zoo, name="noop", replicas=2, max_batch_size=4
        )
        worker.memoize = True
        warm = runtime.serve([(0.0, TaskRequest("noop", args=("warm",)))])
        assert warm[0].result.ok
        # The pods crash *between* the runtime's claim_many and the
        # executor trip: the batch is already claimed when invoke_batch
        # finds no ready pod to shard onto.
        pool = worker.executors["parsl"]._pools["noop"]
        original_process = worker.process

        def crash_then_process(request):
            for pod in pool.pods:
                if pod.ready:
                    pod.fail()
            return original_process(request)

        worker.process = crash_then_process
        requests = [
            TaskRequest("noop", args=("warm",)),
            TaskRequest("noop", args=("m1",)),
            TaskRequest("noop", args=("m2",)),
        ]
        results = runtime.serve([(0.0, r) for r in requests])
        by_uuid = {r.request.task_uuid: r for r in results}
        assert by_uuid[requests[0].task_uuid].result.ok
        assert by_uuid[requests[0].task_uuid].result.cache_hit
        for req in requests[1:]:
            failed = by_uuid[req.task_uuid].result
            assert failed.status is TaskStatus.FAILED
            assert "no ready pods" in failed.error

    def test_chunks_stay_tenant_pure(self, env):
        testbed, zoo = env
        runtime, worker = place_on_fleet_worker(
            testbed, zoo, replicas=2, max_batch_size=8
        )
        executor = worker.executors["parsl"]
        calls = []
        original = executor.invoke_batch

        def spy(servable_name, inputs):
            calls.append(len(inputs))
            return original(servable_name, inputs)

        executor.invoke_batch = spy
        fixed = sample_input("matminer_util")
        arrivals = []
        for i in range(4):
            req_a = TaskRequest("matminer_util", args=fixed, tenant="tenant-a")
            req_b = TaskRequest("matminer_util", args=fixed, tenant="tenant-b")
            arrivals += [(0.0, req_a), (0.0, req_b)]
        results = runtime.serve(arrivals)
        assert all(r.result.ok for r in results)
        # Lanes coalesce independently: two tenant-pure batches of four,
        # each sharded across replicas, never one mixed batch of eight.
        assert calls == [4, 4]
        by_batch = {}
        for r in results:
            by_batch.setdefault((r.worker, r.completed_at), set()).add(
                r.request.tenant
            )
        assert all(len(tenants) == 1 for tenants in by_batch.values())


def build_fresh():
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False, memoize_tm=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    return testbed, zoo


class TestDispatchArbitration:
    def test_wfq_tag_outranks_older_window(self, env):
        """Two lanes due at once: the head with the smaller WFQ
        virtual-finish tag dispatches first, even though the other
        lane's window closed earlier (the pre-PR oldest-head rule)."""
        testbed, zoo = env
        runtime, _ = place_on_fleet_worker(
            testbed, zoo, name="noop", replicas=1, max_batch_size=4
        )
        hot = [
            TaskRequest("noop", tenant="hot", dispatch_tag=10.0 + i)
            for i in range(4)
        ]
        light = TaskRequest("noop", tenant="light", dispatch_tag=1.0)
        for request in hot:
            runtime.submit(request)
        runtime.submit(light)  # newest arrival, smallest tag
        # Let both coalescing windows come due: the hot lane is full
        # (due at its head's enqueue) and the light lane's delay lapses.
        testbed.clock.advance(0.005)
        results = runtime.drain()
        finish = {r.request.task_uuid: r.completed_at for r in results}
        assert finish[light.task_uuid] < min(finish[r.task_uuid] for r in hot)

    def test_untagged_traffic_keeps_oldest_first(self, env):
        """Without dispatch tags (no gateway), arbitration is unchanged:
        the older window dispatches first."""
        testbed, zoo = env
        runtime, _ = place_on_fleet_worker(
            testbed, zoo, name="noop", replicas=1, max_batch_size=4
        )
        first = [TaskRequest("noop", tenant="early") for _ in range(4)]
        for request in first:
            runtime.submit(request)
        testbed.clock.advance(0.001)
        late = TaskRequest("noop", tenant="late")
        runtime.submit(late)
        testbed.clock.advance(0.005)  # both windows due; older wins
        results = runtime.drain()
        finish = {r.request.task_uuid: r.completed_at for r in results}
        assert max(finish[r.task_uuid] for r in first) < finish[late.task_uuid]


class TestLiveSlotBudget:
    def _gateway(self, testbed, zoo, n_workers=2):
        from repro.core.runtime import ServingRuntime
        from repro.gateway import ServingGateway, TenantPolicy, TenantPolicyTable

        workers = [testbed.add_fleet_worker(f"gw-{i}") for i in range(n_workers)]
        runtime = ServingRuntime(
            testbed.clock,
            testbed.management.queue,
            workers,
            max_batch_size=8,
        )
        published = testbed.management.publish(testbed.token, zoo["noop"])
        runtime.place(zoo["noop"], published.build.image)
        policies = TenantPolicyTable()
        policies.register(TenantPolicy(name="public"))
        policies.set_default("public")
        return ServingGateway(testbed.auth, runtime, policies), runtime

    def test_budget_re_derives_on_add_and_remove(self, env):
        testbed, zoo = env
        gateway, runtime = self._gateway(testbed, zoo, n_workers=2)
        base = gateway.max_dispatch_slots
        assert base == 8 * 2 + max(1, 16 // 8)

        joined = runtime.add_worker(testbed.add_fleet_worker("gw-late"))
        grown = gateway.max_dispatch_slots
        assert grown > base

        runtime.remove_worker(joined.name)
        assert gateway.max_dispatch_slots == base

    def test_budget_tracks_liveness_flips(self, env):
        testbed, zoo = env
        gateway, runtime = self._gateway(testbed, zoo, n_workers=3)
        base = gateway.max_dispatch_slots
        runtime.mark_down("gw-2")
        assert gateway.max_dispatch_slots < base
        runtime.mark_up("gw-2")
        assert gateway.max_dispatch_slots == base

    def test_cold_starting_worker_is_not_capacity_yet(self, env):
        testbed, zoo = env
        gateway, runtime = self._gateway(testbed, zoo, n_workers=2)
        base = gateway.max_dispatch_slots
        cold = testbed.add_fleet_worker("gw-cold")
        # A provisioning cold start charged to the worker's clock before
        # it joins (what FleetController._grow_to does).
        cold.clock.advance(2.0)
        runtime.add_worker(cold)
        assert runtime.is_warming(cold)
        assert gateway.max_dispatch_slots == base
        # Once global time catches up, the next tick counts it.
        testbed.clock.advance(2.0)
        assert not runtime.is_warming(cold)
        gateway.on_tick(testbed.clock.now())
        assert gateway.max_dispatch_slots > base

    def test_busy_worker_stays_counted_however_heavy_the_batch(self, env):
        """A worker mid-batch (clock ahead of global by one batch, even
        a long one) is capacity; only provisioning/placement cold
        starts are excluded."""
        testbed, zoo = env
        gateway, runtime = self._gateway(testbed, zoo, n_workers=2)
        base = gateway.max_dispatch_slots
        busy = runtime.workers[0]
        busy.clock.advance(5.0)  # serving, not provisioning
        gateway.on_tick(testbed.clock.now())
        assert not runtime.is_warming(busy)
        assert gateway.max_dispatch_slots == base

    def test_explicit_budget_stays_pinned(self, env):
        testbed, zoo = env
        from repro.core.runtime import ServingRuntime
        from repro.gateway import ServingGateway, TenantPolicy, TenantPolicyTable

        workers = [testbed.add_fleet_worker(f"gw-{i}") for i in range(2)]
        runtime = ServingRuntime(
            testbed.clock, testbed.management.queue, workers, max_batch_size=8
        )
        published = testbed.management.publish(testbed.token, zoo["noop"])
        runtime.place(zoo["noop"], published.build.image)
        policies = TenantPolicyTable()
        policies.register(TenantPolicy(name="public"))
        policies.set_default("public")
        gateway = ServingGateway(
            testbed.auth, runtime, policies, max_dispatch_slots=10
        )
        runtime.add_worker(testbed.add_fleet_worker("gw-late"))
        assert gateway.max_dispatch_slots == 10


class TestPodUtilizationRecording:
    def test_chunk_shares_land_on_per_pod_gauges(self, env):
        testbed, zoo = env
        runtime, worker = place_on_fleet_worker(testbed, zoo, replicas=4)
        fixed = sample_input("matminer_util")
        for _ in range(8):
            runtime.submit(TaskRequest("matminer_util", args=fixed))
        results = runtime.drain()
        assert all(r.result.ok for r in results)
        busy = runtime.stage_metrics.pod_busy("matminer_util")
        # Eight misses over four pods: every pod served a chunk, keyed
        # by "worker/pod" so hosts stay distinguishable.
        assert len(busy) == 4
        assert all(pod.startswith(f"{worker.name}/") for pod in busy)
        assert all(share > 0 for share in busy.values())
        # An even backlog shards evenly: imbalance stays near 1.
        imbalance = runtime.stage_metrics.pod_imbalance(
            "matminer_util", prefix=f"{worker.name}/"
        )
        assert imbalance == pytest.approx(1.0, abs=0.2)

    def test_failed_chunks_do_not_pollute_the_gauge(self, env):
        testbed, zoo = env
        runtime, worker = place_on_fleet_worker(
            testbed, zoo, name="noop", replicas=2, max_batch_size=4
        )
        executor = worker.executors["parsl"]
        pool = executor._pools["noop"]
        victim = sorted(pool.pods, key=lambda p: (p.busy_until, p.name))[0]

        def explode(*args, **kwargs):
            raise RuntimeError("pod crashed mid-chunk")

        victim.exec = explode
        results = runtime.serve(
            [(0.0, TaskRequest("noop", args=(i,))) for i in range(4)]
        )
        assert any(not r.result.ok for r in results)
        busy = runtime.stage_metrics.pod_busy("noop")
        assert f"{worker.name}/{victim.name}" not in busy
        assert len(busy) == 1  # the surviving chunk's pod
