"""Unit tests for the Management Service: publish, discover, serve, batch,
async, pipelines, and authorization at every door."""

import pytest

from repro.auth.service import AuthorizationError
from repro.core.pipeline import Pipeline, PipelineError
from repro.core.tasks import TaskStatus
from repro.core.zoo import build_zoo
from repro.search.index import Visibility


@pytest.fixture(scope="module")
def env():
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    for name in ("noop", "matminer_util", "matminer_featurize", "matminer_model"):
        testbed.publish_and_deploy(zoo[name])
    return testbed, zoo


class TestAuthorization:
    def test_bad_token_rejected_everywhere(self, env):
        testbed, zoo = env
        ms = testbed.management
        with pytest.raises(AuthorizationError):
            ms.run("bogus-token", "noop")
        with pytest.raises(AuthorizationError):
            ms.search("bogus-token", "*")
        with pytest.raises(AuthorizationError):
            ms.publish("bogus-token", zoo["noop"])

    def test_restricted_model_invocation_denied(self, env):
        testbed, zoo = env
        from repro.core.servable import PythonFunctionServable
        from repro.core.toolbox import MetadataBuilder

        md = (
            MetadataBuilder("vip_model", "VIP only")
            .creator("Owner")
            .model_type("python_function")
            .input_type("dict")
            .output_type("dict")
            .build()
        )
        servable = PythonFunctionServable(md, lambda x: x)
        testbed.publish_and_deploy(
            servable, visibility=Visibility.restricted(principals=["nobody"])
        )
        _, outsider_token = testbed.new_user("outsider_mgmt")
        with pytest.raises(AuthorizationError):
            testbed.management.run(outsider_token, "vip_model", {})


class TestServing:
    def test_run_returns_timing_decomposition(self, env):
        testbed, _ = env
        result = testbed.management.run(testbed.token, "noop")
        assert result.ok and result.value == "hello world"
        assert 0 < result.inference_time < result.invocation_time < result.request_time

    def test_request_time_includes_ms_tm_rtt(self, env):
        testbed, _ = env
        testbed.task_manager.cache.clear()
        result = testbed.management.run(testbed.token, "noop")
        from repro.sim import calibration as cal

        assert result.request_time - result.invocation_time >= cal.RTT_MS_TM_S

    def test_resolves_namespaced_names(self, env):
        testbed, _ = env
        result = testbed.management.run(testbed.token, "scientist/noop")
        assert result.ok

    def test_failed_task_reported_not_raised(self, env):
        testbed, _ = env
        result = testbed.management.run(testbed.token, "matminer_util", "Bad!!")
        assert result.status is TaskStatus.FAILED
        assert result.error

    def test_metrics_recorded(self, env):
        testbed, _ = env
        before = testbed.management.metrics.count("noop")
        testbed.management.run(testbed.token, "noop")
        assert testbed.management.metrics.count("noop") == before + 1


class TestAsync:
    def test_async_lifecycle(self, env):
        testbed, _ = env
        handle = testbed.management.run_async(testbed.token, "matminer_util", "NaCl")
        assert testbed.management.status(testbed.token, handle.task_uuid) is (
            TaskStatus.SUCCEEDED
        )
        result = testbed.management.result(testbed.token, handle.task_uuid)
        assert result.value == {"Cl": 0.5, "Na": 0.5}

    def test_unknown_uuid(self, env):
        testbed, _ = env
        with pytest.raises(KeyError):
            testbed.management.status(testbed.token, "nope")


class TestBatch:
    def test_run_batch_outputs_match_sequential(self, env):
        testbed, _ = env
        formulas = [("NaCl",), ("SiO2",), ("MgO",)]
        batch = testbed.management.run_batch(testbed.token, "matminer_util", formulas)
        assert batch.ok
        singles = [
            testbed.management.run(testbed.token, "matminer_util", f[0]).value
            for f in formulas
        ]
        assert batch.value == singles

    def test_empty_batch_rejected(self, env):
        testbed, _ = env
        from repro.core.management import ManagementError

        with pytest.raises(ManagementError):
            testbed.management.run_batch(testbed.token, "matminer_util", [])


class TestPipelines:
    def test_register_and_run(self, env):
        testbed, _ = env
        pipeline = (
            Pipeline("enthalpy_test")
            .add_step("matminer_util")
            .add_step("matminer_featurize")
            .add_step("matminer_model")
        )
        testbed.management.register_pipeline(testbed.token, pipeline)
        result = testbed.management.run_pipeline(
            testbed.token, "enthalpy_test", "NaCl"
        )
        assert result.ok
        assert isinstance(result.value, float)
        assert "enthalpy_test" in testbed.management.pipelines()

    def test_pipeline_runs_via_run_too(self, env):
        testbed, _ = env
        result = testbed.management.run(testbed.token, "enthalpy_test", "SiO2")
        assert result.ok and isinstance(result.value, float)

    def test_pipeline_with_unknown_step_rejected(self, env):
        testbed, _ = env
        bad = Pipeline("broken").add_step("no_such_servable")
        from repro.core.repository import RepositoryError

        with pytest.raises(RepositoryError):
            testbed.management.register_pipeline(testbed.token, bad)

    def test_duplicate_pipeline_rejected(self, env):
        testbed, _ = env
        duplicate = Pipeline("enthalpy_test").add_step("matminer_util")
        with pytest.raises(PipelineError):
            testbed.management.register_pipeline(testbed.token, duplicate)

    def test_unknown_pipeline_run(self, env):
        testbed, _ = env
        with pytest.raises(PipelineError):
            testbed.management.run_pipeline(testbed.token, "ghost_pipeline")

    def test_pipeline_failure_propagates_as_failed_result(self, env):
        testbed, _ = env
        result = testbed.management.run_pipeline(
            testbed.token, "enthalpy_test", "NotChemistry!!"
        )
        assert result.status is TaskStatus.FAILED

    def test_pipeline_step_failure_short_circuits(self, env):
        """A failure in step 1 must not execute steps 2-3."""
        testbed, _ = env
        executor = testbed.parsl_executor
        downstream_pods = executor._deployments["matminer_featurize"].ready_pods()
        served_before = sum(p.served for p in downstream_pods)
        testbed.management.run_pipeline(testbed.token, "enthalpy_test", "Bad!!")
        # The featurize step never executed.
        assert sum(p.served for p in downstream_pods) == served_before


class TestDiscovery:
    def test_search_and_describe(self, env):
        testbed, _ = env
        hits = testbed.management.search(testbed.token, "matminer*")
        assert hits.total >= 3
        doc = testbed.management.describe(testbed.token, "matminer_model")
        assert doc["dlhub"]["model_type"] == "sklearn"
        assert "doi" in doc["dlhub"]
