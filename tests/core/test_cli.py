"""Unit tests for the Git-like CLI."""

import json

import pytest

from repro.core import cli as cli_mod
from repro.core.cli import (
    CLIError,
    build_parser,
    cmd_init,
    cmd_ls,
    cmd_publish,
    cmd_run,
    cmd_update,
)


@pytest.fixture
def workdir(tmp_path, monkeypatch):
    """Isolated working directory and tracking file."""
    monkeypatch.setattr(cli_mod, "TRACK_FILE", tmp_path / "tracked.json")
    return tmp_path


@pytest.fixture(scope="module")
def service():
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False)
    return testbed


class TestInit:
    def test_creates_dlhub_dir(self, workdir):
        path = cmd_init(workdir, "my_model", "My model")
        assert path.exists()
        doc = json.loads(path.read_text())
        assert doc["dlhub"]["name"] == "my_model"
        assert (workdir / ".dlhub").is_dir()

    def test_refuses_overwrite_without_force(self, workdir):
        cmd_init(workdir, "m", "T")
        with pytest.raises(CLIError):
            cmd_init(workdir, "m", "T")
        cmd_init(workdir, "m", "T", force=True)

    def test_tracks_servable(self, workdir):
        cmd_init(workdir, "m1", "T")
        entries = cmd_ls()
        assert entries[0]["name"] == "m1"
        assert entries[0]["path"] == str(workdir.resolve())


class TestUpdate:
    def test_dotted_updates(self, workdir):
        cmd_init(workdir, "m", "T")
        doc = cmd_update(workdir, {"dlhub.model_type": "keras", "dlhub.domain": "vision"})
        assert doc["dlhub"]["model_type"] == "keras"
        assert doc["dlhub"]["domain"] == "vision"

    def test_update_validates(self, workdir):
        cmd_init(workdir, "m", "T")
        with pytest.raises(Exception):  # SchemaError
            cmd_update(workdir, {"dlhub.model_type": "prolog"})

    def test_update_without_init(self, workdir):
        with pytest.raises(CLIError):
            cmd_update(workdir, {"dlhub.domain": "x"})


class TestLs:
    def test_empty_when_nothing_tracked(self, workdir):
        assert cmd_ls() == []

    def test_multiple_tracked(self, workdir, tmp_path):
        d1 = tmp_path / "a"
        d2 = tmp_path / "b"
        d1.mkdir(), d2.mkdir()
        cmd_init(d1, "m1", "T")
        cmd_init(d2, "m2", "T")
        assert {e["name"] for e in cmd_ls()} == {"m1", "m2"}


class TestPublishRun:
    def test_publish_flow(self, workdir, service):
        cmd_init(workdir, "cli_published", "From the CLI")
        published = cmd_publish(workdir, service.management, service.token)
        assert published.full_name.endswith("/cli_published")

    def test_publish_without_init(self, workdir, service):
        with pytest.raises(CLIError):
            cmd_publish(workdir, service.management, service.token)

    def test_run_roundtrip(self, workdir, service):
        cmd_init(workdir, "cli_echo", "Echo")
        published = cmd_publish(workdir, service.management, service.token)
        service.task_manager.register_servable(
            published.servable, published.build.image
        )
        value = cmd_run(service.management, service.token, "cli_echo", '{"a": 1}')
        assert value == {"a": 1}

    def test_run_bad_json(self, service):
        with pytest.raises(CLIError, match="JSON"):
            cmd_run(service.management, service.token, "anything", "{broken")


class TestParser:
    def test_all_paper_commands_present(self):
        parser = build_parser()
        for command in ("init", "update", "publish", "run", "ls"):
            args = {
                "init": ["init", "--name", "m"],
                "update": ["update", "dlhub.domain=x"],
                "publish": ["publish"],
                "run": ["run", "servable", "{}"],
                "ls": ["ls"],
            }[command]
            parsed = parser.parse_args(args)
            assert parsed.command == command
