"""Unit tests for the evaluation model zoo."""

import numpy as np
import pytest

from repro.core.zoo import ZOO_NAMES, build_zoo, sample_input


@pytest.fixture(scope="module")
def zoo():
    return build_zoo(oqmd_entries=60, n_estimators=5)


class TestZooContents:
    def test_all_six_servables(self, zoo):
        assert set(zoo.names()) == set(ZOO_NAMES)
        for name in ZOO_NAMES:
            assert zoo[name].name == name

    def test_noop_returns_hello_world(self, zoo):
        assert zoo["noop"].run() == "hello world"

    def test_inception_top5(self, zoo):
        out = zoo["inception"].run(*sample_input("inception"))
        assert len(out) == 5
        probs = [o["probability"] for o in out]
        assert probs == sorted(probs, reverse=True)

    def test_cifar10_probabilities(self, zoo):
        out = zoo["cifar10"].run(*sample_input("cifar10"))
        assert out.shape == (1, 10)
        assert np.allclose(out.sum(), 1.0)

    def test_matminer_chain_composes(self, zoo):
        """util -> featurize -> model works as a manual chain."""
        fractions = zoo["matminer_util"].run("SiO2")
        assert fractions == {"O": pytest.approx(2 / 3), "Si": pytest.approx(1 / 3)}
        features = zoo["matminer_featurize"].run(fractions)
        prediction = zoo["matminer_model"].run(features)
        assert isinstance(prediction, float)
        assert -6 < prediction < 2

    def test_forest_is_trained(self, zoo):
        from repro.matsci.oqmd import generate_oqmd_dataset

        entries = generate_oqmd_dataset(60, seed=42)
        x = zoo.featurizer.featurize_many([e.composition for e in entries])
        y = np.array([e.formation_energy for e in entries])
        assert zoo.forest.score(x, y) > 0.5

    def test_metadata_model_types(self, zoo):
        assert zoo["inception"].metadata.model_type == "keras"
        assert zoo["matminer_model"].metadata.model_type == "sklearn"
        assert zoo["noop"].metadata.model_type == "python_function"

    def test_components_present_for_ml_models(self, zoo):
        assert "weights.npz" in zoo["inception"].components
        assert "weights.npz" in zoo["cifar10"].components
        assert "estimator.pkl" in zoo["matminer_model"].components


class TestSampleInputs:
    def test_every_servable_has_an_input(self, zoo):
        for name in ZOO_NAMES:
            args = sample_input(name)
            result = zoo[name].run(*args)
            assert result is not None

    def test_inputs_deterministic(self):
        a = sample_input("inception")
        b = sample_input("inception")
        assert np.array_equal(a[0], b[0])

    def test_unknown_servable(self):
        with pytest.raises(KeyError):
            sample_input("ghost")

    def test_zoo_deterministic_by_seed(self):
        a = build_zoo(seed=3, oqmd_entries=40, n_estimators=3)
        b = build_zoo(seed=3, oqmd_entries=40, n_estimators=3)
        x = sample_input("cifar10")
        assert np.array_equal(a["cifar10"].run(*x), b["cifar10"].run(*x))
