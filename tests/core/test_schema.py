"""Unit tests for the publication metadata schema."""

import pytest

from repro.core.schema import ModelMetadata, SchemaError, validate_metadata


def valid_document():
    return {
        "datacite": {
            "title": "CIFAR-10 classifier",
            "creators": ["Chard, R.", "Li, Z."],
            "description": "A CNN",
        },
        "dlhub": {
            "name": "cifar10",
            "model_type": "keras",
            "input_type": "image",
            "output_type": "list",
            "domain": "vision",
            "dependencies": ["keras"],
            "hyperparameters": {"layers": 8},
        },
    }


class TestValidation:
    def test_valid_document_passes(self):
        validate_metadata(valid_document())

    def test_missing_blocks(self):
        with pytest.raises(SchemaError, match="datacite"):
            validate_metadata({"dlhub": {}})
        with pytest.raises(SchemaError, match="dlhub"):
            validate_metadata({"datacite": {}})
        with pytest.raises(SchemaError):
            validate_metadata("not a dict")

    @pytest.mark.parametrize("field", ["title", "creators"])
    def test_required_datacite_fields(self, field):
        doc = valid_document()
        del doc["datacite"][field]
        with pytest.raises(SchemaError, match=field):
            validate_metadata(doc)

    @pytest.mark.parametrize(
        "field", ["name", "model_type", "input_type", "output_type"]
    )
    def test_required_dlhub_fields(self, field):
        doc = valid_document()
        del doc["dlhub"][field]
        with pytest.raises(SchemaError, match=field):
            validate_metadata(doc)

    def test_creators_must_be_strings(self):
        doc = valid_document()
        doc["datacite"]["creators"] = [{"name": "x"}]
        with pytest.raises(SchemaError):
            validate_metadata(doc)

    def test_bad_name(self):
        doc = valid_document()
        doc["dlhub"]["name"] = "has spaces!"
        with pytest.raises(SchemaError):
            validate_metadata(doc)

    def test_name_allows_dash_underscore(self):
        doc = valid_document()
        doc["dlhub"]["name"] = "matminer_model-v2"
        validate_metadata(doc)

    def test_unknown_model_type(self):
        doc = valid_document()
        doc["dlhub"]["model_type"] = "prolog"
        with pytest.raises(SchemaError):
            validate_metadata(doc)

    def test_unknown_io_types(self):
        doc = valid_document()
        doc["dlhub"]["input_type"] = "hologram"
        with pytest.raises(SchemaError):
            validate_metadata(doc)

    def test_dependencies_must_be_strings(self):
        doc = valid_document()
        doc["dlhub"]["dependencies"] = [1, 2]
        with pytest.raises(SchemaError):
            validate_metadata(doc)


class TestModelMetadata:
    def test_from_document(self):
        md = ModelMetadata.from_document(valid_document())
        assert md.name == "cifar10"
        assert md.creators == ["Chard, R.", "Li, Z."]
        assert md.hyperparameters == {"layers": 8}
        assert md.domain == "vision"

    def test_roundtrip(self):
        md = ModelMetadata.from_document(valid_document())
        doc = md.to_document()
        md2 = ModelMetadata.from_document(doc)
        assert md2 == md

    def test_extra_fields_preserved(self):
        doc = valid_document()
        doc["dlhub"]["accuracy"] = 0.93
        md = ModelMetadata.from_document(doc)
        assert md.extra["accuracy"] == 0.93
        assert md.to_document()["dlhub"]["accuracy"] == 0.93

    def test_invalid_rejected_by_constructor(self):
        with pytest.raises(SchemaError):
            ModelMetadata.from_document({"datacite": {}, "dlhub": {}})
