"""Unit + integration tests for the fleet control plane.

The :class:`FleetController` reconciles the :class:`ServingRuntime`
data plane: health from claim activity + probes, worker scaling with
container cold starts, placement rebalancing, and Fig. 7 replica
scaling — all audited through the :class:`FleetEvent` log.
"""

import math

import pytest

from repro.core.adaptive import ArrivalForecaster, replicas_for_rate
from repro.core.fleet import (
    FleetController,
    FleetControllerError,
    FleetObservation,
    FleetPolicy,
    FleetPlan,
    PredictiveScaling,
    QueueLatencySLOPolicy,
    ServableDemand,
    TargetUtilizationPolicy,
    per_copy_capacity_rps,
)
from repro.core.runtime import ServingRuntime
from repro.core.tasks import TaskRequest
from repro.core.zoo import build_zoo, sample_input
from repro.messaging.queue import servable_topic
from repro.sim import calibration as cal

INTERVAL = 0.25


def build_controlled_fleet(
    servables=("noop",),
    n_workers=1,
    max_workers=4,
    policy=None,
    **controller_kwargs,
):
    """A concurrent (own-clock) fleet with an attached controller."""
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False, memoize_tm=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    workers = [testbed.add_fleet_worker(f"w{i}") for i in range(n_workers)]
    runtime = ServingRuntime(
        testbed.clock,
        testbed.management.queue,
        workers,
        max_batch_size=16,
        max_coalesce_delay_s=0.005,
    )
    for name in servables:
        published = testbed.management.publish(testbed.token, zoo[name])
        runtime.place(zoo[name], published.build.image)
    controller_kwargs.setdefault("autoscale_replicas", False)
    controller_kwargs.setdefault("min_workers", 1)
    controller = FleetController(
        runtime,
        provision_worker=testbed.add_fleet_worker,
        policy=policy,
        interval_s=INTERVAL,
        max_workers=max_workers,
        **controller_kwargs,
    )
    return testbed, zoo, runtime, controller


def flat_rate(servable, rate_rps, duration_s, start_s=0.0):
    fixed = sample_input(servable)
    return [
        (start_s + i / rate_rps, TaskRequest(servable, args=fixed))
        for i in range(int(rate_rps * duration_s))
    ]


def demand(**overrides):
    base = dict(
        name="noop",
        queue_depth=0,
        arrival_rate_rps=0.0,
        live_copies=1,
        per_copy_capacity_rps=100.0,
        recent_p95_queue_wait_s=None,
    )
    base.update(overrides)
    return ServableDemand(**base)


def observation(demands, routable=1, max_workers=4):
    return FleetObservation(
        time=0.0,
        routable_workers=routable,
        draining_workers=0,
        min_workers=1,
        max_workers=max_workers,
        demands=tuple(demands),
    )


class TestCapacityModel:
    def test_per_copy_capacity_is_batch_amortized(self):
        cap = per_copy_capacity_rps(cal.INFERENCE_COST_S["noop"], 16)
        serial = (
            cal.TASK_MANAGER_HANDLING_S
            + cal.TASK_MANAGER_ROUTING_S
            + cal.PARSL_DISPATCH_S
            + cal.SERVABLE_SHIM_S
            + cal.PARSL_COLLECT_S
        )
        per_item = cal.INFERENCE_COST_S["noop"] + cal.BATCH_ITEM_MARGINAL_S
        assert cap == pytest.approx(16 / (serial + 16 * per_item))
        # Bigger windows amortize the serial overheads further.
        assert per_copy_capacity_rps(cal.INFERENCE_COST_S["noop"], 32) > cap

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            per_copy_capacity_rps(0.001, 0)


class TestTargetUtilizationPolicy:
    def test_scales_copies_with_pressure(self):
        policy = TargetUtilizationPolicy(target_utilization=0.5)
        plan = policy.plan(
            observation([demand(arrival_rate_rps=150.0)], max_workers=8)
        )
        # 150 rps at 50% of 100 rps/copy -> 3 copies.
        assert plan.copies["noop"] == 3
        assert plan.target_workers == 3

    def test_backlog_counts_as_pressure(self):
        policy = TargetUtilizationPolicy(
            target_utilization=0.5, backlog_horizon_s=1.0
        )
        plan = policy.plan(
            observation([demand(queue_depth=150)], max_workers=8)
        )
        assert plan.copies["noop"] == 3

    def test_scale_down_is_gradual_and_hysteretic(self):
        policy = TargetUtilizationPolicy(
            target_utilization=0.5, scale_down_utilization=0.3
        )
        # Busy enough that 3 copies stay (100 rps > 0.3 * 2 * 100).
        hold = policy.plan(
            observation([demand(arrival_rate_rps=100.0, live_copies=3)])
        )
        assert hold.copies["noop"] == 3
        # Nearly idle: shed exactly one copy per pass.
        shrink = policy.plan(
            observation([demand(arrival_rate_rps=1.0, live_copies=3)])
        )
        assert shrink.copies["noop"] == 2

    def test_copies_clamped_to_max_workers(self):
        policy = TargetUtilizationPolicy(target_utilization=0.5)
        plan = policy.plan(
            observation([demand(arrival_rate_rps=1e5)], max_workers=4)
        )
        assert plan.copies["noop"] == 4
        assert plan.target_workers == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            TargetUtilizationPolicy(target_utilization=0.0)
        with pytest.raises(ValueError):
            TargetUtilizationPolicy(scale_down_utilization=0.9)
        with pytest.raises(ValueError):
            TargetUtilizationPolicy(backlog_horizon_s=0)


class TestQueueLatencySLOPolicy:
    def test_backlog_must_drain_within_slo(self):
        policy = QueueLatencySLOPolicy(slo_s=0.1, safety=1.0)
        # 50 queued at 100 rps/copy: need 5 copies to clear in 100 ms.
        plan = policy.plan(
            observation([demand(queue_depth=50)], max_workers=8)
        )
        assert plan.copies["noop"] == 5

    def test_p95_breach_forces_exploratory_copy(self):
        policy = QueueLatencySLOPolicy(slo_s=0.05)
        plan = policy.plan(
            observation(
                [demand(recent_p95_queue_wait_s=0.2, live_copies=2)],
                max_workers=8,
            )
        )
        assert plan.copies["noop"] == 3

    def test_scale_down_needs_comfortable_tail(self):
        policy = QueueLatencySLOPolicy(slo_s=0.1)
        uneasy = policy.plan(
            observation([demand(live_copies=3, recent_p95_queue_wait_s=0.05)])
        )
        assert uneasy.copies["noop"] == 3
        comfy = policy.plan(
            observation([demand(live_copies=3, recent_p95_queue_wait_s=0.01)])
        )
        assert comfy.copies["noop"] == 2
        # A fully idle servable (no fresh samples, empty queue) drains too.
        idle = policy.plan(observation([demand(live_copies=3)]))
        assert idle.copies["noop"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueLatencySLOPolicy(slo_s=0)
        with pytest.raises(ValueError):
            QueueLatencySLOPolicy(safety=1.5)


class TestControllerConstruction:
    def test_attaches_to_runtime(self):
        testbed, zoo, runtime, controller = build_controlled_fleet()
        assert runtime._controller is controller
        assert controller.next_wakeup() == testbed.clock.now()

    def test_validation(self):
        testbed, zoo, runtime, _ = build_controlled_fleet()
        with pytest.raises(FleetControllerError):
            FleetController(runtime, interval_s=0)
        with pytest.raises(FleetControllerError):
            FleetController(runtime, min_workers=3, max_workers=2)
        with pytest.raises(FleetControllerError):
            FleetController(runtime, ewma_alpha=0)

    def test_default_policy(self):
        testbed, zoo, runtime, controller = build_controlled_fleet()
        assert isinstance(controller.policy, TargetUtilizationPolicy)


class TestObservation:
    def test_arrival_rate_estimated_from_enqueue_deltas(self):
        testbed, zoo, runtime, controller = build_controlled_fleet(
            ewma_alpha=1.0
        )
        controller.observe()
        for _ in range(50):
            runtime.submit(TaskRequest("noop"))
        testbed.clock.advance(0.5)
        obs = controller.observe()
        assert obs.demands[0].arrival_rate_rps == pytest.approx(100.0)
        assert obs.demands[0].queue_depth == 50
        runtime.drain()

    def test_recent_p95_windows_not_all_time(self):
        testbed, zoo, runtime, controller = build_controlled_fleet()
        for _ in range(8):
            runtime.submit(TaskRequest("noop"))
        runtime.drain()
        first = controller.observe()
        assert first.demands[0].recent_p95_queue_wait_s is not None
        # No new samples since: the window is empty, not the old tail.
        second = controller.observe()
        assert second.demands[0].recent_p95_queue_wait_s is None


class TestWorkerScaling:
    def test_backlog_provisions_up_to_max(self):
        testbed, zoo, runtime, controller = build_controlled_fleet(max_workers=3)
        for _ in range(400):
            runtime.submit(TaskRequest("noop"))
        testbed.clock.advance(INTERVAL)
        controller.reconcile()
        assert len(runtime.alive_workers()) == 3
        provisioned = controller.events_of("worker_provisioned")
        assert len(provisioned) == 2
        cold = provisioned[0].detail["cold_start_s"]
        assert cold > cal.CONTAINER_START_S  # pull + start
        # Fresh workers join busy: the cold start is on their clock.
        for event in provisioned:
            worker = runtime.worker(event.subject)
            assert runtime.free_at(worker) > testbed.clock.now()
        assert len(controller.events_of("copy_added")) == 2
        runtime.drain()

    def test_drain_and_retire_after_idle(self):
        testbed, zoo, runtime, controller = build_controlled_fleet(max_workers=3)
        for _ in range(400):
            runtime.submit(TaskRequest("noop"))
        testbed.clock.advance(INTERVAL)
        controller.reconcile()
        runtime.drain()
        for _ in range(20):
            testbed.clock.advance(INTERVAL)
            controller.reconcile()
        assert len(runtime.alive_workers()) == 1
        assert len(runtime.workers) == 1  # retired, not just unroutable
        assert controller.events_of("worker_draining")
        assert controller.events_of("worker_retired")
        # The survivor still hosts the servable.
        assert runtime.placement()["noop"] == [runtime.workers[0].name]

    def test_no_provisioner_means_fixed_fleet(self):
        testbed, zoo, runtime, controller = build_controlled_fleet()
        controller.provision_worker = None
        for _ in range(400):
            runtime.submit(TaskRequest("noop"))
        testbed.clock.advance(INTERVAL)
        controller.reconcile()
        assert len(runtime.workers) == 1
        assert not controller.events_of("worker_provisioned")
        runtime.drain()

    def test_peak_tracking(self):
        testbed, zoo, runtime, controller = build_controlled_fleet(max_workers=3)
        assert controller.peak_routable_workers == 1
        for _ in range(400):
            runtime.submit(TaskRequest("noop"))
        testbed.clock.advance(INTERVAL)
        controller.reconcile()
        runtime.drain()
        for _ in range(20):
            testbed.clock.advance(INTERVAL)
            controller.reconcile()
        assert controller.peak_routable_workers == 3
        assert len(runtime.alive_workers()) == 1


class TestHealth:
    def test_crash_detected_and_migrated(self):
        testbed, zoo, runtime, controller = build_controlled_fleet(
            n_workers=2, min_workers=2
        )
        controller.reconcile()
        primary = runtime.hosts("noop")[0]
        primary.crash()
        testbed.clock.advance(INTERVAL)
        controller.reconcile()
        assert controller.health[primary.name].status == "down"
        assert controller.events_of("worker_down")
        migrated = controller.events_of("servable_migrated")
        assert migrated and migrated[0].subject == "noop"
        # Traffic keeps flowing on the migrated copy.
        runtime.submit(TaskRequest("noop"))
        results = runtime.drain()
        assert results[0].result.ok and results[0].worker != primary.name

    def test_recovered_worker_is_revived(self):
        testbed, zoo, runtime, controller = build_controlled_fleet(
            n_workers=2, min_workers=2
        )
        controller.reconcile()
        primary = runtime.hosts("noop")[0]
        primary.crash()
        testbed.clock.advance(INTERVAL)
        controller.reconcile()
        primary.recover()
        testbed.clock.advance(INTERVAL)
        controller.reconcile()
        assert controller.events_of("worker_revived")
        assert controller.health[primary.name].status == "healthy"
        assert primary in runtime.alive_workers()

    def test_claim_activity_counts_as_liveness(self):
        testbed, zoo, runtime, controller = build_controlled_fleet()
        controller.reconcile()
        before = controller.health[runtime.workers[0].name].last_active
        runtime.submit(TaskRequest("noop"))
        runtime.drain()
        testbed.clock.advance(INTERVAL)
        controller.reconcile()
        health = controller.health[runtime.workers[0].name]
        assert health.last_active > before
        assert health.tasks_processed == runtime.workers[0].tasks_processed

    def test_sole_worker_crash_provisions_replacement(self):
        """Self-healing: losing the only routable worker triggers both a
        replacement and a placement migration in one reconcile."""
        testbed, zoo, runtime, controller = build_controlled_fleet()
        controller.reconcile()
        runtime.workers[0].crash()
        testbed.clock.advance(INTERVAL)
        controller.reconcile()
        assert controller.events_of("worker_provisioned")
        assert controller.events_of("servable_migrated")
        runtime.submit(TaskRequest("noop"))
        results = runtime.drain()
        assert results[0].result.ok


class TestReplicaScaling:
    def test_live_traffic_scales_host_replicas(self):
        testbed, zoo, runtime, controller = build_controlled_fleet(
            servables=("inception",),
            autoscale_replicas=True,
            max_replicas_per_host=4,
            ewma_alpha=1.0,
        )
        worker = runtime.hosts("inception")[0]
        executor = worker.route("inception")[1]
        assert executor.replicas("inception") == 1
        controller.observe()
        for _ in range(100):
            runtime.submit(TaskRequest("inception", args=sample_input("inception")))
        testbed.clock.advance(1.0)  # ~100 rps observed
        controller.reconcile()
        events = controller.events_of("replicas_scaled")
        assert events and events[0].subject == "inception"
        want = events[0].detail["replicas"]
        assert executor.replicas("inception") == want
        # Unified sizing: the controller's per-host Autoscaler inverts
        # the same shared capacity model the policies plan copies from,
        # at the runtime's micro-batch size (16).
        expected = replicas_for_rate(
            cal.inference_cost("inception"), 16, 100.0, max_replicas=4
        )
        assert want == expected
        runtime.drain()


class TestServeIntegration:
    def test_controller_reconciles_inside_serve(self):
        testbed, zoo, runtime, controller = build_controlled_fleet(max_workers=4)
        results = runtime.serve(flat_rate("noop", 400.0, 2.0))
        assert len(results) == 800 and all(r.result.ok for r in results)
        assert controller.reconciles >= 4  # ticked along the schedule
        assert controller.peak_routable_workers > 1
        assert controller.events_of("worker_provisioned")

    def test_custom_policy_plugs_in(self):
        class PinnedPolicy(FleetPolicy):
            """Always wants exactly two of everything."""

            name = "pinned"

            def plan(self, obs):
                return FleetPlan(
                    target_workers=2,
                    copies={d.name: 2 for d in obs.demands},
                )

        testbed, zoo, runtime, controller = build_controlled_fleet(
            policy=PinnedPolicy(), max_workers=4
        )
        testbed.clock.advance(INTERVAL)
        controller.reconcile()
        assert len(runtime.alive_workers()) == 2
        assert len(runtime.placement()["noop"]) == 2

    def test_events_are_clock_stamped_and_queryable(self):
        testbed, zoo, runtime, controller = build_controlled_fleet(max_workers=2)
        for _ in range(200):
            runtime.submit(TaskRequest("noop"))
        testbed.clock.advance(INTERVAL)
        now = testbed.clock.now()
        controller.reconcile()
        event = controller.events_of("worker_provisioned")[0]
        assert event.time == pytest.approx(now)
        assert controller.events_of("worker_provisioned", "copy_added") == [
            e
            for e in controller.events
            if e.kind in ("worker_provisioned", "copy_added")
        ]
        runtime.drain()

    def test_queue_topic_ownership_respected(self):
        """The controller only observes topics the runtime owns."""
        testbed, zoo, runtime, controller = build_controlled_fleet()
        testbed.management.queue.put("foreign", topic="other/lane")
        obs = controller.observe()
        assert {d.name for d in obs.demands} == {"noop"}
        assert testbed.management.queue.ready_count("other/lane") == 1

    def test_served_topic_depth_matches(self):
        testbed, zoo, runtime, controller = build_controlled_fleet()
        runtime.submit(TaskRequest("noop"))
        assert (
            testbed.management.queue.ready_count(servable_topic("noop")) == 1
        )
        obs = controller.observe()
        assert obs.demands[0].queue_depth == 1
        runtime.drain()

    def test_zero_dt_sample_does_not_swallow_arrivals(self):
        """Back-to-back samples at the same virtual time must not consume
        enqueue deltas without feeding the rate estimator."""
        testbed, zoo, runtime, controller = build_controlled_fleet(
            ewma_alpha=1.0
        )
        controller.observe()
        for _ in range(50):
            runtime.submit(TaskRequest("noop"))
        testbed.clock.advance(0.5)
        controller.observe()  # consumes the 50-arrival delta at 100 rps
        obs = controller.observe()  # dt == 0: keeps the estimate
        assert obs.demands[0].arrival_rate_rps == pytest.approx(100.0)
        runtime.drain()


class TestProvisionerGuard:
    def test_shared_clock_provisioner_rejected(self):
        """A provisioner returning shared-clock workers would warp global
        time with cold starts; the controller fails fast instead."""
        testbed, zoo, runtime, controller = build_controlled_fleet()
        controller.provision_worker = testbed.add_task_manager
        for _ in range(400):
            runtime.submit(TaskRequest("noop"))
        testbed.clock.advance(INTERVAL)
        with pytest.raises(FleetControllerError, match="own\\s+clock"):
            controller.reconcile()


class TestPredictiveScaling:
    def test_flat_traffic_matches_base_policy(self):
        base = TargetUtilizationPolicy()
        policy = PredictiveScaling(TargetUtilizationPolicy(), lead_time_s=2.0)
        flat = demand(arrival_rate_rps=100.0, live_copies=2)
        for t in (0.0, 0.25, 0.5, 0.75, 1.0):
            obs = FleetObservation(
                time=t,
                routable_workers=2,
                draining_workers=0,
                min_workers=1,
                max_workers=4,
                demands=(flat,),
            )
            predictive_plan = policy.plan(obs)
            base_plan = base.plan(obs)
        # A zero-trend history projects flat: no over-provisioning.
        assert predictive_plan.copies == base_plan.copies
        assert predictive_plan.target_workers == base_plan.target_workers
        assert policy.last_planning_rates["noop"] == pytest.approx(100.0)

    def test_rising_edge_plans_ahead_of_base(self):
        base = TargetUtilizationPolicy()
        policy = PredictiveScaling(TargetUtilizationPolicy(), lead_time_s=2.0)
        rates = [100.0, 100.0, 100.0, 220.0, 380.0]
        for i, rate in enumerate(rates):
            obs = observation([demand(arrival_rate_rps=rate)], max_workers=8)
            obs = FleetObservation(
                time=i * 0.25,
                routable_workers=1,
                draining_workers=0,
                min_workers=1,
                max_workers=8,
                demands=(demand(arrival_rate_rps=rate),),
            )
            predictive_plan = policy.plan(obs)
        base_plan = base.plan(obs)
        # The projection runs ahead of the observed rate...
        assert policy.last_forecasts["noop"].rate_rps > 380.0
        assert policy.last_planning_rates["noop"] > 380.0
        # ...so the wrapped policy asks for more capacity than the
        # reactive baseline does from the same observation.
        assert predictive_plan.copies["noop"] > base_plan.copies["noop"]

    def test_weighted_rate_carries_the_boost(self):
        policy = PredictiveScaling(TargetUtilizationPolicy(), lead_time_s=2.0)
        for i, rate in enumerate((50.0, 150.0, 300.0)):
            obs = FleetObservation(
                time=i * 0.25,
                routable_workers=1,
                draining_workers=0,
                min_workers=1,
                max_workers=8,
                demands=(
                    demand(
                        arrival_rate_rps=1.0,
                        weighted_arrival_rate_rps=rate,
                    ),
                ),
            )
            policy.plan(obs)
        # effective_rate_rps prefers the weighted figure; the forecast
        # must have been fed (and boosted) from it, not the raw rate.
        assert policy.last_planning_rates["noop"] > 300.0

    def test_default_lead_time_covers_cold_start(self):
        from repro.containers.runtime import cold_start_cost_s
        from repro.core.fleet import DEFAULT_WORKER_IMAGE_BYTES

        policy = PredictiveScaling()
        assert policy.lead_time_s >= cold_start_cost_s(DEFAULT_WORKER_IMAGE_BYTES)

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictiveScaling(lead_time_s=0.0)

    def test_custom_forecaster_plugs_in(self):
        forecaster = ArrivalForecaster(alpha=0.3, beta=0.05)
        policy = PredictiveScaling(forecaster=forecaster, lead_time_s=1.0)
        obs = observation([demand(arrival_rate_rps=10.0)])
        policy.plan(obs)
        assert forecaster.keys() == ["noop"]


class TestPredictiveController:
    def test_forecast_events_and_earlier_scale_up(self):
        """A spiking schedule under PredictiveScaling logs demand_forecast
        events and provisions no later than the forecast fires."""
        testbed, zoo, runtime, controller = build_controlled_fleet(
            policy=PredictiveScaling(
                TargetUtilizationPolicy(), reconcile_interval_s=INTERVAL
            ),
            max_workers=4,
        )
        spike = flat_rate("noop", 150.0, 1.0) + flat_rate(
            "noop", 900.0, 2.0, start_s=1.0
        )
        results = runtime.serve(sorted(spike, key=lambda pair: pair[0]))
        assert len(results) == len(spike)
        forecasts = controller.events_of("demand_forecast")
        assert forecasts, "no pre-provision decisions were logged"
        detail = forecasts[0].detail
        assert detail["forecast_rps"] > detail["rate_rps"]
        assert detail["lead_time_s"] == pytest.approx(
            controller.policy.lead_time_s, abs=1e-3
        )
        provisions = controller.events_of("worker_provisioned")
        assert provisions
        # The first provision came with (or after) a forecast, never
        # before the forecaster had signal.
        assert provisions[0].time >= forecasts[0].time

    def test_warming_visible_in_fleet_stats(self):
        testbed, zoo, runtime, controller = build_controlled_fleet(max_workers=2)
        for _ in range(200):
            runtime.submit(TaskRequest("noop"))
        testbed.clock.advance(INTERVAL)
        controller.reconcile()
        stats = runtime.fleet_stats()
        fresh = [w for w in stats.workers if w.name.startswith("fleet-w")]
        assert fresh, "controller provisioned no worker"
        # The provisioned worker is still paying its container cold
        # start: pre-provisioned capacity is observable before it lands.
        assert fresh[0].warming
        assert fresh[0].warm_at > stats.time
        runtime.drain()
        # Once global time passes every cold start, nothing is warming.
        horizon = max(w.warm_at for w in runtime.fleet_stats().workers)
        if horizon > testbed.clock.now():
            testbed.clock.advance_to(horizon + 1e-6)
        assert not any(w.warming for w in runtime.fleet_stats().workers)


class TestImbalanceDerate:
    """The windowed ``pod_imbalance`` gauge de-rates planned capacity."""

    def test_on_by_default(self):
        """Default-on: a lopsided window de-rates planned capacity
        with no opt-in (threshold 1.25)."""
        testbed, zoo, runtime, controller = build_controlled_fleet()
        baseline = controller.observe().demands[0].per_copy_capacity_rps
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-0", 30.0)
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-1", 0.0)
        obs = controller.observe()
        assert obs.demands[0].per_copy_capacity_rps < baseline

    def test_none_disables(self):
        """Opt-out: ``imbalance_derate_threshold=None`` leaves even a
        lopsided window at the model's planned capacity."""
        testbed, zoo, runtime, controller = build_controlled_fleet(
            imbalance_derate_threshold=None
        )
        baseline = controller.observe().demands[0].per_copy_capacity_rps
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-0", 30.0)
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-1", 0.0)
        obs = controller.observe()
        assert obs.demands[0].per_copy_capacity_rps == baseline

    def test_scale_transient_excluded(self):
        """A window overlapping a scale event is consumed but not
        judged: warm-up skew right after a provision must not read as
        straggler imbalance — and because the cursor still advanced,
        the transient data cannot poison the next settled window."""
        testbed, zoo, runtime, controller = build_controlled_fleet()
        baseline = controller.observe().demands[0].per_copy_capacity_rps
        controller._record("worker_provisioned", "w1")
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-0", 30.0)
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-1", 0.0)
        obs = controller.observe()
        assert obs.demands[0].per_copy_capacity_rps == baseline
        # Past the settle period, a *new* skewed window derates again.
        testbed.clock.advance(controller.imbalance_settle_s)
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-0", 30.0)
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-1", 0.0)
        obs = controller.observe()
        assert obs.demands[0].per_copy_capacity_rps < baseline

    def test_straggler_imbalance_derates_capacity(self):
        testbed, zoo, runtime, controller = build_controlled_fleet(
            imbalance_derate_threshold=1.25
        )
        baseline = controller.observe().demands[0].per_copy_capacity_rps
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-0", 3.0)
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-1", 1.0)
        obs = controller.observe()
        # max/mean = 3.0/2.0 = 1.5 > 1.25: plan on the straggler's pace.
        assert obs.demands[0].per_copy_capacity_rps == pytest.approx(
            baseline / 1.5
        )

    def test_balanced_pods_leave_capacity_alone(self):
        testbed, zoo, runtime, controller = build_controlled_fleet(
            imbalance_derate_threshold=1.25
        )
        baseline = controller.observe().demands[0].per_copy_capacity_rps
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-0", 2.0)
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-1", 2.0)
        obs = controller.observe()
        assert obs.demands[0].per_copy_capacity_rps == baseline

    def test_jitter_below_threshold_ignored(self):
        testbed, zoo, runtime, controller = build_controlled_fleet(
            imbalance_derate_threshold=1.25
        )
        baseline = controller.observe().demands[0].per_copy_capacity_rps
        # max/mean = 1.2/1.0 = 1.2 < 1.25: routine scatter, no derate.
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-0", 1.2)
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-1", 0.8)
        obs = controller.observe()
        assert obs.demands[0].per_copy_capacity_rps == baseline

    def test_derate_capped_for_pathological_windows(self):
        testbed, zoo, runtime, controller = build_controlled_fleet(
            imbalance_derate_threshold=1.25, imbalance_derate_cap=1.6
        )
        baseline = controller.observe().demands[0].per_copy_capacity_rps
        # Three pods, one doing all the work: imbalance 3.0, capped 1.6.
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-0", 6.0)
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-1", 0.0)
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-2", 0.0)
        obs = controller.observe()
        assert obs.demands[0].per_copy_capacity_rps == pytest.approx(
            baseline / 1.6
        )

    def test_window_forgets_old_imbalance(self):
        """The gauge is consumed through deltas: once a skewed interval
        has been observed, a quiet follow-up interval stops the derate —
        cumulative-since-start ratios would pin it forever."""
        testbed, zoo, runtime, controller = build_controlled_fleet(
            imbalance_derate_threshold=1.25
        )
        baseline = controller.observe().demands[0].per_copy_capacity_rps
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-0", 3.0)
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-1", 1.0)
        derated = controller.observe().demands[0].per_copy_capacity_rps
        assert derated < baseline
        # No new busy time since: an all-zero window reads as even.
        recovered = controller.observe().demands[0].per_copy_capacity_rps
        assert recovered == baseline

    def test_own_cursor_survives_replica_scaling_reads(self):
        """The derate view and the replica-scaling view window the same
        cumulative gauge through separate cursors — one consumer reading
        first must not blind the other."""
        testbed, zoo, runtime, controller = build_controlled_fleet(
            imbalance_derate_threshold=1.25
        )
        controller.observe()
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-0", 3.0)
        runtime.stage_metrics.record_pod_share("noop", "w0/pod-1", 1.0)
        # The replica-scaling window consumes its cursor first...
        assert controller._pod_busy_window("noop", "w0") == {
            "w0/pod-0": 3.0,
            "w0/pod-1": 1.0,
        }
        # ...and the derate still sees the full interval through its own.
        obs = controller.observe()
        assert obs.demands[0].per_copy_capacity_rps < per_copy_capacity_rps(
            zoo["noop"].inference_cost_s, runtime.max_batch_size
        )

    def test_validation(self):
        with pytest.raises(FleetControllerError, match="threshold"):
            build_controlled_fleet(imbalance_derate_threshold=0.5)
        with pytest.raises(FleetControllerError, match="cap"):
            build_controlled_fleet(
                imbalance_derate_threshold=1.5, imbalance_derate_cap=1.2
            )
