"""Property tests: the runtime's event indices vs the reference scan.

``ServingRuntime._next_window`` answers dispatch decisions from
incrementally maintained heaps; ``_next_window_scan`` is the retained
linear reference. Semantics must be bit-for-bit identical — same
dispatchable topic (including tag/flush/topic tie-breaks), same
next-event horizon — under any interleaving of enqueues, claims,
settles, withdrawals, lane churn, and fleet churn. These tests drive
randomized op sequences and compare the two implementations after every
step, plus targeted cases for the lazy-invalidation edges.
"""

import math
import random

import pytest

from repro.core.runtime import ServingRuntime
from repro.core.tasks import TaskRequest
from repro.core.zoo import build_zoo
from repro.messaging.queue import servable_topic


@pytest.fixture(scope="module")
def zoo():
    return build_zoo(oqmd_entries=50, n_estimators=4)


def build_runtime(zoo, n_workers=2, servables=("noop", "matminer_util"), **kw):
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False, memoize_tm=False)
    workers = [testbed.task_manager]
    workers += [testbed.add_task_manager(f"tm-{i}") for i in range(1, n_workers)]
    kw.setdefault("max_coalesce_delay_s", 0.05)
    kw.setdefault("max_batch_size", 4)
    runtime = ServingRuntime(
        testbed.clock, testbed.management.queue, workers, **kw
    )
    for name in servables:
        published = testbed.management.publish(testbed.token, zoo[name])
        runtime.place(zoo[name], published.build.image)
    return testbed, runtime


def assert_agree(runtime, now):
    """The index and the scan give identical answers at ``now``."""
    heap_pick, heap_event = runtime._next_window(now)
    scan_pick, scan_event = runtime._next_window_scan(now)
    assert heap_pick == scan_pick
    assert heap_event == scan_event


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_heap_matches_scan_under_random_ops(self, zoo, seed):
        """Random enqueue/claim/settle/withdraw/clock ops, checked stepwise."""
        rng = random.Random(seed)
        testbed, runtime = build_runtime(zoo)
        servables = ("noop", "matminer_util")
        tenants = (None, "alpha", "beta", "gamma")
        claimed = []
        for _ in range(220):
            op = rng.random()
            now = testbed.clock.now()
            if op < 0.45:
                request = TaskRequest(rng.choice(servables), args=("x",))
                request.tenant = rng.choice(tenants)
                if rng.random() < 0.6:
                    request.dispatch_tag = rng.uniform(0.0, 10.0)
                runtime.submit(request)
            elif op < 0.65:
                pick, _ = runtime._next_window_scan(now)
                if pick is not None:
                    claimed.extend(
                        runtime.queue.claim_many(pick, n=rng.randint(1, 3))
                    )
            elif op < 0.78 and claimed:
                msg = claimed.pop(rng.randrange(len(claimed)))
                if rng.random() < 0.5:
                    runtime.queue.ack(msg.delivery_tag)
                else:
                    runtime.queue.nack(msg.delivery_tag, requeue=True)
            elif op < 0.88:
                name = rng.choice(servables)
                lane = rng.choice(["requests", "tenant-alpha", "tenant-beta"])
                topic = servable_topic(name, lane=lane)
                withdrawn = runtime.queue.withdraw_newest(topic, n=1)
                if withdrawn and rng.random() < 0.7:
                    runtime.queue.restore(withdrawn[0])
            else:
                testbed.clock.advance(rng.uniform(0.0, 0.08))
            assert_agree(runtime, testbed.clock.now())

    @pytest.mark.parametrize("seed", range(4))
    def test_heap_matches_scan_under_fleet_churn(self, zoo, seed):
        """Liveness flips and copy moves never desync the two answers."""
        rng = random.Random(1000 + seed)
        testbed, runtime = build_runtime(zoo, n_workers=3)
        names = [w.name for w in runtime.workers]
        downed = set()
        for _ in range(150):
            op = rng.random()
            if op < 0.4:
                request = TaskRequest("noop", args=("x",))
                request.tenant = rng.choice((None, "alpha", "beta"))
                request.dispatch_tag = rng.uniform(0.0, 5.0)
                runtime.submit(request)
            elif op < 0.6:
                name = rng.choice(names)
                if name in downed:
                    runtime.mark_up(name)
                    downed.discard(name)
                elif len(downed) < len(names):  # keep the door open
                    runtime.mark_down(name)
                    downed.add(name)
            elif op < 0.75:
                pick, _ = runtime._next_window_scan(testbed.clock.now())
                if pick is not None:
                    for msg in runtime.queue.claim_many(pick, n=1):
                        runtime.queue.ack(msg.delivery_tag)
            elif op < 0.9:
                worker = rng.choice(runtime.workers)
                hosts = runtime.placement()["noop"]
                if worker.name not in hosts:
                    runtime.add_copy("noop", worker)
                elif len(hosts) > 1:
                    runtime.remove_copy("noop", worker.name)
            else:
                testbed.clock.advance(rng.uniform(0.0, 0.05))
            assert_agree(runtime, testbed.clock.now())

    @pytest.mark.parametrize("seed", range(3))
    def test_full_serve_matches_scan_results(self, zoo, seed):
        """End-to-end: a served random schedule settles identically under
        index-driven dispatch and a scan-driven twin."""
        rng = random.Random(2000 + seed)
        schedule = []
        offset = 0.0
        for _ in range(60):
            offset += rng.uniform(0.0, 0.02)
            request = TaskRequest("noop", args=("x",))
            if rng.random() < 0.5:
                request.tenant = rng.choice(("alpha", "beta"))
                request.dispatch_tag = rng.uniform(0.0, 3.0)
            schedule.append((offset, request))

        def _clone(r):
            c = TaskRequest(r.servable_name, args=r.args)
            c.tenant = r.tenant
            c.dispatch_tag = r.dispatch_tag
            return c

        def serve(use_scan):
            testbed, runtime = build_runtime(zoo, servables=("noop",))
            if use_scan:
                runtime._next_window = runtime._next_window_scan
            results = runtime.serve([(off, _clone(r)) for off, r in schedule])
            return [
                (r.request.tenant, r.request.dispatch_tag, r.completed_at)
                for r in results
            ]

        assert serve(use_scan=False) == serve(use_scan=True)


class TestIndexEdges:
    def test_gateway_tag_changes_rerank_the_window(self, zoo):
        """A lane whose head changes tag gets a fresh heap entry; the old
        one is skipped as stale, not served out of order."""
        testbed, runtime = build_runtime(
            zoo, servables=("noop",), max_coalesce_delay_s=0.0
        )
        now = testbed.clock.now()
        for tenant, tag in (("alpha", 5.0), ("beta", 1.0)):
            request = TaskRequest("noop", args=("x",))
            request.tenant = tenant
            request.dispatch_tag = tag
            runtime.submit(request)
        pick, _ = runtime._next_window(now)
        assert pick == servable_topic("noop", lane="tenant-beta")
        assert_agree(runtime, now)
        # Claim beta's head: alpha (tag 5.0) becomes the only window.
        runtime.queue.claim(pick)
        pick, _ = runtime._next_window(now)
        assert pick == servable_topic("noop", lane="tenant-alpha")
        assert_agree(runtime, now)

    def test_untagged_outranks_tagged(self, zoo):
        testbed, runtime = build_runtime(
            zoo, servables=("noop",), max_coalesce_delay_s=0.0
        )
        now = testbed.clock.now()
        tagged = TaskRequest("noop", args=("x",))
        tagged.tenant = "alpha"
        tagged.dispatch_tag = 0.0
        runtime.submit(tagged)
        runtime.submit(TaskRequest("noop", args=("x",)))  # untagged default lane
        pick, _ = runtime._next_window(now)
        assert pick == servable_topic("noop")
        assert_agree(runtime, now)

    def test_future_window_migrates_to_due(self, zoo):
        """A window indexed as future moves to the due heap when the
        clock passes its flush deadline — without any queue event."""
        testbed, runtime = build_runtime(
            zoo, servables=("noop",), max_coalesce_delay_s=0.5
        )
        runtime.submit(TaskRequest("noop", args=("x",)))
        now = testbed.clock.now()
        pick, next_event = runtime._next_window(now)
        assert pick is None
        assert next_event == pytest.approx(now + 0.5)
        assert_agree(runtime, now)
        testbed.clock.advance(0.5)
        later = testbed.clock.now()
        pick, _ = runtime._next_window(later)
        assert pick == servable_topic("noop")
        assert_agree(runtime, later)

    def test_no_live_host_hides_the_servable(self, zoo):
        testbed, runtime = build_runtime(
            zoo, servables=("noop",), n_workers=1, max_coalesce_delay_s=0.0
        )
        runtime.submit(TaskRequest("noop", args=("x",)))
        runtime.mark_down(runtime.workers[0].name)
        now = testbed.clock.now()
        assert runtime._next_window(now) == (None, math.inf)
        assert_agree(runtime, now)
        runtime.mark_up(runtime.workers[0].name)
        pick, _ = runtime._next_window(now)
        assert pick == servable_topic("noop")
        assert_agree(runtime, now)

    def test_queue_depth_tracks_events_o1(self, zoo):
        """The listener-maintained depth equals the lane-scan answer
        through puts, claims, nacks, withdrawals, and restores."""
        testbed, runtime = build_runtime(zoo, servables=("noop",))

        def scan_depth():
            return sum(
                runtime.queue.ready_count(servable_topic("noop", lane=lane))
                for lane in runtime._lanes["noop"]
            )

        for tenant in (None, "alpha", "beta", "alpha"):
            request = TaskRequest("noop", args=("x",))
            request.tenant = tenant
            runtime.submit(request)
            assert runtime.queue_depth("noop") == scan_depth()
        msg = runtime.queue.claim(servable_topic("noop", lane="tenant-alpha"))
        assert runtime.queue_depth("noop") == scan_depth() == 3
        runtime.queue.nack(msg.delivery_tag, requeue=True)
        assert runtime.queue_depth("noop") == scan_depth() == 4
        withdrawn = runtime.queue.withdraw_newest(
            servable_topic("noop", lane="tenant-beta"), n=1
        )
        assert runtime.queue_depth("noop") == scan_depth() == 3
        runtime.queue.restore(withdrawn[0])
        assert runtime.queue_depth("noop") == scan_depth() == 4

    def test_unowned_topics_stay_invisible(self, zoo):
        """Traffic on the shared queue outside the runtime's lanes (e.g.
        the MS sync lane) must not enter the indices."""
        testbed, runtime = build_runtime(zoo, servables=("noop",))
        runtime.queue.put(
            TaskRequest("noop", args=("x",)),
            topic=servable_topic("noop", lane="sync"),
        )
        runtime.queue.put(TaskRequest("noop", args=("x",)), topic="default")
        now = testbed.clock.now()
        assert runtime.queue_depth("noop") == 0
        assert runtime._next_window(now) == (None, math.inf)
        assert_agree(runtime, now)

    def test_direct_put_baselined_when_lane_appears(self, zoo):
        """Messages put straight onto a tenant topic before the runtime
        tracks that lane are folded in when the lane first appears."""
        testbed, runtime = build_runtime(zoo, servables=("noop",))
        topic = servable_topic("noop", lane="tenant-alpha")
        early = TaskRequest("noop", args=("x",))
        early.tenant = "alpha"
        runtime.queue.put(early, topic=topic)
        assert runtime.queue_depth("noop") == 0  # lane not tracked yet
        late = TaskRequest("noop", args=("x",))
        late.tenant = "alpha"
        runtime.submit(late)
        assert runtime.queue_depth("noop") == 2
        assert_agree(runtime, testbed.clock.now())
