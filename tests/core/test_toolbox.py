"""Unit tests for the metadata toolbox and local execution."""

import json

import pytest

from repro.core.schema import SchemaError
from repro.core.servable import PythonFunctionServable
from repro.core.toolbox import MetadataBuilder, run_local


class TestMetadataBuilder:
    def test_minimal_document(self):
        md = (
            MetadataBuilder("m", "Title")
            .creator("A")
            .build()
        )
        assert md.name == "m" and md.title == "Title"

    def test_fluent_everything(self):
        doc = (
            MetadataBuilder("forest", "A forest")
            .creator("Ward, L.", "Blaiszik, B.")
            .description("Predicts stability")
            .model_type("sklearn")
            .input_type("features")
            .output_type("number")
            .domain("materials science")
            .dependency("scikit-learn", "numpy")
            .training_data("OQMD")
            .hyperparameter("n_estimators", 100)
            .extra("accuracy", 0.9)
            .document()
        )
        assert doc["datacite"]["creators"] == ["Ward, L.", "Blaiszik, B."]
        assert doc["dlhub"]["dependencies"] == ["scikit-learn", "numpy"]
        assert doc["dlhub"]["hyperparameters"]["n_estimators"] == 100
        assert doc["dlhub"]["accuracy"] == 0.9

    def test_invalid_fails_at_build(self):
        builder = MetadataBuilder("bad name!", "Title").creator("A")
        with pytest.raises(SchemaError):
            builder.build()

    def test_missing_creator_fails(self):
        with pytest.raises(SchemaError):
            MetadataBuilder("m", "Title").build()

    def test_document_is_a_copy(self):
        builder = MetadataBuilder("m", "T").creator("A")
        doc = builder.document()
        doc["dlhub"]["name"] = "mutated"
        assert builder.document()["dlhub"]["name"] == "m"

    def test_to_json_parses(self):
        text = MetadataBuilder("m", "T").creator("A").to_json()
        assert json.loads(text)["dlhub"]["name"] == "m"


class TestRunLocal:
    def test_executes_handler_directly(self):
        md = MetadataBuilder("echo", "Echo").creator("A").build()
        servable = PythonFunctionServable(md, lambda x, scale=1: x * scale)
        assert run_local(servable, 5, scale=3) == 15

    def test_no_serving_stack_needed(self):
        """run_local works with zero deployment: the development mode."""
        md = MetadataBuilder("dev", "Dev").creator("A").build()
        calls = []
        servable = PythonFunctionServable(md, lambda: calls.append(1))
        run_local(servable)
        assert calls == [1]
