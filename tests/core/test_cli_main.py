"""Tests for the CLI entry point (argv handling, exit codes, output)."""

import json

import pytest

from repro.core import cli as cli_mod
from repro.core.cli import main


@pytest.fixture
def isolated(tmp_path, monkeypatch):
    monkeypatch.setattr(cli_mod, "TRACK_FILE", tmp_path / "tracked.json")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestMain:
    def test_init_success_exit_zero(self, isolated, capsys):
        assert main(["init", "--name", "cli_model", "--title", "T"]) == 0
        out = capsys.readouterr().out
        assert "metadata.json" in out
        assert (isolated / ".dlhub" / "metadata.json").exists()

    def test_init_twice_errors(self, isolated, capsys):
        main(["init", "--name", "m"])
        assert main(["init", "--name", "m"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_update_success(self, isolated, capsys):
        main(["init", "--name", "m"])
        assert main(["update", "dlhub.domain=materials"]) == 0
        doc = json.loads((isolated / ".dlhub" / "metadata.json").read_text())
        assert doc["dlhub"]["domain"] == "materials"

    def test_update_bad_assignment(self, isolated, capsys):
        main(["init", "--name", "m"])
        assert main(["update", "no-equals-sign"]) == 1

    def test_update_schema_violation(self, isolated, capsys):
        main(["init", "--name", "m"])
        assert main(["update", "dlhub.model_type=prolog"]) == 1

    def test_ls_lists_tracked(self, isolated, capsys):
        main(["init", "--name", "m1"])
        capsys.readouterr()
        assert main(["ls"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing[0]["name"] == "m1"

    def test_unknown_command_exits_nonzero(self, isolated):
        with pytest.raises(SystemExit):
            main(["teleport"])

    def test_no_command_exits_nonzero(self, isolated):
        with pytest.raises(SystemExit):
            main([])
