"""Unit tests for the adaptive batching + autoscaling extensions."""

import math

import pytest

from repro.core.adaptive import (
    AdaptiveBatcher,
    ArrivalForecaster,
    Autoscaler,
    ProfileError,
    ServableProfile,
    per_copy_capacity_rps,
    replicas_for_rate,
)
from repro.core.zoo import build_zoo, sample_input
from repro.sim import calibration as cal


@pytest.fixture(scope="module")
def env():
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False, memoize_tm=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    for name in ("noop", "matminer_featurize", "inception"):
        testbed.publish_and_deploy(zoo[name])
    return testbed, zoo


class TestServableProfile:
    def test_fit_recovers_linear_model(self):
        profile = ServableProfile("m")
        for n in (1, 5, 10, 50):
            profile.observe(n, 0.002 + 0.001 * n)
        intercept, slope = profile.fit()
        assert intercept == pytest.approx(0.002, abs=1e-6)
        assert slope == pytest.approx(0.001, abs=1e-6)

    def test_fit_needs_two_distinct_sizes(self):
        profile = ServableProfile("m")
        profile.observe(4, 0.01)
        profile.observe(4, 0.011)
        with pytest.raises(ProfileError):
            profile.fit()

    def test_max_batch_for_latency(self):
        profile = ServableProfile("m")
        for n in (1, 10):
            profile.observe(n, 0.002 + 0.001 * n)
        assert profile.max_batch_for_latency(0.012) == 10
        assert profile.max_batch_for_latency(0.0021) == 1  # budget ~ intercept

    def test_invalid_observation(self):
        with pytest.raises(ValueError):
            ServableProfile("m").observe(0, 0.1)


class TestAdaptiveBatcher:
    def test_outputs_preserve_order_and_values(self, env):
        testbed, zoo = env
        batcher = AdaptiveBatcher(
            testbed.parsl_executor, "matminer_featurize", latency_budget_s=0.2
        )
        inputs = [({"Na": 0.5, "Cl": 0.5},), ({"Mg": 0.5, "O": 0.5},)] * 6
        outputs = batcher.run(inputs)
        assert len(outputs) == 12
        direct = zoo["matminer_featurize"].run({"Na": 0.5, "Cl": 0.5})
        import numpy as np

        assert np.allclose(outputs[0], direct)

    def test_batch_sizes_respect_budget_after_warmup(self, env):
        testbed, _ = env
        budget = 0.050
        batcher = AdaptiveBatcher(
            testbed.parsl_executor, "noop", latency_budget_s=budget, bootstrap_batch=4
        )
        # Warm-up flushes build the profile.
        batcher.run([()] * 40)
        warm_decisions = batcher.decisions[-3:]
        for decision in warm_decisions:
            if not math.isnan(decision.predicted_time_s):
                assert decision.predicted_time_s <= budget * 1.25

    def test_adaptive_sizes_grow_for_cheap_servables(self, env):
        testbed, _ = env
        batcher = AdaptiveBatcher(
            testbed.parsl_executor, "noop", latency_budget_s=0.5, bootstrap_batch=2
        )
        batcher.run([()] * 8)  # bootstrap
        batcher.run([()] * 300)
        assert max(d.batch_size for d in batcher.decisions) > 2

    def test_pending_counter(self, env):
        testbed, _ = env
        batcher = AdaptiveBatcher(testbed.parsl_executor, "noop")
        batcher.submit(())
        batcher.submit(())
        assert batcher.pending == 2
        batcher.flush()
        assert batcher.pending == 0

    def test_invalid_budget(self, env):
        testbed, _ = env
        with pytest.raises(ValueError):
            AdaptiveBatcher(testbed.parsl_executor, "noop", latency_budget_s=0)


class TestAutoscaler:
    def test_saturation_matches_fig7_model(self, env):
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor)
        expected = math.ceil(
            (cal.SERVABLE_SHIM_S + cal.inference_cost("inception"))
            / cal.PARSL_DISPATCH_S
        )
        assert scaler.saturation_replicas("inception") == expected
        assert 10 <= expected <= 22  # the ~15-replica knee

    def test_recommendation_scales_with_load(self, env):
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor)
        low = scaler.recommend("inception", 30.0)
        high = scaler.recommend("inception", 300.0)
        assert low < high

    def test_recommendation_capped_at_saturation(self, env):
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor)
        huge = scaler.recommend("inception", 1e6)
        assert huge == scaler.saturation_replicas("inception")

    def test_autoscale_applies(self, env):
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor)
        decision = scaler.autoscale("matminer_featurize", 100.0)
        assert decision.applied
        assert (
            testbed.parsl_executor.replicas("matminer_featurize")
            == decision.recommended_replicas
        )

    def test_scaled_deployment_meets_demand(self, env):
        """End-to-end: autoscaled replicas actually sustain the rate."""
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor)
        rate = 80.0  # requests/second
        scaler.autoscale("matminer_featurize", rate)
        n = 300
        makespan = testbed.parsl_executor.submit_stream(
            "matminer_featurize", [sample_input("matminer_featurize")] * n
        )
        assert n / makespan >= rate * 0.9

    def test_unknown_servable(self, env):
        testbed, _ = env
        with pytest.raises(ProfileError):
            Autoscaler(testbed.parsl_executor).recommend("ghost", 1.0)

    def test_negative_rate_rejected(self, env):
        testbed, _ = env
        with pytest.raises(ValueError):
            Autoscaler(testbed.parsl_executor).recommend("inception", -1.0)


class TestAutoscalerEdgeCases:
    def test_zero_arrival_rate_holds_floor(self, env):
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor, min_replicas=2)
        assert scaler.recommend("inception", 0.0) == 2
        assert Autoscaler(testbed.parsl_executor).recommend("inception", 0.0) == 1

    def test_saturation_knee_equality(self, env):
        """A rate whose demand lands exactly on the knee is served at the
        knee — neither clamped below it nor pushed past it."""
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor)
        knee = scaler.saturation_replicas("inception")
        rate = knee / scaler.task_cost("inception")
        assert math.ceil(rate * scaler.task_cost("inception")) == knee
        assert scaler.recommend("inception", rate) == knee
        # Pushing demand past the knee still returns the knee.
        assert scaler.recommend("inception", rate * 2) == knee

    def test_max_replicas_clamps_below_saturation(self, env):
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor, max_replicas=3)
        assert scaler.saturation_replicas("inception") > 3
        assert scaler.recommend("inception", 1e6) == 3

    def test_task_cost_is_public(self, env):
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor)
        expected = cal.SERVABLE_SHIM_S + cal.inference_cost("inception")
        assert scaler.task_cost("inception") == pytest.approx(expected)


class TestExecutorAccessors:
    def test_deployed_servables_and_get_servable(self, env):
        testbed, zoo = env
        executor = testbed.parsl_executor
        assert set(executor.deployed_servables()) == {
            "noop",
            "matminer_featurize",
            "inception",
        }
        assert executor.get_servable("noop") is zoo["noop"]

    def test_get_servable_unknown_raises(self, env):
        from repro.core.executors import ExecutorError

        testbed, _ = env
        with pytest.raises(ExecutorError):
            testbed.parsl_executor.get_servable("ghost")


class TestSharedCapacityModel:
    def test_capacity_monotone_in_replicas_until_knee(self):
        cost = cal.inference_cost("cifar10")
        caps = [per_copy_capacity_rps(cost, 16, r) for r in range(1, 17)]
        assert all(b >= a for a, b in zip(caps, caps[1:]))
        # Past the knee (R >= B) every chunk is one item: no more gain.
        assert per_copy_capacity_rps(cost, 16, 32) == pytest.approx(caps[-1])

    def test_replicas_for_rate_is_minimal(self):
        cost = cal.inference_cost("cifar10")
        for rate in (10.0, 100.0, 250.0, 400.0):
            want = replicas_for_rate(cost, 16, rate)
            assert per_copy_capacity_rps(cost, 16, want) >= rate or want == 16
            if want > 1:
                assert per_copy_capacity_rps(cost, 16, want - 1) < rate

    def test_replicas_for_rate_zero_rate_holds_floor(self):
        assert replicas_for_rate(0.01, 16, 0.0) == 1

    def test_replicas_for_rate_saturates_at_knee(self):
        # An unattainable rate returns the knee, not max_replicas: pods
        # beyond ceil(B/R) == 1 add busy cost but no capacity.
        assert replicas_for_rate(0.05, 8, 1e9, max_replicas=64) == 8
        assert replicas_for_rate(0.05, 8, 1e9, max_replicas=4) == 4

    def test_replicas_for_rate_validation(self):
        with pytest.raises(ValueError):
            replicas_for_rate(0.01, 16, -1.0)
        with pytest.raises(ValueError):
            replicas_for_rate(0.01, 16, 1.0, max_replicas=0)


class TestUnifiedAutoscaler:
    """Regression: Fig. 7 replica sizing matches the shared capacity model.

    Before PR 5 the Autoscaler sized replicas from the streaming cost
    model even when it was scaling the coalesced micro-batch path —
    systematically under-provisioning batch-heavy traffic. In coalesced
    mode (max_batch_size > 1) it must now invert exactly
    per_copy_capacity_rps, the model the fleet controller plans
    copies from.
    """

    def test_coalesced_recommendation_matches_shared_model(self, env):
        testbed, zoo = env
        scaler = Autoscaler(testbed.parsl_executor, max_batch_size=16)
        cost = cal.inference_cost("inception")
        for rate in (5.0, 50.0, 150.0, 300.0):
            assert scaler.recommend("inception", rate) == replicas_for_rate(
                cost, 16, rate, max_replicas=scaler.max_replicas
            )

    def test_coalesced_recommendation_meets_rate(self, env):
        testbed, zoo = env
        scaler = Autoscaler(testbed.parsl_executor, max_batch_size=16)
        rate = 150.0
        replicas = scaler.recommend("inception", rate)
        assert (
            per_copy_capacity_rps(cal.inference_cost("inception"), 16, replicas)
            >= rate
        )

    def test_streaming_mode_is_bit_for_bit_legacy(self, env):
        testbed, zoo = env
        legacy = Autoscaler(testbed.parsl_executor)
        rate = 40.0
        expected = min(
            math.ceil(rate * legacy.task_cost("inception")),
            legacy.saturation_replicas("inception"),
        )
        assert legacy.recommend("inception", rate) == expected

    def test_bounds_respected_in_coalesced_mode(self, env):
        testbed, zoo = env
        scaler = Autoscaler(
            testbed.parsl_executor,
            min_replicas=2,
            max_replicas=3,
            max_batch_size=16,
        )
        assert scaler.recommend("inception", 0.0) == 2
        assert scaler.recommend("inception", 1e9) == 3

    def test_invalid_batch_size(self, env):
        testbed, zoo = env
        with pytest.raises(ValueError):
            Autoscaler(testbed.parsl_executor, max_batch_size=0)


class TestArrivalForecaster:
    def test_empty_history_projects_zero(self):
        forecaster = ArrivalForecaster()
        forecast = forecaster.forecast("ghost", at_time_s=10.0)
        assert forecast.rate_rps == 0.0
        assert forecaster.keys() == []

    def test_flat_load_projects_flat(self):
        forecaster = ArrivalForecaster()
        for i in range(20):
            forecaster.observe("m", i * 0.25, 100.0)
        forecast = forecaster.forecast("m", 20 * 0.25 + 2.0)
        assert forecast.rate_rps == pytest.approx(100.0, rel=0.02)
        assert abs(forecast.trend_per_s) < 1.0

    def test_linear_ramp_extrapolates(self):
        forecaster = ArrivalForecaster()
        # rate(t) = 50 + 20 t, sampled every 250 ms for 5 s.
        for i in range(21):
            t = i * 0.25
            forecaster.observe("m", t, 50.0 + 20.0 * t)
        forecast = forecaster.forecast("m", 5.0 + 2.0)
        assert forecast.rate_rps == pytest.approx(50.0 + 20.0 * 7.0, rel=0.10)
        assert forecast.trend_per_s == pytest.approx(20.0, rel=0.15)

    def test_step_spike_projects_above_observed(self):
        forecaster = ArrivalForecaster()
        for i in range(8):
            forecaster.observe("m", i * 0.25, 100.0)
        # The spike's rising edge as an EWMA would see it.
        forecaster.observe("m", 2.0, 400.0)
        forecaster.observe("m", 2.25, 650.0)
        forecast = forecaster.forecast("m", 2.25 + 2.0)
        # Trend extrapolation runs ahead of the smoothed level: the
        # whole point of forecasting is beating the EWMA to the spike.
        assert forecast.rate_rps > 650.0

    def test_decay_after_burst_bottoms_out_at_zero(self):
        forecaster = ArrivalForecaster()
        for i in range(8):
            forecaster.observe("m", i * 0.25, 800.0)
        for i in range(8, 28):
            forecaster.observe("m", i * 0.25, max(800.0 - 100.0 * (i - 7), 0.0))
        forecast = forecaster.forecast("m", 28 * 0.25 + 2.0)
        assert 0.0 <= forecast.rate_rps < 100.0

    def test_seasonal_profile_anticipates_next_cycle(self):
        # Seasonal mode wants a damped trend (see the class docstring):
        # the cycle belongs in the seasonal profile, not the slope.
        forecaster = ArrivalForecaster(
            alpha=0.3, beta=0.05, gamma=0.5,
            seasonal_period_s=8.0, seasonal_buckets=8,
        )
        # Square wave: 200 rps in the first half of each 8 s period,
        # 20 rps in the second half; several full cycles of history.
        for i in range(160):
            t = i * 0.25
            rate = 200.0 if (t % 8.0) < 4.0 else 20.0
            forecaster.observe("m", t, rate)
        # Standing at a low-phase instant, project into the next high
        # phase: the seasonal profile should pull the forecast up.
        high = forecaster.forecast("m", 42.0)   # phase 2.0 -> high bucket
        low = forecaster.forecast("m", 46.0)    # phase 6.0 -> low bucket
        assert high.rate_rps > low.rate_rps + 50.0

    def test_unordered_samples_rejected(self):
        forecaster = ArrivalForecaster()
        forecaster.observe("m", 1.0, 10.0)
        with pytest.raises(ValueError):
            forecaster.observe("m", 0.5, 10.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ArrivalForecaster().observe("m", 0.0, -1.0)

    def test_parameter_validation(self):
        for kwargs in (
            {"alpha": 0.0},
            {"beta": 1.5},
            {"gamma": 0.0},
            {"seasonal_period_s": 0.0},
            {"seasonal_buckets": 0},
        ):
            with pytest.raises(ValueError):
                ArrivalForecaster(**kwargs)

    def test_repeated_timestamp_refreshes_level_only(self):
        forecaster = ArrivalForecaster(alpha=0.5)
        forecaster.observe("m", 1.0, 100.0)
        forecaster.observe("m", 1.0, 200.0)
        forecast = forecaster.forecast("m", 1.0)
        assert forecast.trend_per_s == 0.0
        assert forecast.rate_rps == pytest.approx(150.0)


class TestDampedTrend:
    """One-sided Gardner damping of negative trends at projection time."""

    @staticmethod
    def _declining(forecaster):
        # rate(t) = 800 - 100 t, sampled every 250 ms for 3 s.
        for i in range(13):
            t = i * 0.25
            forecaster.observe("m", t, 800.0 - 100.0 * t)
        return 3.0

    def test_default_damping_is_identity(self):
        plain, explicit = ArrivalForecaster(), ArrivalForecaster(trend_damping=1.0)
        last = self._declining(plain)
        self._declining(explicit)
        assert plain.forecast("m", last + 2.0) == explicit.forecast("m", last + 2.0)

    def test_negative_trend_projection_is_lifted(self):
        undamped, damped = (
            ArrivalForecaster(),
            ArrivalForecaster(trend_damping=0.5),
        )
        last = self._declining(undamped)
        self._declining(damped)
        at = last + 2.0
        lifted = damped.forecast("m", at)
        crashed = undamped.forecast("m", at)
        # Same smoothed state, shallower downswing.
        assert lifted.level == crashed.level
        assert lifted.trend_per_s == crashed.trend_per_s
        assert lifted.rate_rps > crashed.rate_rps
        assert lifted.rate_rps < lifted.level

    def test_damped_downswing_is_bounded_in_the_horizon(self):
        forecaster = ArrivalForecaster(trend_damping=0.5)
        self._declining(forecaster)
        # (1 - phi^h) / (-ln phi) -> 1/ln(2) as h -> inf: however far
        # out the projection looks, the trend contributes a bounded dip.
        far = forecaster.forecast("m", 1e6)
        floor = far.level + far.trend_per_s * (1.0 / math.log(2.0))
        assert far.rate_rps == pytest.approx(max(floor, 0.0))

    def test_rising_trend_never_damped(self):
        eager, damped = ArrivalForecaster(), ArrivalForecaster(trend_damping=0.3)
        for i in range(13):
            t = i * 0.25
            eager.observe("m", t, 50.0 + 40.0 * t)
            damped.observe("m", t, 50.0 + 40.0 * t)
        assert eager.forecast("m", 5.0) == damped.forecast("m", 5.0)

    def test_validation(self):
        for phi in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="trend_damping"):
                ArrivalForecaster(trend_damping=phi)


class TestSeasonalAutodetect:
    """Opt-in period detection: off by default, estimation by
    autocorrelation, explicit configuration always winning."""

    @staticmethod
    def _square(forecaster, period_s=4.0, samples=160, key="m"):
        # Square wave: high in the first half of each cycle, sampled
        # every 250 ms — several full cycles of history.
        for i in range(samples):
            t = i * 0.25
            rate = 200.0 if (t % period_s) < (period_s / 2) else 20.0
            forecaster.observe(key, t, rate)

    def test_off_by_default_and_bit_for_bit_identical(self):
        plain = ArrivalForecaster(alpha=0.3, beta=0.05)
        explicit = ArrivalForecaster(
            alpha=0.3, beta=0.05, seasonal_autodetect=False
        )
        self._square(plain)
        self._square(explicit)
        assert plain.detected_period("m") is None
        assert plain.forecast("m", 42.0) == explicit.forecast("m", 42.0)

    def test_detects_the_dominant_period(self):
        forecaster = ArrivalForecaster(
            alpha=0.3, beta=0.05, gamma=0.5, seasonal_autodetect=True
        )
        self._square(forecaster, period_s=4.0)
        assert forecaster.detected_period("m") == pytest.approx(4.0, rel=0.15)
        # Once detected, the seasonal machinery runs as if configured:
        # standing past the history, the high phase projects above the
        # low phase of the same future cycle.
        high = forecaster.forecast("m", 41.0)  # phase 1.0 -> high bucket
        low = forecaster.forecast("m", 43.0)   # phase 3.0 -> low bucket
        assert high.rate_rps > low.rate_rps + 50.0

    def test_aperiodic_traffic_detects_nothing(self):
        detecting = ArrivalForecaster(seasonal_autodetect=True)
        plain = ArrivalForecaster()
        for i in range(64):
            detecting.observe("m", i * 0.25, 100.0)
            plain.observe("m", i * 0.25, 100.0)
        assert detecting.detected_period("m") is None
        assert detecting.forecast("m", 20.0) == plain.forecast("m", 20.0)

    def test_explicit_period_always_wins(self):
        configured = ArrivalForecaster(
            alpha=0.3, beta=0.05, gamma=0.5,
            seasonal_period_s=4.0, seasonal_autodetect=True,
        )
        reference = ArrivalForecaster(
            alpha=0.3, beta=0.05, gamma=0.5, seasonal_period_s=4.0
        )
        self._square(configured)
        self._square(reference)
        # No history is even retained while a period is configured.
        assert configured.detected_period("m") is None
        assert configured.forecast("m", 41.0) == reference.forecast("m", 41.0)

    def test_detection_is_per_key(self):
        forecaster = ArrivalForecaster(
            alpha=0.3, beta=0.05, seasonal_autodetect=True
        )
        self._square(forecaster, key="cyclic")
        for i in range(64):
            forecaster.observe("steady", i * 0.25, 100.0)
        assert forecaster.detected_period("cyclic") is not None
        assert forecaster.detected_period("steady") is None

    def test_validation(self):
        for kwargs in (
            {"autodetect_min_samples": 7},
            {"autodetect_history": 8, "autodetect_min_samples": 16},
            {"autodetect_min_corr": 0.0},
            {"autodetect_min_corr": 1.0},
        ):
            with pytest.raises(ValueError, match="autodetect"):
                ArrivalForecaster(**kwargs)
