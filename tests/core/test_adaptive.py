"""Unit tests for the adaptive batching + autoscaling extensions."""

import math

import pytest

from repro.core.adaptive import (
    AdaptiveBatcher,
    Autoscaler,
    ProfileError,
    ServableProfile,
)
from repro.core.zoo import build_zoo, sample_input
from repro.sim import calibration as cal


@pytest.fixture(scope="module")
def env():
    from repro.core.testbed import build_testbed

    testbed = build_testbed(jitter=False, memoize_tm=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    for name in ("noop", "matminer_featurize", "inception"):
        testbed.publish_and_deploy(zoo[name])
    return testbed, zoo


class TestServableProfile:
    def test_fit_recovers_linear_model(self):
        profile = ServableProfile("m")
        for n in (1, 5, 10, 50):
            profile.observe(n, 0.002 + 0.001 * n)
        intercept, slope = profile.fit()
        assert intercept == pytest.approx(0.002, abs=1e-6)
        assert slope == pytest.approx(0.001, abs=1e-6)

    def test_fit_needs_two_distinct_sizes(self):
        profile = ServableProfile("m")
        profile.observe(4, 0.01)
        profile.observe(4, 0.011)
        with pytest.raises(ProfileError):
            profile.fit()

    def test_max_batch_for_latency(self):
        profile = ServableProfile("m")
        for n in (1, 10):
            profile.observe(n, 0.002 + 0.001 * n)
        assert profile.max_batch_for_latency(0.012) == 10
        assert profile.max_batch_for_latency(0.0021) == 1  # budget ~ intercept

    def test_invalid_observation(self):
        with pytest.raises(ValueError):
            ServableProfile("m").observe(0, 0.1)


class TestAdaptiveBatcher:
    def test_outputs_preserve_order_and_values(self, env):
        testbed, zoo = env
        batcher = AdaptiveBatcher(
            testbed.parsl_executor, "matminer_featurize", latency_budget_s=0.2
        )
        inputs = [({"Na": 0.5, "Cl": 0.5},), ({"Mg": 0.5, "O": 0.5},)] * 6
        outputs = batcher.run(inputs)
        assert len(outputs) == 12
        direct = zoo["matminer_featurize"].run({"Na": 0.5, "Cl": 0.5})
        import numpy as np

        assert np.allclose(outputs[0], direct)

    def test_batch_sizes_respect_budget_after_warmup(self, env):
        testbed, _ = env
        budget = 0.050
        batcher = AdaptiveBatcher(
            testbed.parsl_executor, "noop", latency_budget_s=budget, bootstrap_batch=4
        )
        # Warm-up flushes build the profile.
        batcher.run([()] * 40)
        warm_decisions = batcher.decisions[-3:]
        for decision in warm_decisions:
            if not math.isnan(decision.predicted_time_s):
                assert decision.predicted_time_s <= budget * 1.25

    def test_adaptive_sizes_grow_for_cheap_servables(self, env):
        testbed, _ = env
        batcher = AdaptiveBatcher(
            testbed.parsl_executor, "noop", latency_budget_s=0.5, bootstrap_batch=2
        )
        batcher.run([()] * 8)  # bootstrap
        batcher.run([()] * 300)
        assert max(d.batch_size for d in batcher.decisions) > 2

    def test_pending_counter(self, env):
        testbed, _ = env
        batcher = AdaptiveBatcher(testbed.parsl_executor, "noop")
        batcher.submit(())
        batcher.submit(())
        assert batcher.pending == 2
        batcher.flush()
        assert batcher.pending == 0

    def test_invalid_budget(self, env):
        testbed, _ = env
        with pytest.raises(ValueError):
            AdaptiveBatcher(testbed.parsl_executor, "noop", latency_budget_s=0)


class TestAutoscaler:
    def test_saturation_matches_fig7_model(self, env):
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor)
        expected = math.ceil(
            (cal.SERVABLE_SHIM_S + cal.inference_cost("inception"))
            / cal.PARSL_DISPATCH_S
        )
        assert scaler.saturation_replicas("inception") == expected
        assert 10 <= expected <= 22  # the ~15-replica knee

    def test_recommendation_scales_with_load(self, env):
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor)
        low = scaler.recommend("inception", 30.0)
        high = scaler.recommend("inception", 300.0)
        assert low < high

    def test_recommendation_capped_at_saturation(self, env):
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor)
        huge = scaler.recommend("inception", 1e6)
        assert huge == scaler.saturation_replicas("inception")

    def test_autoscale_applies(self, env):
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor)
        decision = scaler.autoscale("matminer_featurize", 100.0)
        assert decision.applied
        assert (
            testbed.parsl_executor.replicas("matminer_featurize")
            == decision.recommended_replicas
        )

    def test_scaled_deployment_meets_demand(self, env):
        """End-to-end: autoscaled replicas actually sustain the rate."""
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor)
        rate = 80.0  # requests/second
        scaler.autoscale("matminer_featurize", rate)
        n = 300
        makespan = testbed.parsl_executor.submit_stream(
            "matminer_featurize", [sample_input("matminer_featurize")] * n
        )
        assert n / makespan >= rate * 0.9

    def test_unknown_servable(self, env):
        testbed, _ = env
        with pytest.raises(ProfileError):
            Autoscaler(testbed.parsl_executor).recommend("ghost", 1.0)

    def test_negative_rate_rejected(self, env):
        testbed, _ = env
        with pytest.raises(ValueError):
            Autoscaler(testbed.parsl_executor).recommend("inception", -1.0)


class TestAutoscalerEdgeCases:
    def test_zero_arrival_rate_holds_floor(self, env):
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor, min_replicas=2)
        assert scaler.recommend("inception", 0.0) == 2
        assert Autoscaler(testbed.parsl_executor).recommend("inception", 0.0) == 1

    def test_saturation_knee_equality(self, env):
        """A rate whose demand lands exactly on the knee is served at the
        knee — neither clamped below it nor pushed past it."""
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor)
        knee = scaler.saturation_replicas("inception")
        rate = knee / scaler.task_cost("inception")
        assert math.ceil(rate * scaler.task_cost("inception")) == knee
        assert scaler.recommend("inception", rate) == knee
        # Pushing demand past the knee still returns the knee.
        assert scaler.recommend("inception", rate * 2) == knee

    def test_max_replicas_clamps_below_saturation(self, env):
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor, max_replicas=3)
        assert scaler.saturation_replicas("inception") > 3
        assert scaler.recommend("inception", 1e6) == 3

    def test_task_cost_is_public(self, env):
        testbed, _ = env
        scaler = Autoscaler(testbed.parsl_executor)
        expected = cal.SERVABLE_SHIM_S + cal.inference_cost("inception")
        assert scaler.task_cost("inception") == pytest.approx(expected)


class TestExecutorAccessors:
    def test_deployed_servables_and_get_servable(self, env):
        testbed, zoo = env
        executor = testbed.parsl_executor
        assert set(executor.deployed_servables()) == {
            "noop",
            "matminer_featurize",
            "inception",
        }
        assert executor.get_servable("noop") is zoo["noop"]

    def test_get_servable_unknown_raises(self, env):
        from repro.core.executors import ExecutorError

        testbed, _ = env
        with pytest.raises(ExecutorError):
            testbed.parsl_executor.get_servable("ghost")
