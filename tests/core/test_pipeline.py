"""Unit tests for pipeline definitions."""

import pytest

from repro.core.pipeline import Pipeline, PipelineError, PipelineStep


class TestDefinition:
    def test_fluent_build(self):
        pipeline = Pipeline("p").add_step("a").add_step("b", adapter=lambda x: [x])
        assert pipeline.step_names == ["a", "b"]
        assert len(pipeline) == 2
        assert pipeline.steps[1].adapter(1) == [1]

    def test_name_required(self):
        with pytest.raises(PipelineError):
            Pipeline("")

    def test_validate_empty(self):
        with pytest.raises(PipelineError):
            Pipeline("p").validate()

    def test_validate_empty_step_name(self):
        pipeline = Pipeline("p")
        pipeline.steps.append(PipelineStep(""))
        with pytest.raises(PipelineError):
            pipeline.validate()

    def test_steps_are_frozen(self):
        step = PipelineStep("a")
        with pytest.raises(AttributeError):
            step.servable_name = "b"  # type: ignore[misc]

    def test_repeated_servables_allowed(self):
        """A pipeline may legitimately call the same servable twice."""
        pipeline = Pipeline("p").add_step("a").add_step("a")
        pipeline.validate()
        assert pipeline.step_names == ["a", "a"]
