"""Memo-cache warming: rebalancing keeps the ~1 ms memoized path hot.

``ServingRuntime.add_copy`` (used by placements, scale-out, and fleet
migration alike) copies the richest donor's memo entries for the
servable onto the new host, so the Fig. 4 cache hits survive
rebalancing instead of cold-starting on every placement change.
"""

import pytest

from repro.core.memo import MemoCache
from repro.core.runtime import ServingRuntime
from repro.core.tasks import TaskRequest
from repro.core.testbed import build_testbed
from repro.core.zoo import build_zoo
from repro.sim.clock import VirtualClock


@pytest.fixture()
def fleet():
    testbed = build_testbed(jitter=False, memoize_tm=True)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    workers = [testbed.add_fleet_worker(f"w{i}") for i in range(3)]
    runtime = ServingRuntime(
        testbed.clock, testbed.management.queue, workers, max_batch_size=8
    )
    published = testbed.management.publish(testbed.token, zoo["noop"])
    runtime.place(zoo["noop"], published.build.image, copies=1)
    return testbed, runtime, workers


class TestMemoCacheExportAbsorb:
    def test_export_filters_by_servable(self):
        cache = MemoCache(VirtualClock())
        cache.store(("a", (1,), ()), "ra")
        cache.store(("a", (2,), ()), "ra2")
        cache.store(("b", (1,), ()), "rb")
        assert len(cache.export_entries("a")) == 2
        assert len(cache.export_entries("b")) == 1
        assert len(cache.export_entries()) == 3

    def test_absorb_round_trips_and_respects_capacity(self):
        source = MemoCache(VirtualClock())
        for i in range(6):
            source.store(("s", (i,), ()), i * 10)
        target = MemoCache(VirtualClock(), max_entries=4)
        copied = target.absorb(source.export_entries("s"))
        assert copied == 6
        assert len(target) == 4  # LRU-evicted down to capacity
        assert target.evictions == 2
        # The newest absorbed entries survived and hit.
        assert target.lookup(("s", (5,), ())) == 50

    def test_absorb_overwrites_in_place(self):
        a = MemoCache(VirtualClock())
        a.store(("s", (1,), ()), "old")
        b = MemoCache(VirtualClock())
        b.store(("s", (1,), ()), "new")
        a.absorb(b.export_entries("s"))
        assert a.lookup(("s", (1,), ())) == "new"


class TestAddCopyWarming:
    def warm_host(self, runtime, value=41):
        host = runtime.hosts("noop")[0]
        result = host.process(TaskRequest("noop", args=(value,)))
        assert result.ok and not result.cache_hit
        return host

    def test_new_copy_serves_warmed_entries_as_hits(self, fleet):
        testbed, runtime, workers = fleet
        self.warm_host(runtime)
        target = next(w for w in workers if w not in runtime.hosts("noop"))
        runtime.add_copy("noop", target)
        assert runtime.memo_entries_warmed >= 1
        hit = target.process(TaskRequest("noop", args=(41,)))
        assert hit.ok and hit.cache_hit
        assert hit.inference_time == 0.0

    def test_down_donor_still_warms_a_migration_target(self, fleet):
        """Migration off a crashed host is exactly when warming matters:
        the dead worker's cache survived (paper TMs restart near the
        same compute) and ships to the replacement."""
        testbed, runtime, workers = fleet
        donor = self.warm_host(runtime)
        donor.crash()
        runtime.mark_down(donor.name)
        target = next(w for w in workers if w.name != donor.name)
        runtime.add_copy("noop", target)
        hit = target.process(TaskRequest("noop", args=(41,)))
        assert hit.cache_hit

    def test_richest_live_donor_preferred(self, fleet):
        testbed, runtime, workers = fleet
        first = self.warm_host(runtime)
        second = next(w for w in workers if w.name != first.name)
        runtime.add_copy("noop", second)
        # Make the second copy richer, then crash the first.
        for value in (1, 2, 3):
            second.process(TaskRequest("noop", args=(value,)))
        third = next(
            w for w in workers if w.name not in (first.name, second.name)
        )
        runtime.add_copy("noop", third)
        # The third host got the richer (live) donor's entries.
        for value in (1, 2, 3):
            assert third.process(TaskRequest("noop", args=(value,))).cache_hit

    def test_memoize_off_target_is_not_warmed(self):
        testbed = build_testbed(jitter=False, memoize_tm=True)
        zoo = build_zoo(oqmd_entries=50, n_estimators=4)
        warm_worker = testbed.add_fleet_worker("warm", memoize=True)
        cold_worker = testbed.add_fleet_worker("cold", memoize=False)
        runtime = ServingRuntime(
            testbed.clock, testbed.management.queue, [warm_worker, cold_worker]
        )
        published = testbed.management.publish(testbed.token, zoo["noop"])
        runtime.place(zoo["noop"], published.build.image, copies=1)
        host = runtime.hosts("noop")[0]
        assert host is warm_worker  # placement order is deterministic
        host.process(TaskRequest("noop", args=(9,)))
        runtime.add_copy("noop", cold_worker)
        assert runtime.memo_entries_warmed == 0
        assert len(cold_worker.cache) == 0


class TestControllerMigrationWarming:
    def test_crash_migration_keeps_cache_hits(self):
        from repro.core.fleet import FleetController

        testbed = build_testbed(jitter=False, memoize_tm=True)
        zoo = build_zoo(oqmd_entries=50, n_estimators=4)
        workers = [testbed.add_fleet_worker(f"w{i}") for i in range(2)]
        runtime = ServingRuntime(testbed.clock, testbed.management.queue, workers)
        published = testbed.management.publish(testbed.token, zoo["noop"])
        runtime.place(zoo["noop"], published.build.image, copies=1)
        controller = FleetController(
            runtime, interval_s=0.1, autoscale_replicas=False
        )
        host = runtime.hosts("noop")[0]
        host.process(TaskRequest("noop", args=(7,)))
        host.crash()
        testbed.clock.advance(0.2)
        controller.reconcile()
        migrated = [e for e in controller.events if e.kind == "servable_migrated"]
        assert migrated
        new_host = runtime.worker(migrated[0].detail["target"])
        assert new_host.process(TaskRequest("noop", args=(7,))).cache_hit
