"""Unit tests for task envelopes and the async task store."""

import pytest

from repro.core.tasks import TaskRequest, TaskResult, TaskStatus, TaskStore


class TestTaskRequest:
    def test_uuid_unique(self):
        a = TaskRequest("m")
        b = TaskRequest("m")
        assert a.task_uuid != b.task_uuid
        assert b.sequence > a.sequence

    def test_input_signature_stable(self):
        a = TaskRequest("m", args=(1, 2), kwargs={"k": 3})
        b = TaskRequest("m", args=(1, 2), kwargs={"k": 3})
        assert a.input_signature() == b.input_signature()

    def test_signature_differs_by_inputs(self):
        assert (
            TaskRequest("m", args=(1,)).input_signature()
            != TaskRequest("m", args=(2,)).input_signature()
        )
        assert (
            TaskRequest("m", args=(1,)).input_signature()
            != TaskRequest("other", args=(1,)).input_signature()
        )

    def test_batch_flag(self):
        assert TaskRequest("m", batch=[1, 2]).is_batch
        assert not TaskRequest("m").is_batch


class TestTaskResult:
    def test_ok(self):
        assert TaskResult("u", TaskStatus.SUCCEEDED).ok
        assert not TaskResult("u", TaskStatus.FAILED, error="x").ok


class TestTaskStore:
    def test_lifecycle(self):
        store = TaskStore()
        store.create("t1")
        assert store.status("t1") is TaskStatus.PENDING
        store.mark_running("t1")
        assert store.status("t1") is TaskStatus.RUNNING
        store.complete(TaskResult("t1", TaskStatus.SUCCEEDED, value=42))
        assert store.status("t1") is TaskStatus.SUCCEEDED
        assert store.result("t1").value == 42

    def test_unknown_task(self):
        store = TaskStore()
        with pytest.raises(KeyError):
            store.status("ghost")
        with pytest.raises(KeyError):
            store.result("ghost")
        with pytest.raises(KeyError):
            store.mark_running("ghost")

    def test_result_before_completion(self):
        store = TaskStore()
        store.create("t1")
        with pytest.raises(KeyError):
            store.result("t1")

    def test_failed_result_stored(self):
        store = TaskStore()
        store.create("t1")
        store.complete(TaskResult("t1", TaskStatus.FAILED, error="boom"))
        assert store.status("t1") is TaskStatus.FAILED
        assert store.result("t1").error == "boom"

    def test_len(self):
        store = TaskStore()
        store.create("a")
        store.create("b")
        assert len(store) == 2


class TestBatchItemNormalization:
    def test_pair_form_carries_kwargs(self):
        from repro.core.tasks import normalize_batch_item

        assert normalize_batch_item(((1, 2), {"k": 3})) == ((1, 2), {"k": 3})

    def test_tuple_form_is_positional_args(self):
        from repro.core.tasks import normalize_batch_item

        assert normalize_batch_item((1, 2, 3)) == ((1, 2, 3), {})

    def test_scalar_form_wraps_single_argument(self):
        from repro.core.tasks import normalize_batch_item

        assert normalize_batch_item("NaCl") == (("NaCl",), {})
        assert normalize_batch_item([1, 2]) == (([1, 2],), {})

    def test_item_signature_matches_single_request_signature(self):
        single = TaskRequest("m", args=(1, 2), kwargs={"k": 3})
        batch = TaskRequest("m", batch=[((1, 2), {"k": 3})])
        assert batch.item_signature(batch.batch[0]) == single.input_signature()
