"""Unit tests for multi-servable containers."""

import numpy as np
import pytest

from repro.core.multiservable import MultiServableError, combine_servables, member_names
from repro.core.zoo import build_zoo, sample_input


@pytest.fixture(scope="module")
def zoo():
    return build_zoo(oqmd_entries=50, n_estimators=4)


@pytest.fixture(scope="module")
def combined(zoo):
    return combine_servables(
        "matminer_suite",
        [zoo["matminer_util"], zoo["matminer_featurize"], zoo["matminer_model"]],
    )


class TestCombination:
    def test_dispatch_by_member_name(self, combined, zoo):
        fractions = combined.run("matminer_util", "NaCl")
        assert fractions == zoo["matminer_util"].run("NaCl")
        features = combined.run("matminer_featurize", fractions)
        assert np.allclose(features, zoo["matminer_featurize"].run(fractions))

    def test_unknown_member_rejected(self, combined):
        with pytest.raises(MultiServableError, match="no member"):
            combined.run("ghost_member", 1)

    def test_member_names(self, combined):
        assert member_names(combined) == [
            "matminer_util",
            "matminer_featurize",
            "matminer_model",
        ]

    def test_plain_servable_has_no_members(self, zoo):
        with pytest.raises(MultiServableError):
            member_names(zoo["noop"])

    def test_components_merged_with_prefixes(self, combined):
        assert "matminer_model/estimator.pkl" in combined.components

    def test_dependencies_unioned(self, combined, zoo):
        for member in ("matminer_util", "matminer_featurize"):
            for dep in zoo[member].dependencies:
                assert dep in combined.dependencies

    def test_cost_key_is_costliest_member(self, combined, zoo):
        costs = {
            name: zoo[name].inference_cost_s
            for name in ("matminer_util", "matminer_featurize", "matminer_model")
        }
        costliest = max(costs, key=costs.get)
        assert combined.key == zoo[costliest].key

    def test_validation(self, zoo):
        with pytest.raises(MultiServableError):
            combine_servables("empty", [])
        with pytest.raises(MultiServableError, match="duplicate"):
            combine_servables("dup", [zoo["noop"], zoo["noop"]])


class TestDeployment:
    def test_one_image_serves_all_members(self, zoo, combined):
        """The consolidation win: one image, one deployment, k models."""
        from repro.core.testbed import build_testbed

        testbed = build_testbed(jitter=False)
        images_before = len(testbed.registry.repositories())
        testbed.publish_and_deploy(combined, replicas=2)
        assert len(testbed.registry.repositories()) == images_before + 1

        result = testbed.management.run(
            testbed.token, "matminer_suite", "matminer_util", "SiO2"
        )
        assert result.ok
        assert result.value == zoo["matminer_util"].run("SiO2")

        # The same deployment answers for a different member.
        features = sample_input("matminer_model")[0]
        result2 = testbed.management.run(
            testbed.token, "matminer_suite", "matminer_model", features
        )
        assert result2.ok
        assert isinstance(result2.value, float)
