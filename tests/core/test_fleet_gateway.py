"""Fleet controller x serving gateway: tenant-aware demand signals.

With a gateway attached, the controller reads *admitted* arrival
counters (offered load the WFQ throttle hasn't released yet), folds
lane-held backlog into queue depth, and weights per-tenant rates so
scale-up respects tenant weights. Also covers the dropped idle-only
restriction on replica scaling (parallel pod scale-up satellite).
"""

import math

import pytest

from repro.core.fleet import (
    FleetController,
    QueueLatencySLOPolicy,
    ServableDemand,
    TargetUtilizationPolicy,
)
from repro.core.runtime import ServingRuntime
from repro.core.tasks import TaskRequest
from repro.core.testbed import build_testbed
from repro.core.zoo import build_zoo, sample_input
from repro.gateway import ServingGateway, TenantPolicy, TenantPolicyTable


def build_gateway_fleet(weights=("heavy", 4.0, "light", 1.0), n_workers=2):
    testbed = build_testbed(jitter=False, memoize_tm=False)
    zoo = build_zoo(oqmd_entries=50, n_estimators=4)
    workers = [testbed.add_fleet_worker(f"w{i}") for i in range(n_workers)]
    runtime = ServingRuntime(
        testbed.clock,
        testbed.management.queue,
        workers,
        max_batch_size=8,
        max_coalesce_delay_s=0.005,
    )
    published = testbed.management.publish(testbed.token, zoo["noop"])
    runtime.place(zoo["noop"], published.build.image)
    policies = TenantPolicyTable()
    tokens = {}
    for name, weight in zip(weights[::2], weights[1::2]):
        policies.register(TenantPolicy(name=name, weight=weight))
        identity, token = testbed.new_user(f"{name}_user")
        policies.bind_identity(identity, name)
        tokens[name] = token
    gateway = ServingGateway(testbed.auth, runtime, policies)
    return testbed, runtime, gateway, tokens


class TestEffectiveRate:
    def test_falls_back_to_raw_rate(self):
        demand = ServableDemand(
            name="s",
            queue_depth=0,
            arrival_rate_rps=50.0,
            live_copies=1,
            per_copy_capacity_rps=100.0,
            recent_p95_queue_wait_s=None,
        )
        assert demand.effective_rate_rps == 50.0

    def test_weighted_rate_wins_when_present(self):
        demand = ServableDemand(
            name="s",
            queue_depth=0,
            arrival_rate_rps=50.0,
            live_copies=1,
            per_copy_capacity_rps=100.0,
            recent_p95_queue_wait_s=None,
            weighted_arrival_rate_rps=80.0,
            tenant_rates=(("a", 30.0), ("b", 20.0)),
        )
        assert demand.effective_rate_rps == 80.0

    def test_policies_plan_on_the_effective_rate(self):
        base = dict(
            name="s",
            queue_depth=0,
            arrival_rate_rps=10.0,
            live_copies=1,
            per_copy_capacity_rps=100.0,
            recent_p95_queue_wait_s=None,
        )
        obs_kwargs = dict(
            time=0.0,
            routable_workers=4,
            draining_workers=0,
            min_workers=1,
            max_workers=4,
        )
        from repro.core.fleet import FleetObservation

        weighted = FleetObservation(
            demands=(
                ServableDemand(**base, weighted_arrival_rate_rps=300.0),
            ),
            **obs_kwargs,
        )
        raw = FleetObservation(demands=(ServableDemand(**base),), **obs_kwargs)
        for policy in (TargetUtilizationPolicy(), QueueLatencySLOPolicy()):
            assert policy.plan(weighted).copies["s"] > policy.plan(raw).copies["s"]


class TestGatewayObservation:
    def test_observe_reads_admitted_counts_and_lane_backlog(self):
        testbed, runtime, gateway, tokens = build_gateway_fleet()
        controller = FleetController(
            runtime,
            gateway=gateway,
            interval_s=0.25,
            autoscale_replicas=False,
            ewma_alpha=1.0,
        )
        controller.observe()  # baseline the counters
        # 60 heavy + 20 light admissions in one virtual second; throttle
        # the pump hard so most requests sit in lanes, invisible to the
        # queue but not to the controller.
        gateway.max_dispatch_slots = 4
        identity = {
            t: testbed.auth.tokens.introspect(tok).identity
            for t, tok in tokens.items()
        }
        for _ in range(60):
            gateway.offer(TaskRequest("noop", args=(1,)), identity=identity["heavy"])
        for _ in range(20):
            gateway.offer(TaskRequest("noop", args=(2,)), identity=identity["light"])
        testbed.clock.advance(1.0)
        observation = controller.observe()
        demand = observation.demands[0]
        # Raw rate comes from admitted counters (80 over 1 s)...
        assert demand.arrival_rate_rps == pytest.approx(80.0)
        # ...the lane-held backlog counts as queue depth...
        assert demand.queue_depth >= gateway.queued_count("noop") > 0
        # ...and the weighted rate amplifies the heavy tenant:
        # mean weight (4+1)/2 = 2.5 -> 60*4/2.5 + 20*1/2.5 = 104.
        assert demand.weighted_arrival_rate_rps == pytest.approx(104.0)
        assert dict(demand.tenant_rates) == pytest.approx(
            {"heavy": 60.0, "light": 20.0}
        )

    def test_equal_weights_leave_rate_unchanged(self):
        testbed, runtime, gateway, tokens = build_gateway_fleet(
            weights=("a", 1.0, "b", 1.0)
        )
        controller = FleetController(
            runtime,
            gateway=gateway,
            interval_s=0.25,
            autoscale_replicas=False,
            ewma_alpha=1.0,
        )
        controller.observe()
        identity = {
            t: testbed.auth.tokens.introspect(tok).identity
            for t, tok in tokens.items()
        }
        for _ in range(30):
            gateway.offer(TaskRequest("noop", args=(1,)), identity=identity["a"])
        testbed.clock.advance(1.0)
        demand = controller.observe().demands[0]
        assert demand.weighted_arrival_rate_rps == pytest.approx(
            demand.arrival_rate_rps
        )


class TestServeHealsAroundCrash:
    def test_lane_work_survives_sole_host_crash_via_controller(self):
        """A crash of the only host while admitted work sits in tenant
        lanes must not kill serve(): the attached controller migrates
        the servable at its next reconcile and the loop resumes
        (regression — serve used to raise before consulting the
        controller's wakeup)."""
        testbed, runtime, gateway, tokens = build_gateway_fleet(
            weights=("lab", 1.0), n_workers=2
        )
        controller = FleetController(
            runtime, gateway=gateway, interval_s=0.25, autoscale_replicas=False
        )
        host = runtime.hosts("noop")[0]
        arrivals = [
            (i / 200.0, tokens["lab"], TaskRequest("noop", args=(i,)))
            for i in range(20)
        ]
        # Crash the sole host mid-schedule: requests admitted after the
        # crash pile up in lanes with no routable copy.
        arrivals_with_crash = arrivals[:5] + arrivals[5:]
        host.crash()
        results = gateway.serve(arrivals_with_crash)
        assert len(results) == 20
        assert all(r.admitted and r.ok for r in results)
        migrated = [e for e in controller.events if e.kind == "servable_migrated"]
        assert migrated and migrated[0].subject == "noop"


class TestBusyWorkerReplicaScaling:
    def test_replicas_scale_on_a_busy_worker(self):
        """The idle-only restriction is gone: a worker mid-batch still
        gets its pods scaled (cold starts are charged as one concurrent
        start, not per pod)."""
        from repro.sim import calibration as cal

        testbed = build_testbed(jitter=False, memoize_tm=False)
        zoo = build_zoo(oqmd_entries=50, n_estimators=4)
        worker = testbed.add_fleet_worker("w0")
        runtime = ServingRuntime(
            testbed.clock, testbed.management.queue, [worker], max_batch_size=16
        )
        published = testbed.management.publish(testbed.token, zoo["inception"])
        runtime.place(zoo["inception"], published.build.image)
        controller = FleetController(
            runtime,
            interval_s=0.25,
            autoscale_replicas=True,
            max_replicas_per_host=4,
            ewma_alpha=1.0,
        )
        controller.observe()
        for _ in range(100):
            runtime.submit(
                TaskRequest("inception", args=sample_input("inception"))
            )
        testbed.clock.advance(1.0)
        # Make the worker busy: its own clock runs ahead of global time.
        worker.clock.advance(5.0)
        assert runtime.free_at(worker) > testbed.clock.now()
        controller.reconcile()
        events = controller.events_of("replicas_scaled")
        assert events and events[0].subject == "inception"
        executor = worker.route("inception")[1]
        expected = min(
            math.ceil(
                100.0 * (cal.SERVABLE_SHIM_S + cal.inference_cost("inception"))
            ),
            4,
        )
        assert executor.replicas("inception") == expected
        runtime.drain()
