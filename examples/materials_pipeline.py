"""SS VI-D — predicting formation enthalpy with a served pipeline.

Reproduces the paper's flagship workflow: a three-step pipeline
(composition parsing -> Ward featurization -> random-forest prediction)
registered as one unit, so the end user sends ``"SiO2"`` and receives a
formation enthalpy — all intermediates stay server-side.

Also demonstrates the uncertainty-quantification step the paper's
workflow discussion motivates (forest across-tree spread).

Run with::

    python examples/materials_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import DLHubClient, build_testbed, build_zoo
from repro.core.pipeline import Pipeline
from repro.matsci.featurize import MagpieFeaturizer
from repro.matsci.oqmd import generate_oqmd_dataset, train_test_split


def main() -> None:
    testbed = build_testbed(username="logan")
    zoo = build_zoo(oqmd_entries=300, n_estimators=16, max_depth=12)
    client = DLHubClient(testbed.management, testbed.token)

    # Publish + deploy the three pipeline stages.
    for name in ("matminer_util", "matminer_featurize", "matminer_model"):
        testbed.publish_and_deploy(zoo[name], replicas=1)

    # Verify the served model is real: held-out R^2 on synthetic OQMD.
    featurizer = MagpieFeaturizer()
    dataset = generate_oqmd_dataset(300, seed=42)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=1)
    x_test = featurizer.featurize_many([e.composition for e in test])
    y_test = np.array([e.formation_energy for e in test])
    r2 = zoo.forest.score(x_test, y_test)
    print(f"served forest held-out R^2 = {r2:.3f} ({len(test)} compounds)")

    # Register the pipeline; the user-facing interface is one string in,
    # one number out.
    pipeline = (
        Pipeline(
            "formation_enthalpy",
            description="composition string -> pymatgen-like parse -> "
            "matminer-like features -> random forest prediction",
        )
        .add_step("matminer_util")
        .add_step("matminer_featurize")
        .add_step("matminer_model")
    )
    client.register_pipeline(pipeline)

    print("\ncomposition -> predicted formation enthalpy (eV/atom):")
    for formula in ("SiO2", "NaCl", "Fe2O3", "MgO", "TiC", "Ba(NO3)2"):
        value = client.run_pipeline("formation_enthalpy", formula)
        print(f"  {formula:10s} {value:+.3f}")

    # The pipeline runs entirely server-side: compare its request time to
    # three separate client round-trips.
    detailed = testbed.management.run_pipeline(testbed.token, "formation_enthalpy", "SiO2")
    three_hops = sum(
        client.run_detailed(step, *args).request_time
        for step, args in (
            ("matminer_util", ("SiO2",)),
            ("matminer_featurize", ({"Si": 1 / 3, "O": 2 / 3},)),
            ("matminer_model", (featurizer.featurize("SiO2"),)),
        )
    )
    print(
        f"\npipeline request time {detailed.request_time * 1e3:.1f} ms vs "
        f"{three_hops * 1e3:.1f} ms for three separate requests "
        f"({three_hops / detailed.request_time:.2f}x saved by server-side chaining)"
    )

    # Uncertainty quantification on top of the same features.
    feats = featurizer.featurize("SiO2")
    std = float(zoo.forest.predict_std(np.atleast_2d(feats))[0])
    print(f"UQ: across-tree std for SiO2 = {std:.3f} eV/atom")


if __name__ == "__main__":
    main()
