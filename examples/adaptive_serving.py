"""Extensions walkthrough: adaptive batching + replica autoscaling (SS VII).

The paper closes with two optimization directions: adaptive batching
driven by servable profiles (after Fig. 6) and "automated tuning of
servable execution" (after Fig. 7). Both are implemented in
``repro.core.adaptive``; this example exercises them against a live
deployment.

Run with::

    python examples/adaptive_serving.py
"""

from __future__ import annotations

from repro import build_testbed, build_zoo, sample_input
from repro.core.adaptive import AdaptiveBatcher, Autoscaler


def main() -> None:
    testbed = build_testbed(memoize_tm=False, username="ops_team")
    zoo = build_zoo(oqmd_entries=120, n_estimators=8)
    for name in ("matminer_featurize", "inception"):
        testbed.publish_and_deploy(zoo[name], replicas=1)
    executor = testbed.parsl_executor

    # --- adaptive batching ----------------------------------------------------
    print("adaptive batching (latency budget 60 ms per batch):")
    batcher = AdaptiveBatcher(
        executor, "matminer_featurize", latency_budget_s=0.060, bootstrap_batch=4
    )
    workload = [sample_input("matminer_featurize")] * 120
    outputs = batcher.run(workload)
    print(f"  served {len(outputs)} requests in {len(batcher.decisions)} batches")
    for decision in batcher.decisions[:6]:
        predicted = (
            f"{decision.predicted_time_s * 1e3:6.1f}"
            if decision.predicted_time_s == decision.predicted_time_s
            else "  n/a"
        )
        print(
            f"  batch={decision.batch_size:<4} predicted={predicted} ms "
            f"actual={decision.actual_time_s * 1e3:6.1f} ms"
        )
    intercept, slope = batcher.profile.fit()
    print(
        f"  learned profile: {intercept * 1e3:.2f} ms + {slope * 1e3:.3f} ms/item "
        f"-> budgeted batch size {batcher.profile.max_batch_for_latency(0.060)}"
    )

    # --- autoscaling ------------------------------------------------------------
    print("\nautoscaling inception for rising arrival rates:")
    scaler = Autoscaler(executor)
    for rate in (10, 50, 150, 400, 5000):
        decision = scaler.autoscale("inception", float(rate))
        print(
            f"  {rate:>5} req/s -> {decision.recommended_replicas:>2} replicas "
            f"(dispatch bound {decision.dispatch_bound_rps:.0f} req/s)"
        )
    knee = scaler.saturation_replicas("inception")
    print(f"  saturation knee: {knee} replicas — matches Fig. 7's ~15 for Inception")

    # Demonstrate the scaled deployment sustaining its target rate.
    rate = 150.0
    scaler.autoscale("inception", rate)
    n = 600
    makespan = executor.submit_stream("inception", [sample_input("inception")] * n)
    print(
        f"\nvalidation: {n} inferences at {n / makespan:.0f} req/s with "
        f"{executor.replicas('inception')} replicas (target {rate:.0f} req/s)"
    )


if __name__ == "__main__":
    main()
