"""SS VI-C — X-ray microtomography: near-real-time center finding plus
batch segmentation.

The APS brain-imaging group serves two models from DLHub: a
*center-finding* model scores candidate reconstruction centers while the
instrument runs (latency-critical, invoked per slice), and a
*segmentation* model post-processes reconstructed volumes in batch.

This example reproduces both modes against one deployment:

* streaming: 24 slices scored one by one, each under the paper's 40 ms
  model-serving envelope (virtual time),
* batch: a full reconstructed stack segmented via one batched task,
  amortizing dispatch overheads (the Fig. 5 effect, applied).

Run with::

    python examples/tomography_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import DLHubClient, build_testbed
from repro.core.servable import PythonFunctionServable
from repro.core.toolbox import MetadataBuilder


def make_center_finder():
    """Scores a sinogram slice's reconstruction quality.

    Real deployments use a CNN; the substitution is a sharpness metric
    (gradient energy), which preserves the serving pattern: image in,
    scalar quality out, highest score picks the center slice.
    """

    def score_slice(sinogram: np.ndarray) -> float:
        arr = np.asarray(sinogram, dtype=np.float64)
        gy, gx = np.gradient(arr)
        return float(np.mean(gy**2 + gx**2))

    metadata = (
        MetadataBuilder("center_finder", "Tomography center-finding scorer")
        .creator("APS Imaging Group")
        .description("Scores candidate rotation-center slices during reconstruction")
        .model_type("python_function")
        .input_type("image")
        .output_type("number")
        .domain("neuroanatomy")
        .build()
    )
    return PythonFunctionServable(metadata, score_slice, key="cifar10")


def make_segmenter():
    """Cell segmentation by adaptive thresholding + connected labeling."""

    def segment(image: np.ndarray) -> dict:
        arr = np.asarray(image, dtype=np.float64)
        threshold = arr.mean() + arr.std()
        mask = arr > threshold
        # 4-neighbour connected components via two-pass label propagation.
        labels = np.zeros(arr.shape, dtype=np.int64)
        next_label = 0
        for i in range(arr.shape[0]):
            for j in range(arr.shape[1]):
                if not mask[i, j]:
                    continue
                up = labels[i - 1, j] if i > 0 and mask[i - 1, j] else 0
                left = labels[i, j - 1] if j > 0 and mask[i, j - 1] else 0
                if up == 0 and left == 0:
                    next_label += 1
                    labels[i, j] = next_label
                else:
                    labels[i, j] = min(x for x in (up, left) if x > 0)
        cells = len(np.unique(labels)) - 1
        return {"cell_count": int(cells), "foreground_fraction": float(mask.mean())}

    metadata = (
        MetadataBuilder("cell_segmenter", "Brain-tissue cell segmentation")
        .creator("APS Imaging Group")
        .description("Segments cells in reconstructed microtomography images")
        .model_type("python_function")
        .input_type("image")
        .output_type("dict")
        .domain("neuroanatomy")
        .build()
    )
    return PythonFunctionServable(metadata, segment, key="matminer_featurize")


def main() -> None:
    testbed = build_testbed(username="aps_beamline")
    client = DLHubClient(testbed.management, testbed.token)
    testbed.publish_and_deploy(make_center_finder(), replicas=2)
    testbed.publish_and_deploy(make_segmenter(), replicas=4)

    rng = np.random.default_rng(7)

    # --- streaming mode: score candidate centers as slices arrive -------------
    print("streaming center finding (one request per slice):")
    best_score, best_slice = -1.0, -1
    latencies = []
    for slice_idx in range(24):
        # Synthetic sinogram: sharpest at the true center (slice 13).
        sharpness = 1.0 / (1.0 + abs(slice_idx - 13))
        sinogram = rng.normal(size=(64, 64)) + sharpness * np.sin(
            np.linspace(0, 12 * np.pi, 64 * 64)
        ).reshape(64, 64) * 8.0
        result = client.run_detailed("center_finder", sinogram)
        latencies.append(result.invocation_time * 1e3)
        if result.value > best_score:
            best_score, best_slice = result.value, slice_idx
    print(f"  best center: slice {best_slice} (expected 13)")
    print(
        f"  invocation latency: median {np.median(latencies):.1f} ms, "
        f"max {max(latencies):.1f} ms (target: < 40 ms for near-real-time)"
    )
    assert best_slice == 13

    # --- batch mode: segment the reconstructed stack --------------------------
    stack = [
        (rng.random((24, 24)) + (i % 3) * 0.2,) for i in range(32)
    ]
    batch = testbed.management.run_batch(testbed.token, "cell_segmenter", stack)
    counts = [r["cell_count"] for r in batch.value]
    print(
        f"\nbatch segmentation: {len(counts)} images in one task, "
        f"invocation {batch.invocation_time * 1e3:.1f} ms total "
        f"({batch.invocation_time * 1e3 / len(counts):.2f} ms/image amortized)"
    )
    print(f"  cell counts: min={min(counts)}, max={max(counts)}")


if __name__ == "__main__":
    main()
