"""HPC serving via Singularity and a batch scheduler (SS II / SS IV-B).

"Researchers often want to use multiple (often heterogeneous) parallel
and distributed computing resources" — DLHub's Task Manager can deploy
servables to HPC machines via Singularity, where Clipper's
privileged-Docker requirement rules it out entirely (SS III-B4).

This example:

1. publishes a servable and builds its Docker image as usual,
2. converts it to a Singularity image and runs it through a Cobalt-style
   batch queue on an HPC resource (queue wait, multi-node job, release),
3. demonstrates that Clipper refuses to deploy on the same unprivileged
   nodes — the structural contrast the paper draws.

Run with::

    python examples/hpc_singularity.py
"""

from __future__ import annotations

import numpy as np

from repro import build_testbed, build_zoo
from repro.cluster.hpc import HPCResource
from repro.serving.base import ModelSpec
from repro.serving.clipper import ClipperBackend, PrivilegeError


def main() -> None:
    testbed = build_testbed(username="hpc_scientist")
    zoo = build_zoo(oqmd_entries=120, n_estimators=8)

    # Publish through the normal repository path; the build result is the
    # Docker image a Kubernetes deployment would use.
    published = testbed.publish_and_deploy(zoo["matminer_featurize"])
    image = published.build.image
    print(f"published {published.full_name}; Docker image {image.reference} "
          f"({image.size / 1e6:.0f} MB)")

    # --- run it on an HPC machine instead ---------------------------------------
    hpc = HPCResource(testbed.clock, name="theta", total_nodes=64)
    job = hpc.submit(image, nodes=4)
    print(
        f"batch job {job.job_id}: {job.nodes_requested} nodes, "
        f"queue wait {job.queue_wait:.0f}s (virtual), state={job.state.value}"
    )

    # Fan a featurization workload across the job's Singularity instances.
    formulas = ["NaCl", "SiO2", "MgO", "Fe2O3", "TiC", "CaO", "ZnS", "KBr"]
    fractions = [zoo["matminer_util"].run(f) for f in formulas]
    features = [
        hpc.exec(job, i, fractions[i % len(fractions)])
        for i in range(len(fractions))
    ]
    matrix = np.vstack(features)
    print(f"featurized {matrix.shape[0]} compounds x {matrix.shape[1]} features "
          "on HPC Singularity instances")

    # Outputs agree with the locally-run servable (same packaged handler).
    local = zoo["matminer_featurize"].run(fractions[0])
    assert np.allclose(matrix[0], local)
    print("HPC outputs match local execution: OK")

    hpc.release(job)
    print(f"job released; {hpc.free_nodes}/{hpc.total_nodes} nodes free")

    # --- the Clipper contrast ----------------------------------------------------
    for node in testbed.cluster.nodes:
        node.runtime.privileged = False  # HPC-style policy: no privileged Docker
    clipper = ClipperBackend(
        testbed.clock,
        testbed.cluster,
        testbed.latency.task_manager_to_cluster,
    )
    spec = ModelSpec.from_calibration(
        "featurize", "matminer_featurize", zoo["matminer_featurize"].handler
    )
    try:
        clipper.deploy(spec)
        raise SystemExit("BUG: Clipper should not deploy unprivileged")
    except PrivilegeError as exc:
        print(f"Clipper on the same nodes: {exc}")

    # The Parsl+Singularity path needs no privilege at all.
    print("DLHub's Singularity path served the same model unprivileged — "
          "the SS III-B4 distinction, reproduced.")


if __name__ == "__main__":
    main()
