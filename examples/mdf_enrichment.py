"""SS VI-B — MDF: automatic dataset enrichment with published models.

The Materials Data Facility triggers DLHub models when new datasets are
ingested: the dataset's fine-grained type information is matched against
each published model's declared ``input_type``, applicable models run
automatically, and their outputs become new metadata on the dataset.

This example reproduces that automation: an ingest hook selects models by
input type (via the search index — the descriptive schemas are what make
the matching possible) and enriches three incoming datasets.

Run with::

    python examples/mdf_enrichment.py
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro import DLHubClient, build_testbed, build_zoo


@dataclass
class MDFDataset:
    """A dataset as MDF sees it: records plus extracted type info."""

    name: str
    input_type: str  # fine-grained type MDF extracted from the data
    records: list[Any]
    enrichments: dict[str, list[Any]] = field(default_factory=dict)


class MDFIngestHook:
    """The automated workflow MDF runs on dataset registration."""

    def __init__(self, client: DLHubClient) -> None:
        self.client = client

    def applicable_models(self, dataset: MDFDataset) -> list[str]:
        """Match dataset type info against published models' input types."""
        hits = self.client.search(f"dlhub.input_type:{dataset.input_type}")
        return [hit.source["dlhub"]["name"] for hit in hits.hits]

    def ingest(self, dataset: MDFDataset) -> MDFDataset:
        models = self.applicable_models(dataset)
        print(f"ingest {dataset.name!r} (type={dataset.input_type}): models={models}")
        for model_name in models:
            outputs = [self.client.run(model_name, record) for record in dataset.records]
            dataset.enrichments[model_name] = outputs
        return dataset


def main() -> None:
    testbed = build_testbed(username="mdf_admin")
    zoo = build_zoo(oqmd_entries=150, n_estimators=8)
    client = DLHubClient(testbed.management, testbed.token)

    # The community has published composition-oriented models.
    for name in ("matminer_util", "matminer_featurize", "matminer_model"):
        testbed.publish_and_deploy(zoo[name], replicas=1)

    hook = MDFIngestHook(client)

    # Three incoming datasets with different extracted types.
    alloys = MDFDataset(
        name="high-entropy-alloys-2026",
        input_type="string",  # raw composition strings
        records=["FeNiCrCoMn", "TiZrNbTa", "AlCuMgZn"],
    )
    fractions = MDFDataset(
        name="oxide-fractions",
        input_type="composition",  # already-parsed element fractions
        records=[{"Mg": 0.5, "O": 0.5}, {"Ti": 1 / 3, "O": 2 / 3}],
    )
    spectra = MDFDataset(
        name="raman-spectra",
        input_type="file",  # nothing applies to raw spectra
        records=["spectrum-001.csv"],
    )

    for dataset in (alloys, fractions, spectra):
        hook.ingest(dataset)
        for model_name, outputs in dataset.enrichments.items():
            preview = outputs[0]
            if hasattr(preview, "shape"):
                preview = f"feature vector {preview.shape}"
            print(f"  + {model_name}: {len(outputs)} records enriched (e.g. {preview})")
        if not dataset.enrichments:
            print("  (no applicable models — dataset indexed unenriched)")

    # The enrichment is persistent metadata MDF can serve back.
    total = sum(len(d.enrichments) for d in (alloys, fractions, spectra))
    print(f"\n{total} enrichment passes applied across 3 datasets")


if __name__ == "__main__":
    main()
