"""An elastic serving fleet run by the control plane.

One Task Manager and a :class:`FleetController` front two servables,
driven by a *predictive* policy: :class:`PredictiveScaling` wraps the
queue-wait SLO policy and projects each servable's arrival rate one
provisioning lead time ahead (trend extrapolation via
:class:`ArrivalForecaster`), so the spike's rising edge triggers
scale-up before the reactive estimate catches up — every pre-provision
decision lands in the event log as ``demand_forecast``. The controller
provisions workers (paying container cold starts), re-shards the hot
servable, and tunes per-host replica counts with the shared capacity
model; after the spike it drains back down. Then a worker crashes:
health tracking spots it, a replacement is provisioned, placements
migrate, and the crashed worker rejoins once it recovers.

Run with::

    python examples/autoscaled_serving.py
"""

from __future__ import annotations

from collections import Counter

from repro import build_testbed, build_zoo, sample_input
from repro.core.fleet import (
    FleetController,
    PredictiveScaling,
    QueueLatencySLOPolicy,
)
from repro.core.runtime import ServingRuntime
from repro.core.tasks import TaskRequest

INTERVAL_S = 0.25


def ramp(servable: str, rate_rps: float, duration_s: float, start_s: float = 0.0):
    fixed = sample_input(servable)
    return [
        (start_s + i / rate_rps, TaskRequest(servable, args=fixed))
        for i in range(int(rate_rps * duration_s))
    ]


def show_events(controller: FleetController, since: int) -> int:
    for event in controller.events[since:]:
        extra = f"  {event.detail}" if event.detail else ""
        print(f"  t={event.time:>7.3f}s  {event.kind:<18} {event.subject}{extra}")
    return len(controller.events)


def cool_down(testbed, controller, ticks: int = 16) -> None:
    for _ in range(ticks):
        testbed.clock.advance(INTERVAL_S)
        controller.reconcile()


def main() -> None:
    testbed = build_testbed(username="ops_team")
    zoo = build_zoo(oqmd_entries=80, n_estimators=6)

    worker = testbed.add_fleet_worker("fleet-w0")
    runtime = ServingRuntime(
        testbed.clock,
        testbed.management.queue,
        [worker],
        max_batch_size=16,
        max_coalesce_delay_s=0.005,
    )
    for name in ("matminer_util", "cifar10"):
        published = testbed.management.publish(testbed.token, zoo[name])
        runtime.place(zoo[name], published.build.image)

    controller = FleetController(
        runtime,
        provision_worker=testbed.add_fleet_worker,
        # Predictive wrapper: plan on demand projected one provisioning
        # lead time ahead, so capacity lands before the spike peaks.
        policy=PredictiveScaling(
            QueueLatencySLOPolicy(slo_s=0.080),
            reconcile_interval_s=INTERVAL_S,
        ),
        interval_s=INTERVAL_S,
        min_workers=1,
        max_workers=3,
        autoscale_replicas=True,
        max_replicas_per_host=2,
    )

    print("== spike: matminer_util jumps to 500 req/s ==")
    arrivals = sorted(
        ramp("matminer_util", 500.0, 2.5) + ramp("cifar10", 40.0, 2.5),
        key=lambda pair: pair[0],
    )
    results = runtime.serve(arrivals)
    ok = sum(r.result.ok for r in results)
    print(f"served {ok}/{len(results)} requests; "
          f"peak fleet {controller.peak_routable_workers} workers")
    wait = runtime.stage_metrics.summarize("queue_wait", "matminer_util")
    print(f"matminer_util queue wait: median {wait.median * 1e3:.1f} ms, "
          f"p95 {wait.p95 * 1e3:.1f} ms")
    print("fleet events:")
    seen = show_events(controller, 0)

    print("\n== cool-down: traffic stops, the fleet drains ==")
    # A few extra ticks cover the migrations consolidating both
    # servables onto one survivor before the spare workers retire.
    cool_down(testbed, controller, ticks=24)
    stats = runtime.fleet_stats()
    print(f"scaled back down to {len(stats.routable_workers)} worker(s): "
          f"{', '.join(stats.routable_workers)}")
    seen = show_events(controller, seen)

    survivor = runtime.hosts("matminer_util")[0]
    print(f"\n== failure: worker {survivor.name!r} crashes ==")
    survivor.crash()
    testbed.clock.advance(INTERVAL_S)
    controller.reconcile()
    seen = show_events(controller, seen)

    second_wave = ramp("matminer_util", 200.0, 1.0)
    results2 = runtime.serve(second_wave)
    served_by = Counter(r.worker for r in results2)
    print(f"second wave served {sum(r.result.ok for r in results2)}"
          f"/{len(results2)} by {dict(served_by)} "
          "(the crashed worker served none)")
    assert survivor.name not in served_by

    print(f"\n== recovery: {survivor.name!r} comes back ==")
    survivor.recover()
    testbed.clock.advance(INTERVAL_S)
    controller.reconcile()
    cool_down(testbed, controller)
    seen = show_events(controller, seen)

    stats = runtime.fleet_stats()
    print("\nfinal fleet (worker: hosted servables):")
    for worker_stat in stats.workers:
        state = "down" if worker_stat.down else "up"
        print(f"  {worker_stat.name:<12} [{state}]  {', '.join(worker_stat.hosted)}")
    by_kind = Counter(event.kind for event in controller.events)
    print(f"control plane: {controller.reconciles} reconciles, "
          f"events {dict(sorted(by_kind.items()))}")


if __name__ == "__main__":
    main()
