"""A multi-tenant serving gateway in front of the shared fleet.

Three labs share one DLHub deployment:

* ``astro_lab`` — a bulk-inference pipeline (hot, weight 1);
* ``chem_lab`` — an interactive notebook user (light, weight 2);
* ``guest`` — an unvetted account on a strict policy (5 req/s token
  bucket, 4 requests in flight, a 2-in-flight quota on ``cifar10``).

The walkthrough shows the request path
``client -> gateway -> WFQ lanes -> runtime -> fleet``:

1. every Management Service invocation passes tenant admission (the
   legacy round-robin Task Manager serves nothing);
2. the guest's over-limit traffic gets *typed* denials
   (``rejected_rate_limit``, ``rejected_servable_quota``) instead of
   silent queueing;
3. under a 10:1 open-loop skew, weighted fair queuing keeps the light
   tenant's tail latency close to its isolated baseline while the hot
   tenant absorbs its own backlog.

Run with::

    python examples/multi_tenant_gateway.py
"""

from __future__ import annotations

import numpy as np

from repro import build_testbed, build_zoo, sample_input
from repro.core.client import DLHubClient
from repro.core.tasks import TaskRequest
from repro.gateway import AdmissionRejected, TenantPolicy, TenantPolicyTable


def ramp(servable: str, rate_rps: float, duration_s: float, token: str):
    fixed = sample_input(servable)
    return [
        (i / rate_rps, token, TaskRequest(servable, args=fixed))
        for i in range(int(rate_rps * duration_s))
    ]


def main() -> None:
    testbed = build_testbed(username="ops_team", memoize_tm=False)
    zoo = build_zoo(oqmd_entries=80, n_estimators=6)

    astro, astro_token = testbed.new_user("astro_lab")
    chem, chem_token = testbed.new_user("chem_lab")
    guest, guest_token = testbed.new_user("guest")

    policies = TenantPolicyTable()
    policies.register(TenantPolicy(name="astro", weight=1.0))
    policies.register(TenantPolicy(name="chem", weight=2.0))
    policies.register(
        TenantPolicy(
            name="guest",
            weight=0.5,
            rate_limit_rps=5.0,
            burst=5,
            max_in_flight=4,
            servable_quotas={"cifar10": 2},
        )
    )
    policies.bind_identity(astro, "astro")
    policies.bind_identity(chem, "chem")
    policies.bind_identity(guest, "guest")

    gateway = testbed.enable_gateway(policies=policies, n_workers=4, max_batch_size=8)
    for name in ("matminer_util", "cifar10"):
        published = testbed.management.publish(testbed.token, zoo[name])
        gateway.runtime.place(zoo[name], published.build.image, copies=2)

    print("== 1. every invocation path goes through the gateway ==")
    chem_client = DLHubClient(testbed.management, chem_token)
    value = chem_client.run("matminer_util", *sample_input("matminer_util"))
    print(f"chem_lab sync run ok (value type {type(value).__name__})")
    print(f"legacy round-robin TM tasks processed: "
          f"{testbed.task_manager.tasks_processed}")
    print(f"runtime items served: {gateway.runtime.items_served}")

    print("\n== 2. the guest's over-limit traffic is denied, typed ==")
    guest_client = DLHubClient(testbed.management, guest_token)
    outcomes = {"ok": 0}
    for i in range(12):  # the bucket holds 5, refilling at 5/s
        try:
            guest_client.run("matminer_util", *sample_input("matminer_util"))
            outcomes["ok"] += 1
        except AdmissionRejected as exc:
            key = exc.decision.outcome.value
            outcomes[key] = outcomes.get(key, 0) + 1
    print(f"guest burst of 12: {outcomes}")
    guest_counters = gateway.metrics.counters("guest")
    print(f"guest counters: admitted={guest_counters.admitted} "
          f"denied={dict(guest_counters.denied)}")

    print("\n== 3. 10:1 skew: WFQ protects the light tenant ==")
    arrivals = sorted(
        ramp("matminer_util", 600.0, 2.0, astro_token)
        + ramp("matminer_util", 60.0, 2.0, chem_token),
        key=lambda entry: entry[0],
    )
    results = gateway.serve(arrivals)
    served = [r for r in results if r.admitted]
    for tenant in ("astro", "chem"):
        latencies = [r.latency for r in served if r.request.tenant == tenant]
        print(f"  {tenant:<6} served {len(latencies):>4}  "
              f"p50 {np.median(latencies) * 1e3:7.2f} ms  "
              f"p95 {np.percentile(latencies, 95) * 1e3:7.2f} ms")
    print(f"  mean micro-batch size: {gateway.runtime.mean_batch_size:.2f} "
          f"(tenant-pure lanes)")

    print("\n== 4. what the fleet controller sees ==")
    for servable, admissions in (
        ("matminer_util", gateway.tenant_admissions("matminer_util")),
    ):
        print(f"  {servable}: admitted per tenant {admissions}")
    for tenant in gateway.metrics.tenants():
        counters = gateway.metrics.counters(tenant)
        print(f"  {tenant:<6} admitted={counters.admitted:<5} "
              f"completed={counters.completed:<5} denied={counters.denied_total}")


if __name__ == "__main__":
    main()
