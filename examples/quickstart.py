"""Quickstart: publish a model, discover it, and run inference.

Walks the core DLHub loop end to end:

1. stand up the deployment (Management Service + Task Manager + cluster),
2. train a small sklearn-like model and wrap it as a servable,
3. publish it (metadata validation, container build, search indexing),
4. discover it by query, read its citation,
5. run synchronous, asynchronous, and batched inference.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DLHubClient, build_testbed
from repro.core.servable import SklearnLikeServable
from repro.core.toolbox import MetadataBuilder
from repro.ml.sklearn_like import RandomForestClassifier


def main() -> None:
    # 1. The deployment: PetrelKube + Task Manager + Management Service.
    testbed = build_testbed(username="ada")
    client = DLHubClient(testbed.management, testbed.token)

    # 2. Train a classifier on a toy two-moons-ish problem.
    rng = np.random.default_rng(0)
    n = 400
    x = rng.normal(size=(n, 2))
    y = ((x[:, 0] ** 2 + x[:, 1]) > 0.5).astype(int)
    model = RandomForestClassifier(n_estimators=10, max_depth=6, random_state=0)
    model.fit(x, y)
    print(f"trained classifier, train accuracy = {model.score(x, y):.2f}")

    # 3. Wrap + publish. Metadata must satisfy the publication schema.
    metadata = (
        MetadataBuilder("quadrant_classifier", "Toy quadrant classifier")
        .creator("Ada Lovelace")
        .description("Predicts whether x0^2 + x1 exceeds 0.5")
        .model_type("sklearn")
        .input_type("ndarray")
        .output_type("list")
        .hyperparameter("n_estimators", 10)
        .build()
    )
    servable = SklearnLikeServable(metadata, model)
    published = testbed.publish_and_deploy(servable, replicas=2)
    print(f"published {published.full_name} v{published.version}, doi={published.doi}")

    # 4. Discover + cite.
    hits = client.search("quadrant*")
    print(f"search 'quadrant*': {hits.total} hit(s): {hits.ids()}")
    print("citation:", client.cite(published.full_name))

    # 5a. Synchronous inference.
    probe = np.array([[1.2, 0.4], [-0.3, -1.0]])
    prediction = client.run("quadrant_classifier", probe)
    print("sync prediction:", list(prediction))

    # 5b. Asynchronous inference: UUID now, result later.
    handle = client.run_async("quadrant_classifier", probe)
    print("async status:", client.status(handle).value)
    print("async result:", list(client.result(handle).value))

    # 5c. Batched inference: one task, many inputs.
    batch = [(np.array([[i * 0.1, -i * 0.1]]),) for i in range(8)]
    outputs = client.run_batch("quadrant_classifier", batch)
    print(f"batched {len(outputs)} inputs -> {[int(o[0]) for o in outputs]}")

    # Timing visibility: what the paper's Fig. 3 measures (fresh input so
    # the Task Manager's memoization cache does not short-circuit it).
    detailed = client.run_detailed("quadrant_classifier", np.array([[2.0, 2.0]]))
    print(
        f"timings: inference={detailed.inference_time * 1e3:.2f} ms, "
        f"invocation={detailed.invocation_time * 1e3:.2f} ms, "
        f"request={detailed.request_time * 1e3:.2f} ms (virtual time)"
    )


if __name__ == "__main__":
    main()
