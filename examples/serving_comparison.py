"""A walkthrough of the Fig. 8 serving comparison (SS V-B5).

Deploys CIFAR-10 on every serving platform the paper compares — TF
Serving (gRPC + REST), SageMaker (TF-Serving delegation + native Flask),
Clipper (with/without memoization) and DLHub (with/without memoization) —
and prints the invocation-time ladder with the paper's claims annotated.

Run with::

    python examples/serving_comparison.py
"""

from __future__ import annotations

from repro.bench.fig8_comparison import ablation_cache_placement, run_experiment


def main() -> None:
    results = run_experiment(n_requests=50, models=("cifar10",))
    rows = results["cifar10"]

    print("CIFAR-10 invocation time by platform (median ms, virtual time):\n")
    ordered = sorted(rows.items(), key=lambda kv: kv[1]["invocation"]["median_ms"])
    for platform, data in ordered:
        bar = "#" * max(1, int(data["invocation"]["median_ms"] * 2))
        print(f"  {platform:<28} {data['invocation']['median_ms']:7.2f}  {bar}")

    inv = {p: d["invocation"]["median_ms"] for p, d in rows.items()}
    print("\npaper claims, checked on these numbers:")
    print(
        f"  [{'OK' if inv['TFServing-gRPC'] < inv['SageMaker-Flask'] else '??'}] "
        "C++ tensorflow_model_server outperforms Python-based systems"
    )
    print(
        f"  [{'OK' if inv['TFServing-gRPC'] < inv['TFServing-REST'] else '??'}] "
        "gRPC slightly better than REST (HTTP overhead)"
    )
    print(
        f"  [{'OK' if 0.4 <= inv['DLHub'] / inv['SageMaker-Flask'] <= 2.5 else '??'}] "
        "DLHub comparable to the Python-based serving infrastructures"
    )
    print(
        f"  [{'OK' if inv['DLHub-memo'] < inv['Clipper-memo'] else '??'}] "
        "with memoization DLHub (~1 ms) beats Clipper (cache in-cluster)"
    )

    placement = ablation_cache_placement(n_requests=25)
    print(
        f"\ncache-placement ablation: Task-Manager cache "
        f"{placement['tm_cache_median_ms']:.2f} ms vs in-cluster frontend "
        f"{placement['frontend_cache_median_ms']:.2f} ms per hit"
    )


if __name__ == "__main__":
    main()
