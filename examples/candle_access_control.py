"""SS VI-A — CANDLE: fine-grained access control for in-development models.

The CANDLE cancer-research project shares deep-learning models with a
selected test group before general release. This example reproduces the
whole lifecycle:

1. publish a drug-response model restricted to the ``candle-testers``
   group,
2. show that testers can discover and invoke it while outsiders cannot
   (it is invisible in search *and* blocked at invocation),
3. flip the model public after verification — one visibility update, no
   re-publication.

Run with::

    python examples/candle_access_control.py
"""

from __future__ import annotations

import numpy as np

from repro import DLHubClient, build_testbed
from repro.auth.service import AuthorizationError
from repro.core.servable import KerasLikeServable
from repro.core.toolbox import MetadataBuilder
from repro.ml.layers import Dense, ReLU, Softmax
from repro.ml.network import Sequential
from repro.search.index import Visibility


def build_drug_response_model(seed: int = 3) -> Sequential:
    """A small dense network: molecular features -> response class."""
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Dense(32, 64, rng=rng),
            ReLU(),
            Dense(64, 16, rng=rng),
            ReLU(),
            Dense(16, 3, rng=rng),  # {resistant, partial, sensitive}
            Softmax(),
        ],
        name="candle-drug-response",
    )


def main() -> None:
    testbed = build_testbed(username="candle_team")

    # Cast: the CANDLE publisher, a vetted tester, and an outsider.
    tester, tester_token = testbed.new_user("trusted_tester", provider="anl")
    outsider, outsider_token = testbed.new_user("random_user", provider="google")
    group = testbed.auth.identities.create_group("candle-testers")
    group.add(tester)

    # 1. Publish restricted to the test group.
    metadata = (
        MetadataBuilder("drug_response", "CANDLE drug response predictor")
        .creator("CANDLE Consortium")
        .description("Predicts tumor-cell drug response from molecular features")
        .model_type("keras")
        .input_type("ndarray")
        .output_type("list")
        .domain("cancer research")
        .build()
    )
    servable = KerasLikeServable(metadata, build_drug_response_model())
    published = testbed.publish_and_deploy(
        servable,
        replicas=1,
        visibility=Visibility.restricted(groups=["candle-testers"]),
    )
    print(f"published {published.full_name} (restricted to candle-testers)")

    features = np.random.default_rng(0).normal(size=(1, 32))

    # 2a. The tester: can discover and invoke.
    tester_client = DLHubClient(testbed.management, tester_token)
    hits = tester_client.search("drug response")
    print(f"tester search hits: {hits.total}")
    probs = tester_client.run("drug_response", features)
    print(f"tester inference ok, class probs = {np.round(probs[0], 3)}")

    # 2b. The outsider: the model is invisible AND uninvokable.
    outsider_client = DLHubClient(testbed.management, outsider_token)
    hits = outsider_client.search("drug response")
    print(f"outsider search hits: {hits.total} (model is hidden)")
    try:
        outsider_client.run("drug_response", features)
        raise SystemExit("BUG: outsider invocation should have been denied")
    except AuthorizationError as exc:
        print(f"outsider invocation denied: {exc}")

    # 3. General release: owner updates visibility, nothing re-published.
    testbed.management.update_visibility(
        testbed.token, published.full_name, Visibility()
    )
    hits = outsider_client.search("drug response")
    probs = outsider_client.run("drug_response", features)
    print(
        f"after release: outsider sees {hits.total} hit(s) and can invoke "
        f"(top prob {float(probs[0].max()):.3f})"
    )


if __name__ == "__main__":
    main()
