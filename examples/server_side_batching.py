"""Server-side micro-batching over a multi-worker serving fleet.

Clients send plain single-item requests; the :class:`ServingRuntime`
shards servables across a fleet of Task Managers, coalesces compatible
requests into micro-batches at claim time, and serves repeat inputs from
the per-item memo cache — batching and ~1 ms memo hits without any
client cooperation.

Run with::

    python examples/server_side_batching.py
"""

from __future__ import annotations

from collections import Counter

from repro import build_testbed, build_zoo, sample_input
from repro.core.runtime import ServingRuntime
from repro.core.tasks import TaskRequest

SERVABLES = ("noop", "matminer_util", "matminer_featurize", "cifar10")


def main() -> None:
    testbed = build_testbed(username="ops_team")
    zoo = build_zoo(oqmd_entries=80, n_estimators=6)

    # A three-worker fleet on the shared task queue; matminer_util gets a
    # second copy so the fleet survives losing its primary shard.
    workers = [testbed.task_manager] + [
        testbed.add_task_manager(f"tm-{i}") for i in (1, 2)
    ]
    runtime = ServingRuntime(
        testbed.clock,
        testbed.management.queue,
        workers,
        max_batch_size=16,
        max_coalesce_delay_s=0.008,
    )
    for name in SERVABLES:
        published = testbed.management.publish(testbed.token, zoo[name])
        runtime.place(
            zoo[name],
            published.build.image,
            copies=2 if name == "matminer_util" else 1,
        )
    print("placement (servable -> workers):")
    for name, hosts in sorted(runtime.placement().items()):
        print(f"  {name:<20} {', '.join(hosts)}")

    # A mixed open-loop workload: four servables interleaved at ~800 req/s
    # total, with matminer_util seeing a hot repeated input.
    formulas = ("NaCl", "SiO2", "NaCl", "Fe2O3", "NaCl")
    arrivals = []
    for i in range(400):
        name = SERVABLES[i % len(SERVABLES)]
        if name == "matminer_util":
            request = TaskRequest(name, args=(formulas[i % len(formulas)],))
        else:
            request = TaskRequest(name, args=sample_input(name))
        arrivals.append((i * 0.00125, request))

    start = testbed.clock.now()
    results = runtime.serve(arrivals)
    makespan = testbed.clock.now() - start
    ok = sum(r.result.ok for r in results)
    print(f"\nserved {ok}/{len(results)} requests in {makespan * 1e3:.0f} ms "
          f"of virtual time ({len(results) / makespan:.0f} req/s)")
    print(f"micro-batches dispatched: {runtime.batches_dispatched} "
          f"(mean size {runtime.mean_batch_size:.1f}), "
          f"memo hits: {runtime.memo_hits}")

    served_by = Counter(r.worker for r in results)
    print("\nrequests served per worker:")
    for worker, count in sorted(served_by.items()):
        print(f"  {worker:<12} {count}")

    print("\nper-stage latency (median ms) by servable:")
    metrics = runtime.stage_metrics
    print(f"  {'servable':<20} {'queue_wait':>10} {'coalesce':>9} "
          f"{'dispatch':>9} {'inference':>10}")
    for name in sorted(runtime.placement()):
        row = []
        for stage in ("queue_wait", "coalesce_delay", "dispatch", "inference"):
            summary = metrics.summarize(stage, name)
            row.append(f"{summary.median * 1e3:.2f}")
        print(f"  {name:<20} {row[0]:>10} {row[1]:>9} {row[2]:>9} {row[3]:>10}")

    hot = [
        r
        for r in results
        if r.request.servable_name == "matminer_util" and r.result.cache_hit
    ]
    print(f"\nhot-input memo hits on matminer_util: {len(hot)} "
          "(served without touching the cluster)")


if __name__ == "__main__":
    main()
